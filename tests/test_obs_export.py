"""Exporters: Perfetto trace JSON, metrics dump, ASCII timeline."""

import json

from conftest import tiny_config
from repro.obs import (
    Instrument,
    ascii_timeline,
    metrics_dict,
    to_perfetto,
    write_metrics,
    write_perfetto,
)
from repro.obs.export import PID_DIR, PID_NET, PID_PROC
from repro.system import Machine
from test_obs import dsi_fifo_config, sharing_program


def traced_instrument(config=None):
    instrument = Instrument()
    Machine(config or tiny_config(), sharing_program(), instrument=instrument).run()
    return instrument


class TestPerfetto:
    def test_every_event_carries_schema_keys(self):
        trace = to_perfetto(traced_instrument())
        assert trace["traceEvents"]
        for event in trace["traceEvents"]:
            assert {"ph", "ts", "pid", "tid"} <= set(event)

    def test_phases_cover_slices_counters_instants_metadata(self):
        trace = to_perfetto(traced_instrument(dsi_fifo_config()))
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"M", "X", "C", "i"} <= phases

    def test_lane_pids(self):
        trace = to_perfetto(traced_instrument())
        pids = {event["pid"] for event in trace["traceEvents"]}
        assert {PID_PROC, PID_DIR, PID_NET} <= pids

    def test_slices_have_positive_duration(self):
        trace = to_perfetto(traced_instrument())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert slices
        assert all(e["dur"] >= 1 for e in slices)

    def test_counter_tracks_present(self):
        trace = to_perfetto(traced_instrument(dsi_fifo_config()))
        counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
        assert "fifo_occupancy" in counters
        assert "write_buffer_depth" in counters
        assert "directory_occupancy" in counters

    def test_thread_names_for_every_node(self):
        config = tiny_config()
        trace = to_perfetto(traced_instrument(config))
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        for node in range(config.n_processors):
            assert f"proc {node}" in names
            assert f"dir {node}" in names

    def test_max_instants_bounds_messages(self):
        instrument = traced_instrument()
        trace = to_perfetto(instrument, max_instants=5)
        instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 5
        assert trace["otherData"]["messages_dropped"] >= len(
            instrument.message_events
        ) - 5

    def test_write_round_trips_as_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_perfetto(traced_instrument(), str(path))
        loaded = json.loads(path.read_text())
        assert loaded["traceEvents"]
        assert loaded["otherData"]["sim_cycles"] > 0


class TestFlows:
    """Flow arrows linking each miss slice to the directory slice that
    served it (request) and back (response)."""

    def _flows(self, config=None):
        trace = to_perfetto(traced_instrument(config))
        events = trace["traceEvents"]
        return trace, [e for e in events if e["ph"] in ("s", "f")]

    def test_flows_present_and_paired(self):
        trace, flows = self._flows()
        starts = {e["id"] for e in flows if e["ph"] == "s"}
        finishes = {e["id"] for e in flows if e["ph"] == "f"}
        assert starts
        assert starts == finishes
        assert trace["otherData"]["flows"] == len(starts)

    def test_finish_events_bind_to_enclosing_slice(self):
        _, flows = self._flows()
        for event in flows:
            if event["ph"] == "f":
                assert event["bp"] == "e"

    def test_anchors_fall_within_their_slices(self):
        # Chrome drops a flow whose anchor lies outside the slice it
        # binds to, so every "s"/"f" ts must land inside a slice on the
        # same pid/tid.
        trace = to_perfetto(traced_instrument())
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        for event in trace["traceEvents"]:
            if event["ph"] not in ("s", "f"):
                continue
            assert any(
                s["pid"] == event["pid"]
                and s["tid"] == event["tid"]
                and s["ts"] <= event["ts"] < s["ts"] + s["dur"]
                for s in slices
            ), f"flow anchor {event} outside every slice"

    def test_request_and_response_named(self):
        _, flows = self._flows(dsi_fifo_config())
        names = {e["name"] for e in flows}
        assert names == {"request", "response"}


class TestMetrics:
    def test_schema(self):
        metrics = metrics_dict(traced_instrument(dsi_fifo_config()))
        assert set(metrics) >= {
            "sim_cycles",
            "probe_counts",
            "message_kinds",
            "span_latency",
            "series",
            "spans_recorded",
            "spans_dropped",
            "messages_dropped",
        }
        assert metrics["sim_cycles"] > 0
        assert metrics["probe_counts"]["message_send"] > 0
        assert metrics["span_latency"]["miss"]["count"] > 0
        assert set(metrics["series"]) == {
            "fifo_occupancy",
            "write_buffer_depth",
            "directory_occupancy",
            "ni_queue_depth",
        }

    def test_probe_counts_zero_filled(self):
        from repro.obs.instrument import PROBE_TYPES

        # SC without DSI never fires the FIFO or tear-off probes, but the
        # keys must still be present (as zero) so diffs of two dumps can
        # tell "never fired" apart from "does not exist".
        metrics = metrics_dict(traced_instrument())
        assert set(PROBE_TYPES) <= set(metrics["probe_counts"])
        assert metrics["probe_counts"]["fifo_overflow"] == 0
        assert metrics["probe_counts"]["cache_fill_tearoff"] == 0
        assert metrics["probe_counts"]["dir_grant"] > 0

    def test_dropped_summary(self):
        metrics = metrics_dict(traced_instrument())
        assert metrics["dropped"] == {
            "message_events": 0,
            "spans": 0,
            "series_points": 0,
        }

    def test_json_serializable(self):
        metrics = metrics_dict(traced_instrument())
        assert json.loads(json.dumps(metrics)) == metrics

    def test_write_metrics_merges_extra(self, tmp_path):
        path = tmp_path / "metrics.json"
        payload = write_metrics(
            traced_instrument(), str(path), extra={"workload": "test"}
        )
        assert payload["workload"] == "test"
        assert json.loads(path.read_text()) == payload


class TestAsciiTimeline:
    def test_renders_rows_per_lane(self):
        text = ascii_timeline(traced_instrument())
        lines = text.splitlines()
        assert "timeline:" in lines[0]
        assert any(line.startswith("proc0") for line in lines)
        assert all("|" in line for line in lines[1:])

    def test_empty_instrument(self):
        assert ascii_timeline(Instrument()) == "(no spans recorded)"

    def test_width_respected(self):
        text = ascii_timeline(traced_instrument(), width=40)
        for line in text.splitlines()[1:]:
            bar = line.split("|")[1]
            assert len(bar) == 40

"""Direct-execution fast-path boundary behaviour.

The batcher (:mod:`repro.processor.fastpath`) must hand control back to
the interpreted loop at exactly the right ops: the first miss, the first
touch of a DSI-marked or tear-off block, the first write-buffer
interaction, and every synchronization operation.  These tests pin that
boundary two ways:

* **Probe-sequence equality** — a recording instrument captures every
  timestamped probe (transitions, messages, fills, self-invalidations,
  write-buffer and sync events) from a batched run and an interpreted
  run of the same deterministic trace; the sequences must be identical.
  Since the interpreted hit path fires no probes, any op the batcher
  wrongly retires (or wrongly hands off at a different cycle) shows up
  as a sequence difference.
* **Counter arithmetic** — on traces simple enough to reason about
  exactly, the batcher's ``retired_ops`` / ``handoffs`` / ``boundaries``
  counters are asserted against hand-computed values.
"""

from dataclasses import replace

import pytest

from repro.config import Consistency, IdentifyScheme, SIMechanism, SystemConfig
from repro.network.message import Message
from repro.obs.instrument import Instrument
from repro.stats.record import RunRecord
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program

BLOCK = 32  # bytes per block (config default)
SEGMENT = 1 << 22  # bytes per home segment (repro.memory.address)


def _addr(block, segment=0):
    # ``home_exclusion`` (on by default) exempts locally-homed blocks
    # from DSI, so blocks that must earn marked/tear-off grants for
    # processor 0 have to live in another processor's segment.
    return segment * SEGMENT + block * BLOCK


# ---------------------------------------------------------------------------
# Probe recording
# ---------------------------------------------------------------------------

_PROBES = (
    "message_send",
    "message_receive",
    "cache_fill",
    "cache_evict",
    "cache_self_invalidate",
    "protocol_transition",
    "mshr_open",
    "mshr_close",
    "dir_grant",
    "inv_sent",
    "inv_acked",
    "fifo_push",
    "fifo_pop",
    "fifo_overflow",
    "wb_fill",
    "wb_drain",
    "sync_enter",
    "sync_exit",
)


def _plain(value):
    if isinstance(value, Message):
        return (value.kind.name, value.block, value.src, value.dst)
    return value


class ProbeRecorder(Instrument):
    """Instrument that keeps the full timestamped probe sequence."""

    def __init__(self):
        super().__init__()
        self.seq = []


def _recording(name, original):
    def probe(self, *args, **kwargs):
        entry = (self.now, name) + tuple(_plain(a) for a in args)
        if kwargs:
            entry += tuple(sorted((k, _plain(v)) for k, v in kwargs.items()))
        self.seq.append(entry)
        return original(self, *args, **kwargs)

    return probe


for _name in _PROBES:
    setattr(ProbeRecorder, _name, _recording(_name, getattr(Instrument, _name)))


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _run(config, program, record_probes=False):
    instrument = ProbeRecorder() if record_probes else None
    machine = Machine(config, program, instrument=instrument)
    result = machine.run()
    return machine, RunRecord.from_result(result), instrument


def _reference(config):
    return replace(config, compiled_dispatch=False, direct_execution=False)


def _fastpaths(machine):
    return [p._fast for p in machine.processors]


# ---------------------------------------------------------------------------
# Exact counter arithmetic on single-processor traces
# ---------------------------------------------------------------------------


class TestExactBoundaries:
    def test_private_hit_run_fully_retired(self):
        # write A (cold miss, scalar), then 100 reads of A (all retired).
        builder = TraceBuilder().write(_addr(5))
        for _ in range(100):
            builder.read(_addr(5))
        program = Program("private", [builder.build()])
        config = SystemConfig(n_processors=1, quantum=1000)
        machine, record, _ = _run(config, program)
        fast = _fastpaths(machine)[0]
        assert fast is not None  # never bailed out
        assert fast.retired_ops == 100
        assert fast.handoffs == 1  # exactly the cold miss
        assert fast.boundaries == 0  # quantum never reached
        assert record.misses.read_hits == 100
        # And the interpreted run agrees on everything measured.
        _, ref_record, _ = _run(_reference(config), program)
        assert record == ref_record

    def test_hit_boundary_reenters_event_queue(self):
        # 100 reads x 1 cycle against quantum=10: the batcher must stop at
        # every quantum boundary exactly as the interpreted loop does.
        builder = TraceBuilder().write(_addr(5))
        for _ in range(100):
            builder.read(_addr(5))
        program = Program("quantum", [builder.build()])
        config = SystemConfig(n_processors=1, quantum=10)
        machine, record, _ = _run(config, program)
        fast = _fastpaths(machine)[0]
        assert fast.retired_ops == 100
        assert fast.boundaries == 10  # 100 hit cycles / 10-cycle quantum
        _, ref_record, _ = _run(_reference(config), program)
        assert record == ref_record
        assert record.events_fired == ref_record.events_fired

    def test_gap_boundary_carries_gap_charge(self):
        # Gaps of 7 + 1 hit cycle against quantum=10: boundaries land
        # mid-gap, exercising the gap-charged carry path.
        builder = TraceBuilder().write(_addr(5))
        for _ in range(50):
            builder.compute(7).read(_addr(5))
        program = Program("gaps", [builder.build()])
        config = SystemConfig(n_processors=1, quantum=10)
        machine, record, _ = _run(config, program)
        fast = _fastpaths(machine)[0]
        assert fast.retired_ops == 50
        assert fast.boundaries > 0
        _, ref_record, _ = _run(_reference(config), program)
        assert record == ref_record
        assert record.events_fired == ref_record.events_fired

    def test_miss_dominated_stream_bails_out(self):
        # Reads of 6000 distinct blocks: nothing ever re-hits (capacity
        # misses), so after the first window the batcher must unplug
        # itself — and the record must not change.
        builder = TraceBuilder()
        for i in range(6000):
            builder.read(_addr(1000 + 7 * i))
        program = Program("colds", [builder.build()])
        config = SystemConfig(n_processors=1)
        machine, record, _ = _run(config, program)
        assert _fastpaths(machine)[0] is None  # bailed out mid-run
        _, ref_record, _ = _run(_reference(config), program)
        assert record == ref_record


# ---------------------------------------------------------------------------
# The full boundary soup: tear-off reads, FIFO self-invalidation,
# write-buffer stalls, locks — probe-for-probe against the interpreter
# ---------------------------------------------------------------------------


def _boundary_program():
    """Two processors alternating private hits with every handoff cause.

    Processor 1 produces shared blocks under a lock; processor 0 consumes
    them (the repeated invalidate-then-remiss pattern drives the version
    scheme to grant tear-off copies), with runs of private hits in
    between, enough distinct writes to overflow a 2-entry write buffer,
    and more marked blocks than a 4-entry FIFO holds.
    """
    shared = [_addr(100 + i, segment=1) for i in range(10)]
    lock = _addr(900, segment=1)

    p0 = TraceBuilder()
    p1 = TraceBuilder()
    for round_no in range(6):
        # Producer: update every shared block under the lock.
        p1.lock(lock)
        for addr in shared:
            p1.write(addr)
        p1.unlock(lock)
        # Consumer: a run of private hits, then read all shared blocks
        # (cold/coherence misses, later tear-off grants), then a burst of
        # private writes that outruns the write buffer.
        private = _addr(200 + 16 * round_no)
        p0.write(private)
        for _ in range(20):
            p0.read(private)
        p0.lock(lock)
        for addr in shared:
            p0.read(addr)
        if round_no % 2:
            # Write rounds (back half only, so the front half keeps its
            # read-only history and earns tear-off grants): identified
            # blocks granted exclusive carry the s bit, not tear-off, so
            # they enter the 4-entry FIFO — six of them force overflow
            # self-invalidations.
            for addr in shared[4:]:
                p0.write(addr)
        p0.unlock(lock)
        for i in range(6):
            p0.write(_addr(300 + 32 * round_no + i))
        p0.barrier(round_no)
        p1.barrier(round_no)
    return Program("boundary", [p0.build(), p1.build()])


def _boundary_config():
    return SystemConfig(
        n_processors=2,
        consistency=Consistency.WC,
        identify=IdentifyScheme.VERSION,
        si_mechanism=SIMechanism.FIFO,
        tearoff=True,
        fifo_entries=4,
        write_buffer_entries=2,
    )


class TestBoundarySoup:
    @pytest.fixture(scope="class")
    def runs(self):
        program = _boundary_program()
        config = _boundary_config()
        fast = _run(config, program, record_probes=True)
        ref = _run(_reference(config), program, record_probes=True)
        return fast, ref

    def test_scenario_exercises_every_handoff_cause(self, runs):
        (machine, record, instrument), _ = runs
        fast = _fastpaths(machine)[0]
        assert fast is not None and fast.retired_ops > 0  # private hits batched
        assert fast.handoffs > 0
        assert record.misses.fifo_overflows > 0  # FIFO self-invalidation
        assert instrument.counts["cache_fill_tearoff"] > 0  # tear-off grants
        assert instrument.counts["wb_fill"] > 0  # write buffer touched
        assert sum(b.wb_full for b in record.breakdowns) > 0  # ...and stalled
        assert instrument.counts["self_invalidate"] > 0

    def test_probe_sequences_identical(self, runs):
        (_, _, fast_inst), (_, _, ref_inst) = runs
        assert fast_inst.seq, "no probes recorded"
        # Timestamped probe-for-probe equality: the batcher handed off at
        # exactly the ops — and cycles — the interpreted loop blocked at.
        assert fast_inst.seq == ref_inst.seq

    def test_records_identical(self, runs):
        (_, fast_record, _), (_, ref_record, _) = runs
        assert fast_record == ref_record
        assert fast_record.events_fired == ref_record.events_fired


# ---------------------------------------------------------------------------
# Composition with the relaxed engine
# ---------------------------------------------------------------------------


class TestRelaxedComposition:
    """The batcher rides on top of the relaxed engine's bucketed queue.

    The fast path and the relaxed engine optimize different layers —
    hit retirement versus transaction plumbing — and a relaxed machine
    must keep batching hits while every measured quantity stays exactly
    the reference oracle's (probe recording is unavailable here: an
    instrument forces the machine back to the reference engine, which is
    itself asserted below)."""

    def _program(self, quantum):
        # Hit runs sized exactly to the quantum, a sync op landing on the
        # batch edge, then a cross-processor read that bails the batcher
        # into the relaxed transaction lanes.
        builders = [TraceBuilder(), TraceBuilder()]
        for node, builder in enumerate(builders):
            mine = _addr(3 + node, segment=node)
            builder.write(mine)
            for _ in range(quantum):
                builder.read(mine)
            builder.barrier(0)
            builder.read(_addr(3 + (1 - node), segment=1 - node))
            builder.barrier(1)
        return Program("relaxed-edge", [b.build() for b in builders])

    def test_batcher_active_and_observationally_equal(self):
        from repro.config import ExecutionMode
        from repro.engine.simulator import BucketSimulator
        from repro.harness.equivalence import compare_observational

        for quantum in (4, 8):
            program = self._program(quantum)
            config = SystemConfig(n_processors=2, quantum=quantum)
            relaxed_cfg = replace(config, execution_mode=ExecutionMode.RELAXED)
            machine, relaxed_record, _ = _run(relaxed_cfg, program)
            assert machine.relaxed
            assert isinstance(machine.sim, BucketSimulator)
            fasts = _fastpaths(machine)
            assert all(f is not None and f.retired_ops >= quantum for f in fasts)
            assert all(f.handoffs > 0 for f in fasts)  # sync + remote miss
            _, ref_record, _ = _run(config, program)
            diffs = compare_observational(relaxed_record, ref_record)
            assert not diffs, f"quantum={quantum} diverged on: {', '.join(diffs)}"

    def test_instrumented_relaxed_run_downgrades_and_stays_exact(self):
        from repro.config import ExecutionMode
        from repro.engine.simulator import Simulator

        program = self._program(4)
        config = SystemConfig(n_processors=2, quantum=4)
        relaxed_cfg = replace(config, execution_mode=ExecutionMode.RELAXED)
        machine, record, instrument = _run(relaxed_cfg, program, record_probes=True)
        assert not machine.relaxed  # instrument forces the oracle
        assert type(machine.sim) is Simulator
        _, ref_record, ref_instrument = _run(config, program, record_probes=True)
        assert record == ref_record
        assert instrument.seq == ref_instrument.seq

"""Instrumentation layer: probes, span stitching, samplers, equivalence.

The central contract of ``repro.obs`` is *zero observable effect on the
simulation*: a machine run with an :class:`~repro.obs.Instrument`
attached must produce a record identical to one run without.  The
equivalence tests here enforce that for SC and for the full
WC + tear-off + version + FIFO stack.
"""

import pytest

from conftest import seg_addr, tiny_config, two_proc_program
from repro.config import Consistency, IdentifyScheme, SIMechanism
from repro.obs import Histogram, Instrument, TimeSeries
from repro.obs.spans import LANE_PROC, SpanTracker
from repro.stats.record import RunRecord
from repro.system import Machine


def sharing_program(rounds=3):
    def build(b0, b1, ctx):
        addr = seg_addr(0)
        for _ in range(rounds):
            ctx.barrier_all()
            b0.write(addr)
            ctx.barrier_all()
            b1.read(addr)
        ctx.barrier_all()

    return two_proc_program(build)


def instrumented_run(config=None, program=None):
    instrument = Instrument()
    machine = Machine(
        config or tiny_config(), program or sharing_program(), instrument=instrument
    )
    result = machine.run()
    return instrument, result


def dsi_fifo_config():
    return tiny_config(
        consistency=Consistency.WC,
        identify=IdentifyScheme.VERSION,
        tearoff=True,
        si_mechanism=SIMechanism.FIFO,
        fifo_entries=4,
    )


class TestEquivalence:
    """Instrumented and bare runs are measurement-identical."""

    def _records(self, config):
        program = sharing_program()
        bare = RunRecord.from_result(Machine(config, program).run())
        _, result = instrumented_run(config, sharing_program())
        return bare, RunRecord.from_result(result)

    def test_sc_equivalent(self):
        bare, observed = self._records(tiny_config())
        assert bare.to_dict() == observed.to_dict()

    def test_dsi_fifo_equivalent(self):
        bare, observed = self._records(dsi_fifo_config())
        assert bare.to_dict() == observed.to_dict()


class TestAnalyticsEquivalence:
    """The analytics consumer layer keeps the equivalence contract: it
    reads probe arguments and never touches simulator state, so a run
    with an AnalyticsInstrument is measurement-identical to a bare one —
    while still running the full quiesce-time audit."""

    def _records(self, config):
        from repro.obs import AnalyticsInstrument

        program = sharing_program()
        bare = RunRecord.from_result(Machine(config, program).run())
        instrument = AnalyticsInstrument()
        result = Machine(config, sharing_program(), instrument=instrument).run()
        return bare, RunRecord.from_result(result), instrument

    def test_sc_equivalent(self):
        bare, observed, instrument = self._records(tiny_config())
        assert bare.to_dict() == observed.to_dict()
        assert instrument.audit_result["messages"]["sends"] > 0
        assert instrument.audit_result["coherence"]["blocks"] > 0

    def test_dsi_fifo_equivalent(self):
        bare, observed, instrument = self._records(dsi_fifo_config())
        assert bare.to_dict() == observed.to_dict()
        assert instrument.audit_result["messages"]["sends"] > 0

    def test_audit_off_leaves_no_ledger(self):
        from repro.obs import AnalyticsInstrument

        instrument = AnalyticsInstrument(audit=False)
        Machine(tiny_config(), sharing_program(), instrument=instrument).run()
        assert instrument.ledger is None
        assert instrument.audit_result == {}
        assert instrument.classifier.blocks  # classification still ran


class TestCausalEquivalence:
    """The causal tracer keeps the equivalence contract too: txn ids are
    allocated inside the instrument (never on the bare path), every
    override is super()-first and read-only, so a run with a
    CausalInstrument stays bit-identical to a bare one — including under
    the direct-execution fast path, where retired private hits fire no
    probes and surface as cache-hit cycles in bulk."""

    def _records(self, config):
        from repro.obs import CausalInstrument

        program = sharing_program()
        bare = RunRecord.from_result(Machine(config, program).run())
        instrument = CausalInstrument()
        result = Machine(config, sharing_program(), instrument=instrument).run()
        return bare, RunRecord.from_result(result), instrument

    def test_sc_equivalent(self):
        bare, observed, instrument = self._records(tiny_config())
        assert bare.to_dict() == observed.to_dict()
        assert instrument.accounting is not None  # conservation enforced

    def test_dsi_fifo_equivalent(self):
        bare, observed, instrument = self._records(dsi_fifo_config())
        assert bare.to_dict() == observed.to_dict()

    def test_fastpath_equivalent(self):
        # check_invariants=False is what arms the direct-execution fast
        # path (tiny_config turns it on, which disables the batcher).
        config = tiny_config(check_invariants=False)
        assert config.direct_execution and not config.check_invariants
        bare, observed, instrument = self._records(config)
        assert bare.to_dict() == observed.to_dict()
        assert instrument.accounting is not None

    def test_fastpath_and_interpreter_report_same_totals(self):
        from repro.obs import CausalInstrument

        totals = []
        for check in (True, False):
            instrument = CausalInstrument()
            Machine(
                tiny_config(check_invariants=check),
                sharing_program(),
                instrument=instrument,
            ).run()
            totals.append(instrument.accounting["categories"])
        assert totals[0] == totals[1]


class TestProbes:
    def test_message_counts_match_network_counters(self):
        instrument, result = instrumented_run()
        total = sum(result.messages.network.values()) + sum(
            result.messages.local.values()
        )
        assert instrument.counts["message_send"] == total
        assert instrument.counts["message_receive"] == total
        assert sum(instrument.message_kinds.values()) == total

    def test_cache_fill_counts_misses(self):
        instrument, result = instrumented_run()
        fills = result.misses.read_misses + result.misses.write_misses
        assert instrument.counts["cache_fill"] == fills

    def test_mshr_open_close_balanced(self):
        instrument, _ = instrumented_run()
        assert instrument.counts["mshr_open"] > 0
        assert instrument.counts["mshr_open"] == instrument.counts["mshr_close"]

    def test_self_invalidate_probe(self):
        instrument, result = instrumented_run(dsi_fifo_config(), sharing_program())
        assert instrument.counts["self_invalidate"] == result.misses.self_invalidations

    def test_fifo_probes_fire_under_fifo_mechanism(self):
        instrument, _ = instrumented_run(dsi_fifo_config(), sharing_program())
        assert instrument.counts["fifo_push"] > 0
        assert instrument.fifo_series

    def test_wb_probes_fire_under_wc(self):
        instrument, _ = instrumented_run(
            tiny_config(consistency=Consistency.WC), sharing_program()
        )
        assert instrument.counts["wb_fill"] > 0
        assert instrument.counts["wb_fill"] == instrument.counts["wb_drain"]

    def test_sync_probes_balanced(self):
        instrument, _ = instrumented_run()
        assert instrument.counts["sync_enter"] > 0
        assert instrument.counts["sync_enter"] == instrument.counts["sync_exit"]

    def test_inv_round_trips(self):
        instrument, result = instrumented_run()
        assert instrument.counts["inv_sent"] > 0
        assert instrument.counts["inv_sent"] == instrument.counts["inv_acked"]
        assert instrument.counts["inv_sent"] == (
            result.messages.network.get("INV", 0) + result.messages.local.get("INV", 0)
        )

    def test_machine_without_instrument_has_no_obs(self):
        machine = Machine(tiny_config(), sharing_program())
        assert machine.instrument is None
        assert machine.network.obs is None
        assert all(c.obs is None for c in machine.controllers)
        assert all(d.obs is None for d in machine.directories)


class TestSpans:
    def test_miss_spans_have_positive_duration(self):
        instrument, _ = instrumented_run()
        miss_spans = instrument.spans.by_category("miss")
        assert miss_spans
        assert all(s.duration >= 0 for s in miss_spans)
        assert any(s.duration > 0 for s in miss_spans)

    def test_all_spans_closed_at_end(self):
        instrument, _ = instrumented_run()
        assert instrument.spans.open_count() == 0

    def test_latency_histograms_fed(self):
        instrument, _ = instrumented_run()
        for category in ("miss", "dir", "sync"):
            assert instrument.latency[category].count > 0

    def test_dir_spans_on_directory_lane(self):
        from repro.obs.spans import LANE_DIR

        instrument, _ = instrumented_run()
        assert all(s.lane == LANE_DIR for s in instrument.spans.by_category("dir"))

    def test_rebind_to_other_machine_rejected(self):
        instrument, _ = instrumented_run()
        with pytest.raises(ValueError):
            Machine(tiny_config(), sharing_program(), instrument=instrument)


class TestSpanTracker:
    def test_begin_end_round_trip(self):
        tracker = SpanTracker()
        tracker.begin("k", "miss", "read", LANE_PROC, 0, 10)
        span = tracker.end("k", 25)
        assert span.duration == 15
        assert tracker.spans == [span]

    def test_begin_is_idempotent_keeps_earliest(self):
        tracker = SpanTracker()
        tracker.begin("k", "dir", "read", LANE_PROC, 0, 10)
        tracker.begin("k", "dir", "read", LANE_PROC, 0, 50)
        assert tracker.end("k", 60).start == 10

    def test_end_without_begin_is_none(self):
        assert SpanTracker().end("missing", 5) is None

    def test_max_spans_drops_and_counts(self):
        tracker = SpanTracker(max_spans=2)
        for i in range(4):
            tracker.begin(i, "miss", "m", LANE_PROC, 0, i)
            tracker.end(i, i + 1)
        assert len(tracker.spans) == 2
        assert tracker.dropped == 2


class TestSamplers:
    def test_time_series_records_level_changes(self):
        series = TimeSeries("fifo")
        series.record(0, 1)
        series.record(10, 2)
        series.record(20, 0)
        assert series.value_at(5) == 1
        assert series.value_at(10) == 2
        assert series.value_at(25) == 0
        assert series.last == 0

    def test_same_cycle_updates_collapse(self):
        series = TimeSeries("wb")
        series.record(5, 1)
        series.record(5, 3)
        assert len(series) == 1
        assert series.value_at(5) == 3

    def test_time_weighted_histogram(self):
        series = TimeSeries("dir")
        series.record(0, 1)  # level 1 for 90 cycles
        series.record(90, 10)  # level 10 for 10 cycles
        hist = series.histogram(end_time=100)
        assert hist.mean() == pytest.approx((1 * 90 + 10 * 10) / 100)

    def test_max_points_bounds_memory(self):
        series = TimeSeries("ni", max_points=3)
        for t in range(10):
            series.record(t, t)
        assert len(series) == 3
        assert series.dropped == 7

    def test_empty_series(self):
        series = TimeSeries("empty")
        assert len(series) == 0
        assert series.last == 0
        assert series.value_at(100) == 0
        hist = series.histogram(end_time=50)
        assert hist.count == 0 and hist.mean() == 0.0
        data = series.as_dict(end_time=50)
        assert data["points"] == 0 and data["count"] == 0

    def test_all_samples_at_identical_timestamp(self):
        # Every change lands in one cycle: each level's held-time weight
        # is zero, so the histogram takes the degenerate path and weights
        # the final level once instead of reporting nothing.
        series = TimeSeries("burst")
        series.record(7, 1)
        series.record(7, 5)
        series.record(7, 2)
        assert len(series) == 1  # same-cycle updates collapse
        hist = series.histogram(end_time=7)
        assert hist.count == 1
        assert hist.mean() == 2

    def test_zero_duration_tail_sample(self):
        # The last sample lands exactly at end_time: it held for zero
        # cycles and must not contribute weight, but the earlier levels
        # still integrate normally.
        series = TimeSeries("tail")
        series.record(0, 4)
        series.record(10, 9)
        hist = series.histogram(end_time=10)
        assert hist.weight == 10
        assert hist.mean() == pytest.approx(4.0)

    def test_end_time_before_samples_degenerates(self):
        series = TimeSeries("late")
        series.record(100, 3)
        hist = series.histogram(end_time=100)
        assert hist.count == 1
        assert hist.mean() == 3

    def test_histogram_percentiles(self):
        hist = Histogram("lat")
        for value in range(1, 101):
            hist.add(value)
        assert hist.percentile(50) == 50
        assert hist.percentile(99) == 99
        assert hist.percentiles() == {"p50": 50, "p90": 90, "p99": 99}

    def test_histogram_as_dict(self):
        hist = Histogram("lat")
        hist.add(10)
        hist.add(30)
        data = hist.as_dict()
        assert data["count"] == 2
        assert data["min"] == 10 and data["max"] == 30
        assert data["mean"] == pytest.approx(20.0)


class TestSeriesTables:
    def test_all_counter_groups_present(self):
        instrument, _ = instrumented_run(dsi_fifo_config(), sharing_program())
        tables = instrument.series_tables()
        assert set(tables) == {
            "fifo_occupancy",
            "write_buffer_depth",
            "directory_occupancy",
            "ni_queue_depth",
        }
        assert tables["fifo_occupancy"]
        assert tables["write_buffer_depth"]
        assert tables["directory_occupancy"]

    def test_directory_occupancy_returns_to_zero(self):
        instrument, _ = instrumented_run()
        for series in instrument.dir_series.values():
            assert series.last == 0

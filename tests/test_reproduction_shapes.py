"""The paper's headline claims, as plain tests.

The benchmark suite re-runs every figure/table with shape assertions;
this file keeps a slim copy of the *headline* claims inside ``pytest
tests/`` so the reproduction is validated on every test run (quick scale,
8 processors, ~10 s for the whole module via a shared runner).
"""

import pytest

from repro.harness import figure5, table2, table3
from repro.harness.configs import LARGE_CACHE, SLOW_NET, SMALL_CACHE, paper_config
from repro.harness.experiment import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_procs=8, quick=True)


def norm(runner, workload, protocol, cache=SMALL_CACHE, latency=100):
    base = paper_config("SC", cache=cache, latency=latency, n_procs=8)
    config = paper_config(protocol, cache=cache, latency=latency, n_procs=8)
    return runner.run(workload, config).normalized_to(runner.run(workload, base))


class TestAbstractClaims:
    """Each test pins one sentence of the paper's abstract/intro."""

    def test_dsi_reduces_sc_execution_time(self, runner):
        """'DSI reduces execution time of a sequentially consistent
        full-map coherence protocol' — clearly visible on em3d."""
        assert norm(runner, "em3d", "S") < 0.9

    def test_dsi_comparable_to_weak_consistency(self, runner):
        """'comparable to an implementation of weak consistency' — within
        ~10 points on em3d."""
        assert abs(norm(runner, "em3d", "S") - norm(runner, "em3d", "W")) < 0.12

    def test_dsi_beats_wc_on_sparse(self, runner):
        """§5.2: 'outperforming weak consistency' on sparse."""
        assert norm(runner, "sparse", "V") <= norm(runner, "sparse", "W") + 0.01

    def test_version_numbers_generally_beat_states(self, runner):
        """'a 4-bit version number generally performs better than the
        additional state method' — true on sparse (the paper's Figure 4
        evidence); never dramatically worse elsewhere."""
        assert norm(runner, "sparse", "V") <= norm(runner, "sparse", "S") + 0.01
        for workload in ("em3d", "ocean", "tomcatv"):
            assert norm(runner, workload, "V") <= norm(runner, workload, "S") + 0.1

    def test_fifo_collapses_on_sparse(self, runner):
        """'selectively flushing is more effective because the FIFO's
        finite size can cause self-invalidation to occur too early.'"""
        result = figure5.run(runner)
        rows = {row[0]: row for row in result.rows}
        assert float(rows["sparse"][2]) > float(rows["sparse"][1]) + 0.05
        assert rows["sparse"][3] > 0  # overflows

    def test_tearoff_eliminates_invalidations(self, runner):
        """'combining DSI and weak consistency can eliminate 50-100% of
        the invalidation messages' — em3d lands inside the band."""
        result = table3.run(runner)
        em3d_rows = [r for r in result.row_dicts() if r["workload"] == "em3d"]
        for row in em3d_rows:
            assert 50 <= float(row["inval_red_%"]) <= 100

    def test_wc_dsi_little_effect_except_sparse(self, runner):
        """Table 2's pattern: WC+DSI ~ WC everywhere but sparse."""
        result = table2.run(runner)
        for row in result.row_dicts():
            value = float(row["norm_time"])
            if row["workload"] == "sparse":
                assert value < 0.97
            else:
                assert 0.85 <= value <= 1.2

    def test_ocean_favors_wc_over_dsi(self, runner):
        """§5.2: unsynchronized accesses defeat DSI; WC just buffers."""
        assert norm(runner, "ocean", "W", cache=LARGE_CACHE) < 0.8
        assert norm(runner, "ocean", "V", cache=LARGE_CACHE) > norm(
            runner, "ocean", "W", cache=LARGE_CACHE
        ) + 0.1

    def test_tomcatv_capacity_bound_at_small_cache(self, runner):
        """'no change in execution time for any protocol, since its data
        set is too large for the cache' — DSI exactly 1.00.  Needs the
        full working-set geometry (24 KB/processor > the 16 KB cache)."""
        geometry = {"rows_per_proc": 16, "cols": 128, "iterations": 1}
        base = runner.run(
            "tomcatv", paper_config("SC", cache=SMALL_CACHE, n_procs=8), **geometry
        )
        for protocol in ("S", "V"):
            result = runner.run(
                "tomcatv", paper_config(protocol, cache=SMALL_CACHE, n_procs=8), **geometry
            )
            assert result.normalized_to(base) == pytest.approx(1.0, abs=0.02)

    def test_slow_network_amplifies_dsi(self, runner):
        """§5.2 'Impact of Network Latency': em3d's DSI saving at 1000
        cycles is at least its saving at 100 cycles."""
        fast = norm(runner, "em3d", "S", cache=LARGE_CACHE, latency=100)
        slow = norm(runner, "em3d", "S", cache=LARGE_CACHE, latency=SLOW_NET)
        assert slow <= fast + 0.02

"""SystemConfig validation and derived geometry."""

import pytest

from repro.config import Consistency, IdentifyScheme, KB, MB, SIMechanism, SystemConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_are_the_paper_machine(self):
        config = SystemConfig()
        assert config.n_processors == 32
        assert config.cache_size == 256 * KB
        assert config.cache_assoc == 4
        assert config.block_size == 32
        assert config.cache_ctrl_cycles == 3
        assert config.dir_ctrl_cycles == 10
        assert config.inject_cycles == 3
        assert config.inject_data_cycles == 8
        assert config.network_latency == 100
        assert config.barrier_latency == 100
        assert config.write_buffer_entries == 16
        assert config.version_bits == 4
        assert config.read_counter_bits == 2
        assert config.fifo_entries == 64

    def test_block_size_power_of_two(self):
        with pytest.raises(ConfigError):
            SystemConfig(block_size=48)

    def test_cache_size_multiple_of_row(self):
        with pytest.raises(ConfigError):
            SystemConfig(cache_size=1000)

    def test_tearoff_requires_wc(self):
        with pytest.raises(ConfigError, match="tear-off"):
            SystemConfig(tearoff=True, identify=IdentifyScheme.VERSION)

    def test_tearoff_requires_dsi(self):
        with pytest.raises(ConfigError):
            SystemConfig(tearoff=True, consistency=Consistency.WC)

    def test_tearoff_valid_combination(self):
        config = SystemConfig(
            tearoff=True, consistency=Consistency.WC, identify=IdentifyScheme.VERSION
        )
        assert config.tearoff

    def test_version_bits_bounds(self):
        with pytest.raises(ConfigError):
            SystemConfig(version_bits=0)
        with pytest.raises(ConfigError):
            SystemConfig(version_bits=17)

    def test_n_processors_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(n_processors=0)

    def test_write_buffer_positive(self):
        with pytest.raises(ConfigError):
            SystemConfig(write_buffer_entries=0)


class TestDerived:
    def test_geometry(self):
        config = SystemConfig(cache_size=16 * KB, cache_assoc=4, block_size=32)
        assert config.n_blocks == 512
        assert config.n_sets == 128
        assert config.block_shift == 5

    def test_masks(self):
        config = SystemConfig(version_bits=4, read_counter_bits=2)
        assert config.version_mask == 0xF
        assert config.read_counter_mask == 0x3

    def test_dsi_enabled(self):
        assert not SystemConfig().dsi_enabled
        assert SystemConfig(identify=IdentifyScheme.STATES).dsi_enabled
        assert SystemConfig(identify=IdentifyScheme.VERSION).dsi_enabled

    def test_with_returns_modified_copy(self):
        base = SystemConfig()
        slow = base.with_(network_latency=1000)
        assert slow.network_latency == 1000
        assert base.network_latency == 100

    def test_with_revalidates(self):
        base = SystemConfig()
        with pytest.raises(ConfigError):
            base.with_(tearoff=True)

    def test_mb_constant(self):
        assert MB == 1024 * KB


class TestDescribe:
    def test_base_labels(self):
        assert SystemConfig().describe() == "SC"
        assert SystemConfig(consistency=Consistency.WC).describe() == "WC"

    def test_dsi_labels(self):
        assert SystemConfig(identify=IdentifyScheme.STATES).describe() == "SC+DSI(S)"
        assert SystemConfig(identify=IdentifyScheme.VERSION).describe() == "SC+DSI(V)"

    def test_fifo_label(self):
        config = SystemConfig(identify=IdentifyScheme.VERSION, si_mechanism=SIMechanism.FIFO)
        assert config.describe() == "SC+DSI(V)+FIFO64"

    def test_tearoff_label(self):
        config = SystemConfig(
            consistency=Consistency.WC, identify=IdentifyScheme.VERSION, tearoff=True
        )
        assert config.describe() == "WC+DSI(V)+TO"

"""ASCII chart rendering and occupancy reporting."""

import pytest

from conftest import seg_addr, tiny_config
from repro.stats.ascii_chart import GLYPHS, bar_chart, progress_bar, stacked_bar, stacked_bars
from repro.stats.breakdown import CATEGORIES, Breakdown
from repro.stats.counters import MessageCounters, MissCounters
from repro.stats.report import RunResult
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


def result_with(label, exec_time, **cycles):
    breakdown = Breakdown()
    for category, amount in cycles.items():
        breakdown.add(category, amount)
    return RunResult(
        label=label,
        workload="w",
        exec_time=exec_time,
        per_proc_time=[exec_time],
        breakdowns=[breakdown],
        messages=MessageCounters(),
        misses=MissCounters(),
        events_fired=0,
        dir_busy_cycles=exec_time // 4,
    )


class TestStackedBar:
    def test_all_categories_have_glyphs(self):
        assert set(GLYPHS) == set(CATEGORIES)

    def test_bar_length_scales(self):
        fractions = {"compute": 1.0}
        assert len(stacked_bar(fractions, scale=1.0, width=40)) == 40
        assert len(stacked_bar(fractions, scale=0.5, width=40)) == 20

    def test_categories_partition_bar(self):
        fractions = {"compute": 0.5, "sync": 0.5}
        bar = stacked_bar(fractions, scale=1.0, width=20)
        assert bar == "#" * 10 + "%" * 10

    def test_rounding_slack_absorbed(self):
        fractions = {"compute": 1 / 3, "sync": 1 / 3, "read_other": 1 / 3}
        bar = stacked_bar(fractions, scale=1.0, width=40)
        assert len(bar) == 40

    def test_zero_scale(self):
        assert stacked_bar({"compute": 1.0}, scale=0.0, width=40) == ""


class TestStackedBars:
    def test_normalized_lengths(self):
        base = result_with("SC", 100, compute=40, read_other=60)
        dsi = result_with("DSI", 50, compute=40, read_other=10)
        text = stacked_bars([base, dsi], width=40)
        lines = text.splitlines()
        assert "1.00" in lines[0]
        assert "0.50" in lines[1]

    def test_legend_present(self):
        text = stacked_bars([result_with("SC", 10, compute=10)])
        assert "#=compute" in text

    def test_empty(self):
        assert stacked_bars([], title="t") == "t"

    def test_title(self):
        text = stacked_bars([result_with("SC", 10, compute=10)], title="em3d")
        assert text.splitlines()[0] == "em3d"


class TestBarChart:
    def test_peak_fills_width(self):
        text = bar_chart([("a", 10), ("b", 5)], width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_empty(self):
        assert bar_chart([], title="x") == "x"

    def test_zero_values(self):
        text = bar_chart([("a", 0)])
        assert "a" in text


class TestProgressBar:
    def test_fixed_width(self):
        for fraction in (0.0, 0.33, 1.0):
            assert len(progress_bar(fraction, width=20)) == 22  # + brackets

    def test_endpoints(self):
        assert progress_bar(0.0, width=8) == "[--------]"
        assert progress_bar(1.0, width=8) == "[########]"
        assert progress_bar(0.5, width=8) == "[####----]"

    def test_clamps_out_of_range(self):
        assert progress_bar(-0.5, width=4) == "[----]"
        assert progress_bar(7.0, width=4) == "[####]"


class TestOccupancyReporting:
    def test_dir_busy_cycles_collected(self):
        program = Program(
            "p",
            [TraceBuilder().read(seg_addr(1)).build(), TraceBuilder().build()],
        )
        result = Machine(tiny_config(), program).run()
        # One GETS = one directory job of 10 cycles.
        assert result.dir_busy_cycles == 10

    def test_ni_busy_cycles_collected(self):
        program = Program(
            "p",
            [TraceBuilder().read(seg_addr(1)).build(), TraceBuilder().build()],
        )
        result = Machine(tiny_config(), program).run()
        # GETS injection (3) + DATA response injection (11).
        assert result.ni_busy_cycles == 14

    def test_local_traffic_skips_ni(self):
        program = Program("p", [TraceBuilder().read(seg_addr(0)).build()])
        result = Machine(tiny_config(n_procs=1), program).run()
        assert result.ni_busy_cycles == 0
        assert result.dir_busy_cycles == 10

    def test_dir_occupancy_fraction(self):
        base = result_with("SC", 100, compute=100)
        assert base.dir_occupancy() == pytest.approx(0.25)

    def test_dir_occupancy_empty(self):
        empty = result_with("SC", 0)
        assert empty.dir_occupancy() == 0.0

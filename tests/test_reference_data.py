"""Consistency of the transcribed paper data and experiment plumbing."""

import pytest

from repro.harness import paper_reference
from repro.harness.configs import PROTOCOLS, WORKLOADS
from repro.harness.experiment import ExperimentResult, ExperimentRunner


class TestPaperReference:
    def test_figure3_covers_all_cells(self):
        for workload in WORKLOADS:
            assert workload in paper_reference.FIGURE3
            for cache in ("small", "large"):
                cells = paper_reference.FIGURE3[workload][cache]
                assert set(cells) == set(PROTOCOLS)
                assert cells["SC"] == 1.00

    def test_figure4_covers_all_cells(self):
        for workload in WORKLOADS:
            for cache in ("small", "large"):
                cells = paper_reference.FIGURE4[workload][cache]
                assert set(cells) == set(PROTOCOLS)

    def test_table2_covers_all_configs(self):
        assert set(paper_reference.TABLE2) == {
            ("small", 100),
            ("large", 100),
            ("small", 1000),
            ("large", 1000),
        }
        for cells in paper_reference.TABLE2.values():
            assert set(cells) == set(WORKLOADS)

    def test_table3_covers_all_cells(self):
        for workload in WORKLOADS:
            for cache in ("small", "large"):
                total, inval = paper_reference.TABLE3[workload][cache]
                assert 0 <= total <= 100
                assert 0 <= inval <= 100

    def test_improvements_are_sane(self):
        """Published normalized times lie in (0, 1.2]."""
        for table in (paper_reference.FIGURE3, paper_reference.FIGURE4):
            for per_cache in table.values():
                for cells in per_cache.values():
                    for value in cells.values():
                        if value is not None:
                            assert 0.0 < value <= 1.2

    def test_headline_numbers_present(self):
        """The abstract's claims are in the tables: up to 41% SC reduction
        (em3d, 2MB, 1000 cycles) and sparse's DSI > WC."""
        assert paper_reference.FIGURE4["em3d"]["large"]["V"] == pytest.approx(0.59)
        fig3_sparse = paper_reference.FIGURE3["sparse"]["small"]
        assert fig3_sparse["V"] < fig3_sparse["W"]

    def test_fmt(self):
        assert paper_reference.fmt(None) == "--"
        assert paper_reference.fmt(0.5) == "0.50"
        assert paper_reference.fmt(7) == "7"


class TestExperimentResult:
    def test_row_dicts_roundtrip(self):
        result = ExperimentResult("x", "title", ["a", "b"], [[1, 2], [3, 4]])
        assert result.row_dicts() == [{"a": 1, "b": 2}, {"a": 3, "b": 4}]

    def test_format_contains_notes(self):
        result = ExperimentResult("x", "t", ["a"], [[1]], notes="caveat emptor")
        assert "caveat emptor" in result.format()

    def test_repr(self):
        result = ExperimentResult("x", "t", ["a"], [[1]])
        assert "x" in repr(result)


class TestRunnerVerbose:
    def test_verbose_logs_to_stderr(self, capsys):
        runner = ExperimentRunner(n_procs=4, quick=True, verbose=True)
        from repro.harness.configs import SMALL_CACHE, paper_config

        runner.run("ocean", paper_config("SC", cache=SMALL_CACHE, n_procs=4))
        err = capsys.readouterr().err
        assert "ocean" in err and "run 1" in err

    def test_workload_extra_args_key_cache(self):
        runner = ExperimentRunner(n_procs=4, quick=True)
        small = runner.program("ocean", days=1)
        default = runner.program("ocean")
        assert small is not default
        assert small is runner.program("ocean", days=1)

"""The sweep service: registry, rate limiter, broker, HTTP API.

Unit coverage for :mod:`repro.service` — the broker's admission control
(queue-full 429, per-tenant rate limiting), in-flight dedupe under
concurrency, streaming-subscriber lifecycle (no leaked sinks), shutdown
draining, and the in-process HTTP façade with its structured errors.
The end-to-end concurrency hammering lives in ``test_service_load.py``.
"""

import json
import threading
import time
import urllib.request
from collections import Counter

import pytest

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.harness.runspec import RunSpec
from repro.harness.telemetry import validate_event
from repro.service.app import DsiService
from repro.service.broker import BrokerClosedError, RejectedError, SweepBroker
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.ratelimit import RateLimiter, TokenBucket
from repro.service.registry import SweepRegistry, default_registry, normalize_name


def tiny_spec(seed=1, procs=2):
    """A spec that simulates in ~15ms — small enough to execute for real."""
    return RunSpec.create(
        "producer_consumer", SystemConfig(n_processors=procs),
        n_procs=procs, blocks=2, iterations=2, seed=seed,
    )


@pytest.fixture(scope="module")
def canned_record():
    """One real RunRecord, reused by stub executors (records are values)."""
    return tiny_spec().execute()


class StubExecutor:
    """Counts executions per spec key; optionally gated on an Event."""

    def __init__(self, record, gate=None, delay=0.0, fail_keys=()):
        self.record = record
        self.gate = gate
        self.delay = delay
        self.fail_keys = set(fail_keys)
        self.calls = Counter()
        self._lock = threading.Lock()

    def __call__(self, spec, observer=None):
        with self._lock:
            self.calls[spec.key()] += 1
        if self.gate is not None:
            assert self.gate.wait(10), "test gate never opened"
        if self.delay:
            time.sleep(self.delay)
        if spec.key() in self.fail_keys:
            raise RuntimeError("synthetic run failure")
        return self.record


def make_broker(canned_record, **kwargs):
    kwargs.setdefault("jobs", 2)
    kwargs.setdefault("executor", StubExecutor(canned_record))
    return SweepBroker(**kwargs)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_normalize_accepts_colon_spelling(self):
        assert normalize_name("ablation:fifo_depth") == "ablation/fifo_depth"
        assert normalize_name("bench/smoke") == "bench/smoke"

    @pytest.mark.parametrize("bad", ["", None, "a//b", "a/b c", "a/../b "])
    def test_normalize_rejects_garbage(self, bad):
        with pytest.raises(ConfigError):
            normalize_name(bad)

    def test_register_and_lookup_eager(self):
        registry = SweepRegistry()
        registry.register("team/mine", specs=[tiny_spec()], description="x")
        assert registry.lookup("team/mine") == (tiny_spec(),)
        assert "team/mine" in registry

    def test_loader_is_lazy_and_memoized(self):
        calls = []

        def loader():
            calls.append(1)
            return [tiny_spec()]

        registry = SweepRegistry()
        registry.register("lazy/plan", loader=loader)
        assert registry.describe("lazy")[0]["specs"] is None  # not materialized
        assert not calls
        registry.lookup("lazy/plan")
        registry.lookup("lazy/plan")
        assert len(calls) == 1
        assert registry.describe("lazy")[0]["specs"] == 1

    def test_duplicate_name_refused_unless_overwrite(self):
        registry = SweepRegistry()
        registry.register("a/b", specs=[tiny_spec()])
        with pytest.raises(ConfigError, match="already taken"):
            registry.register("a/b", specs=[tiny_spec(2)])
        registry.register("a/b", specs=[tiny_spec(2)], overwrite=True)
        assert registry.lookup("a/b") == (tiny_spec(2),)

    def test_prefix_matches_whole_segments(self):
        registry = SweepRegistry()
        registry.register("paper/figure3", specs=[tiny_spec()])
        registry.register("papers/other", specs=[tiny_spec()])
        assert registry.names("paper") == ["paper/figure3"]

    def test_default_registry_seeds_bench_and_paper(self):
        registry = default_registry()
        names = registry.names()
        assert "bench/smoke" in names
        assert "paper/figure3" in names
        assert any(name.startswith("ablation/") for name in names)
        specs = registry.lookup("bench/smoke")
        assert len(specs) == 3
        assert all(isinstance(spec, RunSpec) for spec in specs)

    def test_default_registry_paper_plans_materialize(self):
        registry = default_registry(procs=4, quick=True)
        specs = registry.lookup("paper/figure2")
        assert specs
        assert all(isinstance(spec, RunSpec) for spec in specs)
        assert len({spec.key() for spec in specs}) == len(specs)


# ----------------------------------------------------------------------
# Rate limiting
# ----------------------------------------------------------------------
class TestRateLimit:
    def test_bucket_burst_then_exact_retry_after(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3, clock=lambda: now[0])
        assert [bucket.acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        assert bucket.acquire() == pytest.approx(0.5)  # 1 token / 2 per s
        now[0] += 0.5
        assert bucket.acquire() == 0.0

    def test_bucket_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=2, clock=lambda: now[0])
        bucket.acquire(), bucket.acquire()
        now[0] += 100.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        assert bucket.acquire() > 0.0  # only refilled to burst, not rate*100

    def test_limiter_disabled_by_default(self):
        limiter = RateLimiter()
        assert not limiter.enabled
        assert limiter.acquire("anyone") == 0.0
        assert limiter.describe()["enabled"] is False

    def test_limiter_tenants_are_independent(self):
        now = [0.0]
        limiter = RateLimiter(rate=1.0, burst=1, clock=lambda: now[0])
        assert limiter.acquire("a") == 0.0
        assert limiter.acquire("a") > 0.0  # a's bucket is empty
        assert limiter.acquire("b") == 0.0  # b's is not
        assert limiter.describe()["tenants_tracked"] == 2


# ----------------------------------------------------------------------
# Broker
# ----------------------------------------------------------------------
class TestBroker:
    def test_execute_then_cache_hit_across_sweeps(self, canned_record, tmp_path):
        broker = make_broker(canned_record, cache_dir=str(tmp_path / "cache"))
        try:
            first = broker.wait(broker.submit([tiny_spec()]).id, timeout=10)
            assert first["counts"] == {
                "specs": 1, "pending": 0, "executed": 1, "cached": 0, "failed": 0,
            }
            second = broker.wait(broker.submit([tiny_spec()]).id, timeout=10)
            assert second["counts"]["cached"] == 1
            assert second["counts"]["executed"] == 0
            assert broker._executor.calls[tiny_spec().key()] == 1
        finally:
            broker.close()

    def test_disk_cache_shared_across_broker_restarts(self, canned_record, tmp_path):
        cache_dir = str(tmp_path / "cache")
        broker = make_broker(canned_record, cache_dir=cache_dir)
        broker.wait(broker.submit([tiny_spec()]).id, timeout=10)
        broker.close()
        reborn = make_broker(canned_record, cache_dir=cache_dir)
        try:
            status = reborn.wait(reborn.submit([tiny_spec()]).id, timeout=10)
            assert status["counts"]["cached"] == 1
            assert not reborn._executor.calls  # nothing re-executed
        finally:
            reborn.close()

    def test_batch_duplicates_collapse(self, canned_record):
        broker = make_broker(canned_record)
        try:
            job = broker.submit([tiny_spec(1), tiny_spec(2), tiny_spec(1)])
            status = broker.wait(job.id, timeout=10)
            assert status["counts"]["specs"] == 2
            assert status["counts"]["executed"] == 2
        finally:
            broker.close()

    def test_inflight_join_executes_once(self, canned_record):
        gate = threading.Event()
        broker = make_broker(
            canned_record, executor=StubExecutor(canned_record, gate=gate)
        )
        try:
            first = broker.submit([tiny_spec()], tenant="alice")
            second = broker.submit([tiny_spec()], tenant="bob")
            assert not first.done.is_set() and not second.done.is_set()
            gate.set()
            one = broker.wait(first.id, timeout=10)
            two = broker.wait(second.id, timeout=10)
            assert broker._executor.calls[tiny_spec().key()] == 1
            # one sweep paid for the execution, the other was served by it
            dispositions = sorted(
                (s["counts"]["executed"], s["counts"]["cached"]) for s in (one, two)
            )
            assert dispositions == [(0, 1), (1, 0)]
            started = [
                e for e in broker.global_events() if e["type"] == "run_started"
            ]
            assert len(started) == 1
        finally:
            gate.set()
            broker.close()

    def test_queue_full_rejects_whole_sweep(self, canned_record):
        gate = threading.Event()
        broker = SweepBroker(
            jobs=1, queue_depth=2,
            executor=StubExecutor(canned_record, gate=gate),
        )
        try:
            broker.submit([tiny_spec(1)])           # picked up by the worker
            time.sleep(0.05)                        # let it leave the queue
            broker.submit([tiny_spec(2), tiny_spec(3)])  # fills both slots
            with pytest.raises(RejectedError) as excinfo:
                broker.submit([tiny_spec(4)])
            assert excinfo.value.status == 429
            assert "queue full" in str(excinfo.value)
            # the rejected sweep left no trace: no job, no queued run
            assert broker.stats()["sweeps"]["total"] == 2
            assert tiny_spec(4).key() not in broker._runs
            gate.set()
            for job_id in list(broker._sweeps):
                broker.wait(job_id, timeout=10)
        finally:
            gate.set()
            broker.close()

    def test_rate_limit_rejects_with_retry_after(self, canned_record):
        now = [0.0]
        broker = make_broker(canned_record, rate=1.0, burst=2, clock=lambda: now[0])
        try:
            broker.submit([tiny_spec(1)], tenant="greedy")
            broker.submit([tiny_spec(2)], tenant="greedy")
            with pytest.raises(RejectedError) as excinfo:
                broker.submit([tiny_spec(3)], tenant="greedy")
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == pytest.approx(1.0)
            # another tenant is unaffected
            broker.submit([tiny_spec(3)], tenant="patient")
            stats = broker.stats()
            assert stats["tenants"]["greedy"]["rejected"] == 1
            assert stats["tenants"]["patient"]["rejected"] == 0
        finally:
            broker.close()

    def test_failed_run_terminates_sweep(self, canned_record):
        spec = tiny_spec()
        broker = make_broker(
            canned_record,
            executor=StubExecutor(canned_record, fail_keys=[spec.key()]),
        )
        try:
            status = broker.wait(broker.submit([spec, tiny_spec(2)]).id, timeout=10)
            assert status["counts"]["failed"] == 1
            assert status["counts"]["executed"] == 1
            failed = next(r for r in status["runs"] if r["status"] == "failed")
            assert "synthetic run failure" in failed["error"]
            # the failure is memoized too: a retry is served the failure
            retry = broker.wait(broker.submit([spec]).id, timeout=10)
            assert retry["counts"]["failed"] == 1
            assert broker._executor.calls[spec.key()] == 1
        finally:
            broker.close()

    def test_subscriber_sees_each_event_exactly_once(self, canned_record):
        gate = threading.Event()
        broker = make_broker(
            canned_record, executor=StubExecutor(canned_record, gate=gate)
        )
        try:
            job = broker.submit([tiny_spec(1), tiny_spec(2)])
            replay, sink = broker.subscribe(job.id)
            gate.set()
            events = list(replay)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                try:
                    event = sink.queue.get(timeout=0.5)
                except Exception:
                    continue
                if event is None:
                    break
                events.append(event)
                if event["type"] == "sweep_end":
                    break
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(set(seqs))  # no duplicates, total order
            types = Counter(e["type"] for e in events)
            assert types["sweep_begin"] == 1
            assert types["run_queued"] == 2
            assert types["run_finished"] == 2
            assert types["sweep_end"] == 1
            for event in events:
                validate_event(event)
                assert event["sweep"] == job.id
        finally:
            gate.set()
            broker.unsubscribe(job.id, sink)
            broker.close()

    def test_unsubscribe_removes_sink(self, canned_record):
        broker = make_broker(canned_record)
        try:
            job = broker.submit([tiny_spec()])
            broker.wait(job.id, timeout=10)
            _replay, sink = broker.subscribe(job.id)
            assert sink in job.hub.sinks
            assert broker.unsubscribe(job.id, sink)
            assert sink not in job.hub.sinks
            assert not broker.unsubscribe(job.id, sink)  # idempotent
            assert job.hub.sinks == [job.buffer]  # only the replay store left
        finally:
            broker.close()

    def test_close_drains_inflight_runs(self, canned_record):
        broker = SweepBroker(
            jobs=2, executor=StubExecutor(canned_record, delay=0.03)
        )
        jobs = [broker.submit([tiny_spec(i)]) for i in range(6)]
        broker.close(drain=True)
        for job in jobs:
            assert job.done.is_set()
            assert job.status()["counts"]["executed"] == 1
        assert all(not t.is_alive() for t in broker._threads)

    def test_close_without_drain_fails_queued_runs(self, canned_record):
        gate = threading.Event()
        broker = SweepBroker(
            jobs=1, queue_depth=64,
            executor=StubExecutor(canned_record, gate=gate),
        )
        running = broker.submit([tiny_spec(1)])
        time.sleep(0.05)  # worker picks up run 1
        queued = broker.submit([tiny_spec(2)])
        gate.set()
        broker.close(drain=False)
        assert broker.wait(running.id, timeout=10)["counts"]["failed"] == 0
        dropped = broker.wait(queued.id, timeout=10)
        assert dropped["counts"]["failed"] == 1
        assert "closed" in dropped["runs"][0]["error"]

    def test_submit_after_close_raises(self, canned_record):
        broker = make_broker(canned_record)
        broker.close()
        with pytest.raises(BrokerClosedError):
            broker.submit([tiny_spec()])

    def test_run_payload_from_memo_and_disk(self, canned_record, tmp_path):
        broker = make_broker(canned_record, cache_dir=str(tmp_path / "cache"))
        try:
            spec = tiny_spec()
            broker.wait(broker.submit([spec]).id, timeout=10)
            payload = broker.run_payload(spec.key())
            assert payload["spec"]["workload"] == "producer_consumer"
            assert payload["record"]["exec_time"] == canned_record.exec_time
            assert broker.run_payload("0" * 64) is None
        finally:
            broker.close()


# ----------------------------------------------------------------------
# HTTP façade (in-process, real sockets)
# ----------------------------------------------------------------------
@pytest.fixture()
def service(canned_record, tmp_path):
    svc = DsiService(
        cache_dir=str(tmp_path / "cache"), jobs=2, queue_depth=64,
        executor=StubExecutor(canned_record),
        registry=_tiny_registry(),
    ).start()
    try:
        yield svc
    finally:
        svc.close()


def _tiny_registry():
    registry = SweepRegistry()
    registry.register("bench/tiny", specs=[tiny_spec(1), tiny_spec(2)],
                      description="two tiny runs", source="seed")
    return registry


class TestHttpApi:
    def test_health_and_stats(self, service):
        client = ServiceClient(service.url)
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0
        stats = client.stats()
        assert stats["schema"] == 1
        assert stats["queue"] == {"depth": 0, "limit": 64}
        assert stats["registry"]["names"] == 1

    def test_submit_wait_fetch_run(self, service):
        client = ServiceClient(service.url, tenant="t")
        accepted = client.submit_specs([tiny_spec()])
        assert accepted["counts"]["specs"] == 1
        status = client.wait(accepted["sweep"], timeout=10)
        assert status["state"] == "done"
        run = status["runs"][0]
        assert run["status"] == "done"
        fetched = client.run(run["spec_key"])
        assert fetched["record"] == run["record"]

    def test_submit_by_name_and_registry_listing(self, service):
        client = ServiceClient(service.url)
        listing = client.registry()
        assert [row["name"] for row in listing["sweeps"]] == ["bench/tiny"]
        accepted = client.submit_name("bench/tiny")
        status = client.wait(accepted["sweep"], timeout=10)
        assert status["counts"]["specs"] == 2

    def test_register_then_submit_roundtrip(self, service):
        client = ServiceClient(service.url)
        created = client.register("team/mine", [tiny_spec(7)], description="d")
        assert created == {"name": "team/mine", "specs": 1}
        accepted = client.submit_name("team/mine")
        assert client.wait(accepted["sweep"], timeout=10)["counts"]["specs"] == 1
        with pytest.raises(ServiceClientError) as excinfo:
            client.register("team/mine", [tiny_spec(8)])
        assert excinfo.value.status == 409

    def test_invalid_spec_payload_is_structured_400(self, service):
        client = ServiceClient(service.url)
        good = tiny_spec().to_dict()
        bad = tiny_spec(2).to_dict()
        bad["config"]["identify"] = "psychic"
        bad["surprise"] = True
        with pytest.raises(ServiceClientError) as excinfo:
            client.submit_specs([good, bad])
        assert excinfo.value.status == 400
        details = excinfo.value.payload["details"]
        assert all(entry["spec"] == 1 for entry in details)  # index is tagged
        assert {entry["field"] for entry in details} == {"config.identify", "surprise"}

    def test_unknown_routes_and_names_are_404(self, service):
        client = ServiceClient(service.url)
        for call in (
            lambda: client.sweep("nope"),
            lambda: client.run("0" * 64),
            lambda: client.submit_name("bench/absent"),
            lambda: client._request("GET", "/v2/everything"),
        ):
            with pytest.raises(ServiceClientError) as excinfo:
                call()
            assert excinfo.value.status == 404

    def test_empty_submission_is_400(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/v1/sweeps", body={"specs": []})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceClientError) as excinfo:
            client._request("POST", "/v1/sweeps", body={})
        assert excinfo.value.status == 400

    def test_event_stream_is_schema_valid_ndjson(self, service):
        client = ServiceClient(service.url)
        accepted = client.submit_specs([tiny_spec(1), tiny_spec(2)])
        events = list(client.events(accepted["sweep"], timeout=10))
        assert events[0]["type"] == "sweep_begin"
        assert events[-1]["type"] == "sweep_end"
        for event in events:
            validate_event(event)
        # replaying after completion yields the identical stream
        again = list(client.events(accepted["sweep"], timeout=10))
        assert [e["seq"] for e in again] == [e["seq"] for e in events]

    def test_disconnected_subscriber_leaves_no_sink(self, canned_record, tmp_path):
        gate = threading.Event()
        svc = DsiService(
            jobs=1, executor=StubExecutor(canned_record, gate=gate),
            registry=_tiny_registry(),
        ).start()
        try:
            client = ServiceClient(svc.url)
            accepted = client.submit_specs([tiny_spec()])
            job = svc.broker.sweep(accepted["sweep"])
            response = client._request(
                "GET", f"/v1/sweeps/{accepted['sweep']}/events", stream=True
            )
            response.readline()  # sweep_begin: the handler is attached
            assert len(job.hub.sinks) == 2
            response.close()  # client vanishes mid-stream
            gate.set()  # terminal events now hit the dead socket
            client.wait(accepted["sweep"], timeout=10)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline and len(job.hub.sinks) > 1:
                time.sleep(0.05)
            assert job.hub.sinks == [job.buffer]  # the handler unsubscribed
        finally:
            gate.set()
            svc.close()

    def test_429_carries_retry_after_header(self, canned_record):
        svc = DsiService(
            jobs=1, rate=1.0, burst=1,
            executor=StubExecutor(canned_record),
            registry=_tiny_registry(),
        ).start()
        try:
            client = ServiceClient(svc.url, tenant="hammer")
            client.submit_specs([tiny_spec(1)])
            with pytest.raises(ServiceClientError) as excinfo:
                client.submit_specs([tiny_spec(2)])
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after > 0
        finally:
            svc.close()

    def test_raw_request_content_type_and_bad_json(self, service):
        request = urllib.request.Request(
            service.url + "/v1/sweeps", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert "not JSON" in body["error"]

"""Unit tests for the DSI identification policies (§4.1).

These check the paper's decision tables directly against DirEntry states.
"""


from repro.config import IdentifyScheme, SystemConfig
from repro.core.identify import NoIdentify, StatesIdentify, VersionIdentify, make_policy
from repro.core.tearoff import TearoffTracker
from repro.directory.state import (
    DIR_EXCLUSIVE,
    DIR_IDLE,
    DIR_SHARED,
    DirEntry,
    FLAVOR_PLAIN,
    FLAVOR_S,
    FLAVOR_SI,
    FLAVOR_X,
)


def entry_with(state=DIR_IDLE, flavor=FLAVOR_PLAIN, shared_si=False, owner=None,
               last_writer=None, version=0, read_ctr=0, sharers=()):
    entry = DirEntry()
    entry.state = state
    entry.idle_flavor = flavor
    entry.shared_si = shared_si
    entry.owner = owner
    entry.last_writer = last_writer
    entry.version = version
    entry.read_ctr = read_ctr
    for node in sharers:
        entry.add_sharer(node)
    return entry


class TestNoIdentify:
    def test_never_marks(self):
        policy = NoIdentify()
        for state in (DIR_IDLE, DIR_SHARED, DIR_EXCLUSIVE):
            entry = entry_with(state=state, owner=1)
            assert not policy.classify_read(entry, 0, None).si
            assert not policy.classify_write(entry, 0, None).si


class TestStatesReads:
    """Read requests obtain an SI block iff the state is Exclusive,
    Idle_X, Shared_SI or Idle_SI."""

    policy = StatesIdentify()

    def test_exclusive_marks(self):
        entry = entry_with(state=DIR_EXCLUSIVE, owner=1)
        assert self.policy.classify_read(entry, 0, None).si

    def test_exclusive_same_owner_does_not_mark(self):
        entry = entry_with(state=DIR_EXCLUSIVE, owner=0)
        assert not self.policy.classify_read(entry, 0, None).si

    def test_shared_si_marks(self):
        entry = entry_with(state=DIR_SHARED, shared_si=True, sharers=[1])
        assert self.policy.classify_read(entry, 0, None).si

    def test_plain_shared_does_not_mark(self):
        entry = entry_with(state=DIR_SHARED, sharers=[1])
        assert not self.policy.classify_read(entry, 0, None).si

    def test_idle_x_marks(self):
        entry = entry_with(flavor=FLAVOR_X)
        assert self.policy.classify_read(entry, 0, None).si

    def test_idle_si_marks(self):
        entry = entry_with(flavor=FLAVOR_SI)
        assert self.policy.classify_read(entry, 0, None).si

    def test_idle_s_does_not_mark(self):
        entry = entry_with(flavor=FLAVOR_S)
        assert not self.policy.classify_read(entry, 0, None).si

    def test_plain_idle_does_not_mark(self):
        entry = entry_with()
        assert not self.policy.classify_read(entry, 0, None).si


class TestStatesWrites:
    """Write requests obtain an SI block iff the state is Shared,
    Shared_SI, Exclusive, Idle_S, Idle_SI, or Idle_X written by another
    processor."""

    policy = StatesIdentify()

    def test_shared_marks(self):
        entry = entry_with(state=DIR_SHARED, sharers=[1])
        assert self.policy.classify_write(entry, 0, None).si

    def test_shared_si_marks(self):
        entry = entry_with(state=DIR_SHARED, shared_si=True, sharers=[1])
        assert self.policy.classify_write(entry, 0, None).si

    def test_exclusive_marks(self):
        entry = entry_with(state=DIR_EXCLUSIVE, owner=1)
        assert self.policy.classify_write(entry, 0, None).si

    def test_idle_s_marks(self):
        entry = entry_with(flavor=FLAVOR_S)
        assert self.policy.classify_write(entry, 0, None).si

    def test_idle_si_marks(self):
        entry = entry_with(flavor=FLAVOR_SI)
        assert self.policy.classify_write(entry, 0, None).si

    def test_idle_x_other_writer_marks(self):
        entry = entry_with(flavor=FLAVOR_X, last_writer=1)
        assert self.policy.classify_write(entry, 0, None).si

    def test_idle_x_same_writer_does_not_mark(self):
        """The migratory-reuse case: the processor that self-invalidated
        its own exclusive copy gets a normal block back."""
        entry = entry_with(flavor=FLAVOR_X, last_writer=0)
        assert not self.policy.classify_write(entry, 0, None).si

    def test_plain_idle_does_not_mark(self):
        entry = entry_with()
        assert not self.policy.classify_write(entry, 0, None).si

    def test_tearoff_multi_bit_marks(self):
        entry = entry_with()
        entry.tearoff.on_grant()
        entry.tearoff.on_grant()
        assert self.policy.classify_write(entry, 0, None).si

    def test_single_tearoff_does_not_mark(self):
        entry = entry_with()
        entry.tearoff.on_grant()
        assert not self.policy.classify_write(entry, 0, None).si


class TestStatesBookkeeping:
    def test_exclusive_grant_records_writer_and_resets_tearoff(self):
        policy = StatesIdentify()
        entry = entry_with()
        entry.tearoff.on_grant()
        entry.tearoff.on_grant()
        policy.on_exclusive_grant(entry, 3)
        assert entry.last_writer == 3
        assert not entry.tearoff.multi
        assert entry.tearoff.count == 0


class TestVersionReads:
    policy = VersionIdentify(version_mask=0xF, read_counter_mask=0x3)

    def test_mismatch_marks(self):
        entry = entry_with(version=5)
        assert self.policy.classify_read(entry, 0, req_version=3).si

    def test_match_does_not_mark(self):
        entry = entry_with(version=5)
        assert not self.policy.classify_read(entry, 0, req_version=5).si

    def test_no_version_does_not_mark(self):
        """No tag match at the cache -> normal block (the paper's rule)."""
        entry = entry_with(version=5)
        assert not self.policy.classify_read(entry, 0, req_version=None).si


class TestVersionWrites:
    policy = VersionIdentify(version_mask=0xF, read_counter_mask=0x3)

    def test_mismatch_marks(self):
        entry = entry_with(version=5)
        assert self.policy.classify_write(entry, 0, req_version=2).si

    def test_read_counter_full_marks(self):
        entry = entry_with(version=5, read_ctr=0x3)
        assert self.policy.classify_write(entry, 0, req_version=5).si

    def test_one_read_does_not_mark(self):
        entry = entry_with(version=5, read_ctr=0x1)
        assert not self.policy.classify_write(entry, 0, req_version=5).si

    def test_no_version_counter_still_applies(self):
        entry = entry_with(read_ctr=0x3)
        assert self.policy.classify_write(entry, 0, req_version=None).si


class TestVersionBookkeeping:
    def test_version_increments_and_wraps(self):
        policy = VersionIdentify(version_mask=0x3, read_counter_mask=0x3)
        entry = entry_with(version=3)
        policy.on_exclusive_grant(entry, 0)
        assert entry.version == 0  # wrapped around 2 bits

    def test_exclusive_grant_clears_read_counter(self):
        policy = VersionIdentify(version_mask=0xF, read_counter_mask=0x3)
        entry = entry_with(read_ctr=0x3)
        policy.on_exclusive_grant(entry, 0)
        assert entry.read_ctr == 0

    def test_shared_grant_shifts_counter(self):
        policy = VersionIdentify(version_mask=0xF, read_counter_mask=0x3)
        entry = entry_with()
        policy.on_shared_grant(entry, 0, tearoff=False)
        assert entry.read_ctr == 0b01
        policy.on_shared_grant(entry, 1, tearoff=False)
        assert entry.read_ctr == 0b11
        policy.on_shared_grant(entry, 2, tearoff=False)
        assert entry.read_ctr == 0b11  # saturates at the mask

    def test_tearoff_grants_count_as_reads(self):
        policy = VersionIdentify(version_mask=0xF, read_counter_mask=0x3)
        entry = entry_with()
        policy.on_shared_grant(entry, 0, tearoff=True)
        policy.on_shared_grant(entry, 1, tearoff=True)
        assert entry.read_ctr == 0b11
        assert entry.tearoff.multi


class TestVersionWraparound:
    """Regression: the 4-bit version field wraps after 16 exclusive
    grants.  A reader whose retained version is k generations stale must
    be marked for self-invalidation for *every* k in 1..15 — an ordered
    comparison (or a missing mask) would falsely skip SI for roughly
    half of them once the counter wraps past zero."""

    def fresh(self, start_version=9):
        # Start near the top of the 4-bit range so the wrap happens
        # mid-sequence, not at the end.
        policy = VersionIdentify(version_mask=0xF, read_counter_mask=0x3)
        entry = entry_with(version=start_version)
        return policy, entry, start_version

    def test_every_stale_generation_marks_read(self):
        policy, entry, retained = self.fresh()
        for generation in range(1, 16):
            policy.on_exclusive_grant(entry, requester=1)
            decision = policy.classify_read(entry, 0, req_version=retained)
            assert decision.si, (
                f"false SI skip at generation {generation} "
                f"(entry version {entry.version}, retained {retained})"
            )

    def test_every_stale_generation_marks_write(self):
        policy, entry, retained = self.fresh()
        for generation in range(1, 16):
            policy.on_exclusive_grant(entry, requester=1)
            assert policy.classify_write(entry, 0, req_version=retained).si, (
                f"false SI skip at generation {generation}"
            )

    def test_generation_16_aliases_by_design(self):
        """After exactly 16 grants the counter aliases back onto the
        retained version: the scheme accepts this (the paper's trade-off
        for a 4-bit field) and hands out a normal block."""
        policy, entry, retained = self.fresh()
        for _ in range(16):
            policy.on_exclusive_grant(entry, requester=1)
        assert entry.version == retained
        assert not policy.classify_read(entry, 0, req_version=retained).si

    def test_wrap_never_leaves_the_field_width(self):
        policy, entry, _ = self.fresh(start_version=0)
        for _ in range(40):
            policy.on_exclusive_grant(entry, requester=1)
            assert 0 <= entry.version <= 0xF


class TestTearoffTracker:
    def test_multi_requires_two(self):
        tracker = TearoffTracker()
        tracker.on_grant()
        assert not tracker.multi
        tracker.on_grant()
        assert tracker.multi

    def test_exclusive_grant_resets(self):
        tracker = TearoffTracker()
        tracker.on_grant()
        tracker.on_grant()
        tracker.on_exclusive_grant()
        assert not tracker.multi and tracker.count == 0


class TestFactory:
    def test_factory_dispatch(self):
        assert isinstance(make_policy(SystemConfig()), NoIdentify)
        assert isinstance(
            make_policy(SystemConfig(identify=IdentifyScheme.STATES)), StatesIdentify
        )
        version = make_policy(SystemConfig(identify=IdentifyScheme.VERSION))
        assert isinstance(version, VersionIdentify)
        assert version.version_mask == 0xF
        assert version.read_counter_mask == 0x3

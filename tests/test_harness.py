"""Harness: configurations, runner caching, experiment modules, CLI.

Experiment modules run at quick scale with a small machine so the whole
file stays fast while exercising every code path.
"""

import pytest

from repro.config import Consistency, IdentifyScheme, SIMechanism
from repro.errors import ConfigError
from repro.harness import ablations, cli, figure2, figure3, figure4, figure5, figure6, table2, table3
from repro.harness.configs import (
    FAST_NET,
    LARGE_CACHE,
    PROTOCOLS,
    SLOW_NET,
    SMALL_CACHE,
    WORKLOADS,
    paper_config,
    workload_args,
)
from repro.harness.experiment import ExperimentRunner


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(n_procs=4, quick=True)


class TestConfigs:
    def test_protocol_labels(self):
        assert paper_config("SC").consistency is Consistency.SC
        assert paper_config("W").consistency is Consistency.WC
        assert paper_config("S").identify is IdentifyScheme.STATES
        assert paper_config("V").identify is IdentifyScheme.VERSION
        assert paper_config("V-FIFO").si_mechanism is SIMechanism.FIFO
        tearoff = paper_config("W+V")
        assert tearoff.tearoff and tearoff.consistency is Consistency.WC

    def test_unknown_protocol(self):
        with pytest.raises(ConfigError):
            paper_config("XYZ")

    def test_cache_and_latency_applied(self):
        config = paper_config("SC", cache=LARGE_CACHE, latency=SLOW_NET)
        assert config.cache_size == LARGE_CACHE
        assert config.network_latency == SLOW_NET

    def test_overrides(self):
        config = paper_config("V", version_bits=2)
        assert config.version_bits == 2

    def test_workload_args_quick(self):
        args = workload_args("em3d", quick=True, n_procs=4)
        assert args["n_procs"] == 4
        assert args["nodes_per_proc"] < 128

    def test_scaled_cache_constants(self):
        # 16x scaling of the paper's 256KB / 2MB.
        assert SMALL_CACHE * 16 == 256 * 1024
        assert LARGE_CACHE * 16 == 2 * 1024 * 1024
        assert FAST_NET == 100 and SLOW_NET == 1000


class TestRunner:
    def test_program_cached(self, runner):
        first = runner.program("em3d")
        second = runner.program("em3d")
        assert first is second

    def test_run_memoized(self, runner):
        config = paper_config("SC", cache=SMALL_CACHE, n_procs=4)
        before = runner.total_sim_runs
        first = runner.run("em3d", config)
        again = runner.run("em3d", config)
        assert first is again
        assert runner.total_sim_runs == before + 1

    def test_distinct_configs_not_shared(self, runner):
        a = runner.run("em3d", paper_config("SC", cache=SMALL_CACHE, n_procs=4))
        b = runner.run("em3d", paper_config("W", cache=SMALL_CACHE, n_procs=4))
        assert a is not b


class TestExperiments:
    def test_figure2(self):
        result = figure2.run()
        assert len(result.rows) == 3
        rows = {row[0]: row for row in result.rows}
        idle = rows["write, no outstanding copy (Idle)"][1]
        shared = rows["write, outstanding shared copy"][1]
        dsi = rows["write, copy self-invalidated (DSI)"][1]
        assert shared > idle
        assert dsi == idle  # DSI restores the Idle cost exactly

    def test_figure3(self, runner):
        result = figure3.run(runner)
        assert len(result.rows) == len(WORKLOADS) * 2 * len(PROTOCOLS)
        sc_rows = [r for r in result.rows if r[2] == "SC"]
        assert all(r[3] == "1.00" for r in sc_rows)

    def test_figure4_reuses_figure3_shape(self, runner):
        result = figure4.run(runner)
        assert result.experiment_id == "figure4"
        assert len(result.rows) == len(WORKLOADS) * 2 * len(PROTOCOLS)

    def test_figure5(self, runner):
        result = figure5.run(runner)
        assert len(result.rows) == len(WORKLOADS)
        sparse_row = next(r for r in result.rows if r[0] == "sparse")
        assert sparse_row[3] > 0  # FIFO overflows on sparse

    def test_figure6(self, runner):
        result = figure6.run(runner)
        assert len(result.rows) == len(WORKLOADS) * 2
        w_rows = [r for r in result.rows if r[1] == "W"]
        assert all(r[2] == "1.00" for r in w_rows)

    def test_table2(self, runner):
        result = table2.run(runner)
        assert len(result.rows) == len(WORKLOADS) * 4

    def test_table3(self, runner):
        result = table3.run(runner)
        assert len(result.rows) == len(WORKLOADS) * 2
        em3d_rows = [r for r in result.rows if r[0] == "em3d"]
        # tear-off eliminates a large share of em3d's invalidations
        assert all(float(r[4]) > 30 for r in em3d_rows)

    def test_result_formatting(self, runner):
        result = figure5.run(runner)
        text = result.format()
        assert "figure5" in text
        assert "sparse" in text
        dicts = result.row_dicts()
        assert dicts[0]["workload"] == "barnes"


class TestAblations:
    def test_version_bits(self, runner):
        result = ablations.version_bits(runner, widths=(1, 4))
        assert [row[0] for row in result.rows] == [1, 4]

    def test_fifo_depth(self, runner):
        result = ablations.fifo_depth(runner, depths=(2, 64))
        overflow_small = result.rows[0][2]
        overflow_large = result.rows[1][2]
        assert overflow_small >= overflow_large

    def test_upgrade_case(self, runner):
        result = ablations.upgrade_case(runner, workloads=("em3d",))
        assert len(result.rows) == 1

    def test_home_exclusion(self, runner):
        result = ablations.home_exclusion(runner, workloads=("em3d",))
        assert len(result.rows) == 1

    def test_read_counter(self, runner):
        result = ablations.read_counter(runner, widths=(1, 2))
        assert len(result.rows) == 2

    def test_cache_side(self, runner):
        result = ablations.cache_side(runner, workloads=("em3d",))
        assert len(result.rows) == 1

    def test_sc_tearoff(self, runner):
        result = ablations.sc_tearoff(runner, workloads=("em3d",))
        assert len(result.rows) == 1

    def test_scaling(self, runner):
        result = ablations.scaling(runner, proc_counts=(2, 4))
        assert [row[0] for row in result.rows] == [2, 4]

    def test_block_size(self, runner):
        result = ablations.block_size(runner, sizes=(32, 64))
        assert [row[0] for row in result.rows] == [32, 64]
        # Larger blocks -> fewer misses on strided data -> faster base run.
        assert result.rows[1][1] <= result.rows[0][1]


class TestCli:
    def test_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "ablation:fifo_depth" in out
        assert "run" in out and "gen" in out and "bars" in out

    def test_unknown(self, capsys):
        assert cli.main(["bogus"]) == 2

    def test_single_experiment_quick(self, capsys):
        assert cli.main(["figure5", "--quick", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "figure5" in out and "sparse" in out

    def test_figure2_via_cli(self, capsys):
        assert cli.main(["figure2"]) == 0
        assert "Idle" in capsys.readouterr().out

    def test_bars(self, capsys):
        assert cli.main(["bars", "--quick", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "normalized to SC" in out
        assert "#=compute" in out

    def test_run_workload(self, capsys):
        assert cli.main(
            ["run", "--workload", "em3d", "--protocol", "V", "--procs", "4", "--quick"]
        ) == 0
        out = capsys.readouterr().out
        assert "execution-time breakdown" in out
        assert "SC+DSI(V)" in out
        assert "self-invalidations" in out

    def test_run_needs_workload_or_trace(self, capsys):
        assert cli.main(["run"]) == 2

    def test_gen_and_run_trace(self, tmp_path, capsys):
        path = str(tmp_path / "trace.npz")
        assert cli.main(
            ["gen", "--workload", "ocean", "--procs", "4", "--quick", "-o", path]
        ) == 0
        assert cli.main(["run", "--trace", path, "--protocol", "W"]) == 0
        out = capsys.readouterr().out
        assert "ocean" in out and "execution time" in out

    def test_gen_needs_output(self, capsys):
        assert cli.main(["gen", "--workload", "ocean"]) == 2

    def test_describe(self, capsys):
        assert cli.main(["describe", "--workload", "sparse", "--procs", "4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "sharing degree" in out and "shared_blocks" in out

    def test_run_with_trace_dump(self, capsys):
        assert cli.main(
            ["run", "--workload", "ocean", "--procs", "4", "--quick", "--show-trace", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "GETS" in out or "GETX" in out

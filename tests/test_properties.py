"""Property-based whole-protocol tests.

Hypothesis generates small racy programs (random reads/writes/locks over a
shared block pool, organized into barrier epochs) and every protocol
configuration must:

* run to completion (no deadlock, no protocol error),
* keep the coherence monitor quiet (SWMR, write ownership, per-processor
  coherence order),
* satisfy message conservation (every request answered, every
  invalidation acknowledged, WC acks forwarded exactly once per parallel
  grant),
* agree with the base protocol on the values race-free readers observe.
"""

import pytest
from hypothesis import given, settings, strategies as st

from conftest import seg_addr, tiny_config
from repro.config import Consistency, IdentifyScheme, SIMechanism
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program

N_PROCS = 3
BLOCK_POOL = [seg_addr(node, 32 * i) for node in range(N_PROCS) for i in range(3)]
LOCKS = [seg_addr(0, 4096), seg_addr(1, 4096)]

PROTOCOL_CONFIGS = [
    dict(),
    dict(consistency=Consistency.WC),
    dict(identify=IdentifyScheme.STATES),
    dict(identify=IdentifyScheme.VERSION),
    dict(identify=IdentifyScheme.VERSION, si_mechanism=SIMechanism.FIFO, fifo_entries=2),
    dict(consistency=Consistency.WC, identify=IdentifyScheme.VERSION, tearoff=True),
    dict(consistency=Consistency.WC, identify=IdentifyScheme.STATES, tearoff=True),
]


@st.composite
def epoch_ops(draw):
    """One processor's operations for one barrier epoch."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["read", "write", "compute"]),
                st.integers(0, len(BLOCK_POOL) - 1),
            ),
            max_size=8,
        )
    )
    use_lock = draw(st.booleans())
    lock = draw(st.sampled_from(LOCKS)) if use_lock else None
    return ops, lock


@st.composite
def programs(draw):
    n_epochs = draw(st.integers(1, 3))
    builders = [TraceBuilder() for _ in range(N_PROCS)]
    for epoch in range(n_epochs):
        for builder in builders:
            ops, lock = draw(epoch_ops())
            if lock is not None:
                builder.lock(lock)
            for kind, index in ops:
                if kind == "read":
                    builder.read(BLOCK_POOL[index])
                elif kind == "write":
                    builder.write(BLOCK_POOL[index])
                else:
                    builder.compute(index + 1)
            if lock is not None:
                builder.unlock(lock)
            builder.barrier(epoch)
    return Program("random", [b.build() for b in builders])


def total_counts(result):
    counts = {}
    for source in (result.messages.network, result.messages.local):
        for kind, count in source.items():
            counts[kind] = counts.get(kind, 0) + count
    return counts


@pytest.mark.parametrize("overrides", PROTOCOL_CONFIGS)
@given(program=programs())
@settings(max_examples=25, deadline=None)
def test_random_programs_run_clean(overrides, program):
    config = tiny_config(n_procs=N_PROCS, **overrides)
    result = Machine(config, program).run()

    counts = total_counts(result)
    # Conservation: every read request answered with data.
    assert counts.get("GETS", 0) == counts.get("DATA", 0)
    # Every exclusive request answered exactly once.
    assert counts.get("GETX", 0) + counts.get("UPGRADE", 0) == counts.get(
        "DATA_EX", 0
    ) + counts.get("UPGRADE_ACK", 0)
    # Acks never exceed invalidations (replacements may stand in).
    acks = counts.get("INV_ACK", 0) + counts.get("INV_ACK_DATA", 0)
    assert acks <= counts.get("INV", 0)
    # All processors finished and every cycle is accounted for.
    for proc, finish in enumerate(result.per_proc_time):
        assert result.breakdowns[proc].total() == finish


@given(program=programs())
@settings(max_examples=15, deadline=None)
def test_dsi_preserves_read_values(program):
    """DSI is semantically a replacement: with identical (deterministic)
    interleavings enforced by running lock-free programs, readers observe
    the same stamps under base SC and SC+DSI."""
    # Strip locks to keep the interleaving identical across protocols:
    # rebuild traces without lock/unlock ops.
    from repro.trace.ops import OP_LOCK, OP_UNLOCK, Trace

    stripped = []
    for trace in program.traces:
        keep = (trace.kinds != OP_LOCK) & (trace.kinds != OP_UNLOCK)
        stripped.append(Trace(trace.gaps[keep], trace.kinds[keep], trace.addrs[keep]))
    program = Program("stripped", stripped)

    def observed_reads(overrides):
        reads = []
        machine = Machine(tiny_config(n_procs=N_PROCS, **overrides), program)
        original = machine.monitor.on_read

        def spy(node, block, stamp):
            reads.append((node, block, stamp))
            original(node, block, stamp)

        machine.monitor.on_read = spy
        machine.run()
        return reads

    base = observed_reads({})
    for overrides in ({"identify": IdentifyScheme.VERSION}, {"identify": IdentifyScheme.STATES}):
        # Same reads in program order per processor; global order may
        # differ (timing), so compare per-processor sequences.
        dsi = observed_reads(overrides)

        def per_proc(reads):
            out = {}
            for node, block, stamp in reads:
                out.setdefault(node, []).append((block, stamp))
            return out

        base_seq = per_proc(base)
        dsi_seq = per_proc(dsi)
        assert set(base_seq) == set(dsi_seq)
        for node in base_seq:
            base_blocks = [block for block, _ in base_seq[node]]
            dsi_blocks = [block for block, _ in dsi_seq[node]]
            assert base_blocks == dsi_blocks


@given(program=programs())
@settings(max_examples=10, deadline=None)
def test_deterministic_replay(program):
    config = tiny_config(n_procs=N_PROCS)
    first = Machine(config, program).run()
    second = Machine(config, program).run()
    assert first.exec_time == second.exec_time
    assert first.events_fired == second.events_fired
    assert total_counts(first) == total_counts(second)


@given(program=programs(), latency=st.sampled_from([10, 100, 400]))
@settings(max_examples=10, deadline=None)
def test_latency_scaling_preserves_correctness(program, latency):
    config = tiny_config(n_procs=N_PROCS, network_latency=latency)
    result = Machine(config, program).run()
    assert all(result.per_proc_time)
    assert result.exec_time >= max(
        trace.total_compute() for trace in program.traces
    )


def test_wc_states_tearoff_coherence_order_pinned():
    """Falsifying example found by hypothesis, pinned deterministically.

    Under WC + additional-directory-states identification + tear-off,
    three nodes race on one block: node 0 writes it, node 1 reads it
    under a lock (taking a tear-off copy), node 2 writes it, everyone
    barriers, then node 2 re-reads.  Historically node 2 observed node
    0's write despite having already performed the later one: node 2's
    dirty copy (its write grant was s-marked) self-invalidated at the
    barrier, but the flush cost delayed its SI_NOTIFY send, so a racing
    INV was acknowledged *without data* ahead of the notice — the home
    completed node 1's read transaction with the stale memory copy and
    dropped the late notice as stale.  Fixed by consuming the queued
    notice so the dirty data rides the acknowledgment (the
    ``si_notice_behind_inv_ack`` regression knob reverts the fix for
    the state-space checker).  This run must complete cleanly under the
    coherence monitor.
    """
    block = seg_addr(0, 0)
    lock = LOCKS[1]
    writer_a = TraceBuilder()
    writer_a.write(block)
    writer_a.barrier(0)
    writer_a.barrier(1)
    reader = TraceBuilder()
    reader.lock(lock)
    reader.read(block)
    reader.unlock(lock)
    reader.barrier(0)
    reader.barrier(1)
    writer_b = TraceBuilder()
    writer_b.write(block)
    writer_b.barrier(0)
    writer_b.read(block)
    writer_b.barrier(1)
    program = Program("pinned-wc-tearoff-race", [b.build() for b in (writer_a, reader, writer_b)])
    config = tiny_config(
        n_procs=N_PROCS,
        consistency=Consistency.WC,
        identify=IdentifyScheme.STATES,
        tearoff=True,
    )
    Machine(config, program).run()

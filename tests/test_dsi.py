"""End-to-end DSI behaviour: marking, flushing, FIFO, tear-off.

These are the system-level counterparts of the unit tests in
test_identify.py / test_mechanisms.py: a whole machine runs a small
program and we observe eliminated invalidations, self-invalidation
notifications, and the semantic equivalence with the base protocol.
"""

import pytest

from conftest import seg_addr, tiny_config, two_proc_program
from repro.config import Consistency, IdentifyScheme, SIMechanism
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


def producer_consumer(rounds=4, blocks=4, n_readers=1):
    """P0 writes blocks; readers read them; barrier-separated rounds."""
    builders = [TraceBuilder() for _ in range(1 + n_readers)]
    bid = 0
    for _round in range(rounds):
        for word in range(blocks):
            builders[0].write(seg_addr(0, word * 32))
        for builder in builders:
            builder.barrier(bid)
        bid += 1
        for reader in builders[1:]:
            for word in range(blocks):
                reader.read(seg_addr(0, word * 32))
        for builder in builders:
            builder.barrier(bid)
        bid += 1
    return Program("pc", [b.build() for b in builders])


def run(config, program):
    return Machine(config, program).run()


class TestSelfInvalidationSC:
    @pytest.mark.parametrize("scheme", [IdentifyScheme.STATES, IdentifyScheme.VERSION])
    def test_invalidations_eliminated(self, scheme):
        program = producer_consumer()
        base = run(tiny_config(n_procs=2), program)
        dsi = run(tiny_config(n_procs=2, identify=scheme), program)
        assert dsi.messages.invalidations() < base.messages.invalidations()
        assert dsi.misses.self_invalidations > 0

    @pytest.mark.parametrize("scheme", [IdentifyScheme.STATES, IdentifyScheme.VERSION])
    def test_execution_time_improves(self, scheme):
        program = producer_consumer(rounds=6)
        base = run(tiny_config(n_procs=2), program)
        dsi = run(tiny_config(n_procs=2, identify=scheme), program)
        assert dsi.exec_time < base.exec_time

    def test_si_notifications_sent_for_tracked_blocks(self):
        program = producer_consumer()
        dsi = run(tiny_config(n_procs=2, identify=IdentifyScheme.VERSION), program)
        notifies = dsi.messages.network.get("SI_NOTIFY", 0) + dsi.messages.local.get(
            "SI_NOTIFY", 0
        )
        assert notifies == dsi.misses.self_invalidations

    def test_same_read_values_as_base_protocol(self):
        """Self-invalidation is semantically a replacement: the reader
        observes exactly the same data stamps with and without DSI."""
        program = producer_consumer(rounds=3, blocks=2)

        def collect_reads(config):
            observed = []
            machine = Machine(config, program)
            monitor = machine.monitor
            original = monitor.on_read

            def spy(node, block, stamp):
                observed.append((node, block, stamp))
                original(node, block, stamp)

            monitor.on_read = spy
            machine.run()
            return observed

        base_reads = collect_reads(tiny_config(n_procs=2))
        dsi_reads = collect_reads(tiny_config(n_procs=2, identify=IdentifyScheme.VERSION))
        assert base_reads == dsi_reads

    def test_dsi_wait_time_is_small(self):
        program = producer_consumer()
        dsi = run(tiny_config(n_procs=2, identify=IdentifyScheme.VERSION), program)
        total = dsi.aggregate_breakdown()
        assert total.dsi < 0.05 * total.total()

    def test_version_scheme_needs_tag_history(self):
        """A first-touch miss (no retained tag) gets a normal block."""
        program = producer_consumer(rounds=1)
        dsi = run(tiny_config(n_procs=2, identify=IdentifyScheme.VERSION), program)
        assert dsi.misses.si_marked_fills == 0

    def test_states_scheme_marks_first_read_after_write(self):
        """The states scheme marks from directory state alone — no cache
        history needed, so even round 1 reads get marked blocks."""
        program = producer_consumer(rounds=1)
        dsi = run(tiny_config(n_procs=2, identify=IdentifyScheme.STATES), program)
        assert dsi.misses.si_marked_fills > 0


class TestSpecialCases:
    def test_home_node_blocks_never_marked(self):
        """Reader and home coincide: its copies are never marked."""

        def build(b0, b1, ctx):
            # P1 writes a block homed on P0; P0 reads it repeatedly.
            for _ in range(3):
                ctx.barrier_all()
                b1.write(seg_addr(0))
                ctx.barrier_all()
                b0.read(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = run(tiny_config(n_procs=2, identify=IdentifyScheme.VERSION), program)
        assert result.misses.si_marked_fills == 0

    def test_home_exclusion_disabled(self):
        def build(b0, b1, ctx):
            for _ in range(3):
                ctx.barrier_all()
                b1.write(seg_addr(0))
                ctx.barrier_all()
                b0.read(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = run(
            tiny_config(n_procs=2, identify=IdentifyScheme.VERSION, home_exclusion=False),
            program,
        )
        assert result.misses.si_marked_fills > 0

    def test_sc_upgrade_case_avoids_self_invalidation(self):
        """A sole sharer that upgrades keeps its exclusive block unmarked
        under SC (with the special case on)."""

        def build(b0, b1, ctx):
            for i in range(3):
                b0.read(seg_addr(1)).write(seg_addr(1)).compute(50)
                ctx.barrier_all()

        program = two_proc_program(build)
        with_case = run(
            tiny_config(n_procs=2, identify=IdentifyScheme.STATES), program
        )
        without_case = run(
            tiny_config(
                n_procs=2, identify=IdentifyScheme.STATES, sc_upgrade_special_case=False
            ),
            program,
        )
        assert with_case.misses.self_invalidations < without_case.misses.self_invalidations


class TestFifoMechanism:
    def test_fifo_overflow_invalidates_early(self):
        config = tiny_config(
            n_procs=2,
            identify=IdentifyScheme.STATES,
            si_mechanism=SIMechanism.FIFO,
            fifo_entries=2,
        )
        program = producer_consumer(rounds=3, blocks=8)
        result = run(config, program)
        assert result.misses.fifo_overflows > 0

    def test_fifo_causes_extra_misses(self):
        """Blocks evicted from the FIFO before reuse are re-fetched."""
        # Reader re-reads the region twice per round; a tiny FIFO evicts
        # marked blocks between the passes.
        builders = [TraceBuilder(), TraceBuilder()]
        bid = 0
        for _round in range(3):
            for word in range(8):
                builders[0].write(seg_addr(0, word * 32))
            for builder in builders:
                builder.barrier(bid)
            bid += 1
            for _pass in range(2):
                for word in range(8):
                    builders[1].read(seg_addr(0, word * 32))
            for builder in builders:
                builder.barrier(bid)
            bid += 1
        program = Program("refifo", [b.build() for b in builders])
        flush = run(
            tiny_config(n_procs=2, identify=IdentifyScheme.STATES), program
        )
        fifo = run(
            tiny_config(
                n_procs=2,
                identify=IdentifyScheme.STATES,
                si_mechanism=SIMechanism.FIFO,
                fifo_entries=2,
            ),
            program,
        )
        assert fifo.misses.read_misses > flush.misses.read_misses


class TestTearoff:
    def tearoff_config(self, **over):
        return tiny_config(
            n_procs=3,
            consistency=Consistency.WC,
            identify=IdentifyScheme.VERSION,
            tearoff=True,
            **over,
        )

    def producer_two_readers(self, rounds=4):
        return Program(
            "pc3",
            producer_consumer(rounds=rounds, blocks=4, n_readers=2).traces,
        )

    def test_tearoff_eliminates_inv_and_ack(self):
        program = self.producer_two_readers()
        base = run(tiny_config(n_procs=3, consistency=Consistency.WC), program)
        tear = run(self.tearoff_config(), program)
        assert tear.messages.invalidations() < base.messages.invalidations()
        assert tear.messages.acknowledgments() < base.messages.acknowledgments()
        assert tear.misses.tearoff_fills > 0

    def test_tearoff_blocks_not_tracked(self):
        program = self.producer_two_readers()
        machine = Machine(self.tearoff_config(), program)
        result = machine.run()
        assert result.misses.tearoff_fills > 0
        # No tracked sharer should remain for the produced blocks: every
        # consumer copy was tear-off and self-invalidated at a barrier.
        for directory in machine.directories:
            for entry in directory.entries.values():
                assert entry.sharer_count() <= 1

    def test_tearoff_flush_sends_no_messages(self):
        """Tear-off self-invalidation is a silent flash clear."""
        program = self.producer_two_readers()
        result = run(self.tearoff_config(), program)
        notifies = result.messages.network.get("SI_NOTIFY", 0) + result.messages.local.get(
            "SI_NOTIFY", 0
        )
        # Only exclusive (writer-side) self-invalidations notify.
        assert notifies <= result.misses.self_invalidations - result.misses.tearoff_fills

    def test_reader_still_sees_fresh_data_after_sync(self):
        program = self.producer_two_readers(rounds=5)
        run(self.tearoff_config(), program)  # monitor asserts monotone reads

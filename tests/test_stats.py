"""Statistics: counters, run results, table formatting."""

import pytest

from repro.stats.breakdown import Breakdown
from repro.stats.counters import MessageCounters, MissCounters
from repro.stats.report import RunResult, format_breakdown_table, format_table


def make_result(label="SC", exec_time=100, invs=5, total=20):
    messages = MessageCounters()
    for _ in range(invs):
        messages.count("INV", True, False)
    for _ in range(total - invs):
        messages.count("GETS", True, False)
    misses = MissCounters()
    misses.bump("read_hits", 90)
    misses.bump("read_misses", 10)
    breakdown = Breakdown()
    breakdown.add("compute", exec_time // 2)
    breakdown.add("read_other", exec_time - exec_time // 2)
    return RunResult(
        label=label,
        workload="test",
        exec_time=exec_time,
        per_proc_time=[exec_time],
        breakdowns=[breakdown],
        messages=messages,
        misses=misses,
        events_fired=42,
    )


class TestMessageCounters:
    def test_network_and_local_separated(self):
        counters = MessageCounters()
        counters.count("GETS", True, False)
        counters.count("GETS", False, False)
        assert counters.network["GETS"] == 1
        assert counters.local["GETS"] == 1
        assert counters.total_network() == 1

    def test_data_blocks_counted_network_only(self):
        counters = MessageCounters()
        counters.count("DATA", True, True)
        counters.count("DATA", False, True)
        assert counters.data_blocks_sent == 1

    def test_as_dict(self):
        counters = MessageCounters()
        counters.count("INV", True, False)
        data = counters.as_dict()
        assert data["invalidations"] == 1
        assert data["total_network"] == 1

    def test_as_dict_round_trip(self):
        counters = MessageCounters()
        counters.count("GETS", True, False)
        counters.count("GETS", False, False)
        counters.count("INV", True, False)
        counters.count("DATA", True, True)
        data = counters.as_dict()

        rebuilt = MessageCounters()
        rebuilt.network.update(data["network"])
        rebuilt.local.update(data["local"])
        assert rebuilt.as_dict() == data
        assert rebuilt.total_network() == counters.total_network()
        assert rebuilt.invalidations() == counters.invalidations()

    def test_as_dict_json_serializable(self):
        import json

        counters = MessageCounters()
        counters.count("UPGRADE", True, False)
        assert json.loads(json.dumps(counters.as_dict())) == counters.as_dict()


class TestMissCounters:
    def test_miss_rate(self):
        misses = MissCounters()
        misses.bump("read_hits", 3)
        misses.bump("read_misses", 1)
        assert misses.miss_rate() == pytest.approx(0.25)

    def test_miss_rate_empty(self):
        assert MissCounters().miss_rate() == 0.0

    def test_bump_amount(self):
        misses = MissCounters()
        misses.bump("self_invalidations", 5)
        assert misses.self_invalidations == 5


class TestRunResult:
    def test_normalized(self):
        base = make_result(exec_time=200)
        fast = make_result(exec_time=100)
        assert fast.normalized_to(base) == 0.5

    def test_aggregate_breakdown(self):
        result = make_result(exec_time=100)
        assert result.aggregate_breakdown().total() == 100

    def test_summary(self):
        summary = make_result().summary()
        assert summary["label"] == "SC"
        assert summary["invalidations"] == 5
        assert summary["miss_rate"] == pytest.approx(0.1)


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        # numeric column right-aligned
        assert lines[2].endswith(" 1")

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_format_breakdown_table(self):
        base = make_result(label="SC", exec_time=200)
        dsi = make_result(label="DSI", exec_time=150)
        text = format_breakdown_table([base, dsi])
        assert "1.000" in text and "0.750" in text

    def test_format_breakdown_empty(self):
        assert format_breakdown_table([], title="t") == "t"

    def test_floats_formatted(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.123" in text

"""Unit tests for the coherence monitor itself."""

import pytest

from repro.config import Consistency, SystemConfig
from repro.errors import ProtocolError
from repro.memory.cache import EXCLUSIVE, SHARED
from repro.protocol.monitor import CoherenceMonitor


def sc_monitor():
    return CoherenceMonitor(SystemConfig())


def wc_monitor():
    return CoherenceMonitor(SystemConfig(consistency=Consistency.WC))


class TestSWMR:
    def test_two_exclusive_copies_rejected(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, EXCLUSIVE, 1, False)
        with pytest.raises(ProtocolError, match="two exclusive"):
            monitor.on_fill(1, 7, EXCLUSIVE, 2, False)

    def test_exclusive_while_shared_rejected_strict(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, SHARED, 1, False)
        with pytest.raises(ProtocolError, match="SWMR"):
            monitor.on_fill(1, 7, EXCLUSIVE, 1, False)

    def test_shared_while_exclusive_rejected_strict(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, EXCLUSIVE, 1, False)
        with pytest.raises(ProtocolError, match="SWMR"):
            monitor.on_fill(1, 7, SHARED, 1, False)

    def test_wc_allows_stale_sharers(self):
        monitor = wc_monitor()
        monitor.on_fill(0, 7, SHARED, 1, False)
        monitor.on_fill(1, 7, EXCLUSIVE, 1, False)  # parallel grant: legal

    def test_wc_still_forbids_two_owners(self):
        monitor = wc_monitor()
        monitor.on_fill(0, 7, EXCLUSIVE, 1, False)
        with pytest.raises(ProtocolError):
            monitor.on_fill(1, 7, EXCLUSIVE, 1, False)

    def test_invalidate_releases(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, EXCLUSIVE, 1, False)
        monitor.on_invalidate(0, 7)
        monitor.on_fill(1, 7, EXCLUSIVE, 2, False)

    def test_upgrade_same_node_ok(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, SHARED, 1, False)
        monitor.on_fill(0, 7, EXCLUSIVE, 1, False)

    def test_tearoff_copies_exempt(self):
        monitor = wc_monitor()
        monitor.on_fill(0, 7, SHARED, 1, True)  # tear-off
        monitor.on_fill(1, 7, EXCLUSIVE, 1, False)
        assert monitor.holders(7)[2] == {0}


class TestWriteOwnership:
    def test_owner_may_write(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, EXCLUSIVE, 1, False)
        monitor.on_write(0, 7, 2)

    def test_non_owner_write_rejected(self):
        monitor = sc_monitor()
        monitor.on_fill(0, 7, SHARED, 1, False)
        with pytest.raises(ProtocolError, match="owned"):
            monitor.on_write(0, 7, 2)


class TestCoherenceOrder:
    def write(self, monitor, node, block, stamp):
        monitor.on_fill(node, block, EXCLUSIVE, 0, False)
        monitor.on_write(node, block, stamp)
        monitor.on_invalidate(node, block)

    def test_monotone_reads_ok(self):
        monitor = sc_monitor()
        self.write(monitor, 0, 7, stamp=11)
        self.write(monitor, 0, 7, stamp=12)
        monitor.on_read(1, 7, 11)
        monitor.on_read(1, 7, 12)

    def test_backwards_read_rejected(self):
        monitor = sc_monitor()
        self.write(monitor, 0, 7, stamp=11)
        self.write(monitor, 0, 7, stamp=12)
        monitor.on_read(1, 7, 12)
        with pytest.raises(ProtocolError, match="coherence order"):
            monitor.on_read(1, 7, 11)

    def test_write_order_beats_stamp_order(self):
        """Racing writes may complete out of stamp-allocation order; the
        coherence order is completion order."""
        monitor = sc_monitor()
        self.write(monitor, 0, 7, stamp=20)  # later stamp performed first
        self.write(monitor, 1, 7, stamp=10)
        monitor.on_read(2, 7, 20)
        monitor.on_read(2, 7, 10)  # 10 is the NEWER value: legal

    def test_unwritten_value_rejected(self):
        monitor = sc_monitor()
        with pytest.raises(ProtocolError, match="never written"):
            monitor.on_read(0, 7, 99)

    def test_initial_value_readable(self):
        monitor = sc_monitor()
        monitor.on_read(0, 7, 0)

    def test_order_is_per_processor(self):
        monitor = sc_monitor()
        self.write(monitor, 0, 7, stamp=11)
        self.write(monitor, 0, 7, stamp=12)
        monitor.on_read(1, 7, 12)
        monitor.on_read(2, 7, 11)  # a different processor may lag

    def test_order_is_per_block(self):
        monitor = sc_monitor()
        self.write(monitor, 0, 7, stamp=11)
        monitor.on_read(1, 7, 11)
        monitor.on_read(1, 8, 0)

    def test_violation_counter(self):
        monitor = sc_monitor()
        with pytest.raises(ProtocolError):
            monitor.on_read(0, 7, 42)
        assert monitor.violations == 1

"""Cycle-accounting invariants across protocols and workloads.

The paper's Figure 3/6 methodology only works if every simulated cycle is
attributed to exactly one category; these tests enforce that globally.
"""

import pytest

from conftest import tiny_config
from repro.config import Consistency, IdentifyScheme, SIMechanism
from repro.system import Machine
from repro.workloads import (
    barnes,
    em3d,
    false_sharing,
    migratory,
    ocean,
    producer_consumer,
    read_mostly,
    sparse,
    tomcatv,
)

QUICK_PROGRAMS = {
    "barnes": lambda n: barnes(n_procs=n, bodies_per_proc=4, cells=16, iterations=1),
    "em3d": lambda n: em3d(n_procs=n, nodes_per_proc=16, iterations=1, private_words=64),
    "ocean": lambda n: ocean(n_procs=n, cols=16, days=1, sweeps_per_day=2),
    "sparse": lambda n: sparse(n_procs=n, x_words=128, iterations=1, a_words_per_proc=64),
    "tomcatv": lambda n: tomcatv(n_procs=n, rows_per_proc=2, cols=32, iterations=1),
    "producer_consumer": lambda n: producer_consumer(n_procs=n, blocks=4, iterations=2),
    "migratory": lambda n: migratory(n_procs=n, blocks=2, rounds=3),
    "read_mostly": lambda n: read_mostly(n_procs=n, blocks=4, iterations=2),
    "false_sharing": lambda n: false_sharing(n_procs=n, iterations=3),
}

PROTOCOL_VARIANTS = {
    "sc": {},
    "wc": {"consistency": Consistency.WC},
    "dsi_states": {"identify": IdentifyScheme.STATES},
    "dsi_version": {"identify": IdentifyScheme.VERSION},
    "dsi_fifo": {"identify": IdentifyScheme.VERSION, "si_mechanism": SIMechanism.FIFO, "fifo_entries": 4},
    "wc_tearoff": {
        "consistency": Consistency.WC,
        "identify": IdentifyScheme.VERSION,
        "tearoff": True,
    },
    "migratory_opt": {"migratory": True},
    "cache_side": {"identify": IdentifyScheme.CACHE},
}


@pytest.mark.parametrize("workload", sorted(QUICK_PROGRAMS))
@pytest.mark.parametrize("variant", sorted(PROTOCOL_VARIANTS))
def test_every_cycle_attributed(workload, variant):
    """Per processor: finish time == sum of all breakdown categories."""
    n_procs = 4
    program = QUICK_PROGRAMS[workload](n_procs)
    config = tiny_config(n_procs=n_procs, **PROTOCOL_VARIANTS[variant])
    result = Machine(config, program).run()
    for proc, finish in enumerate(result.per_proc_time):
        assert result.breakdowns[proc].total() == finish, (
            f"{workload}/{variant}: processor {proc} accounted "
            f"{result.breakdowns[proc].total()} of {finish} cycles"
        )
    # Sanity: the run did something.
    assert result.exec_time > 0

"""Static sharing-pattern profiles — and using them to validate that each
workload generator exhibits the structure the paper attributes to it."""


from repro.stats.profile import analyze_program
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program
from repro.workloads import barnes, em3d, ocean, producer_consumer, sparse, tomcatv

KB = 1024


def small_program():
    b0 = TraceBuilder()
    b1 = TraceBuilder()
    b0.compute(10).write(0x1000).read(0x2000)
    b1.read(0x1000).write(0x3000)
    b0.lock(0x4000).unlock(0x4000)
    b1.lock(0x4000).unlock(0x4000)
    b0.barrier(0)
    b1.barrier(0)
    return Program("small", [b0.build(), b1.build()])


class TestProfileBasics:
    def test_counts(self):
        profile = analyze_program(small_program())
        assert profile.total_ops == 10
        assert profile.reads == 2
        assert profile.writes == 2
        assert profile.locks == 2
        assert profile.barriers == 1
        assert profile.compute_cycles == 10

    def test_reader_writer_sets(self):
        profile = analyze_program(small_program())
        block = 0x1000 >> 5
        assert profile.writers[block] == {0}
        assert profile.readers[block] == {1}

    def test_shared_blocks(self):
        profile = analyze_program(small_program())
        assert (0x1000 >> 5) in profile.shared_blocks()
        assert (0x2000 >> 5) not in profile.shared_blocks()

    def test_producer_consumer_detection(self):
        profile = analyze_program(small_program())
        assert (0x1000 >> 5) in profile.producer_consumer_blocks()

    def test_migratory_detection(self):
        b0 = TraceBuilder().write(0x100)
        b1 = TraceBuilder().write(0x100)
        profile = analyze_program(Program("m", [b0.build(), b1.build()]))
        assert (0x100 >> 5) in profile.migratory_blocks()

    def test_lock_words_count_as_written(self):
        profile = analyze_program(small_program())
        lock_block = 0x4000 >> 5
        assert profile.writers[lock_block] == {0, 1}
        assert lock_block in profile.migratory_blocks()

    def test_working_set(self):
        profile = analyze_program(small_program())
        assert profile.working_set_bytes(0) == 3 * 32  # 0x1000, 0x2000, 0x4000

    def test_sharing_degree_histogram(self):
        profile = analyze_program(small_program())
        histogram = profile.sharing_degree()
        assert histogram[2] == 2  # 0x1000 and the lock block
        assert histogram[1] == 2  # the two private blocks
        assert sum(histogram.values()) == len(profile.blocks())

    def test_summary_and_format(self):
        profile = analyze_program(small_program())
        summary = profile.summary()
        assert summary["shared_blocks"] == 2
        text = profile.format()
        assert "sharing degree" in text

    def test_empty_program(self):
        profile = analyze_program(Program("e", [TraceBuilder().build()]))
        assert profile.shared_fraction() == 0.0
        assert profile.sync_density() == 0.0


QUICK = dict(n_procs=8)


class TestWorkloadStructure:
    """Table-1 structural claims checked via static profiles."""

    def test_em3d_is_pure_producer_consumer(self):
        profile = analyze_program(em3d(n_procs=8, nodes_per_proc=32, iterations=2, private_words=64))
        assert profile.migratory_blocks() == set()
        assert profile.producer_consumer_blocks()

    def test_sparse_vector_read_by_everyone(self):
        profile = analyze_program(sparse(n_procs=8, x_words=512, iterations=2, a_words_per_proc=64))
        widest = max(profile.sharing_degree())
        assert widest == 8  # the vector blocks are touched by all processors

    def test_barnes_has_migratory_cells(self):
        profile = analyze_program(barnes(n_procs=8, bodies_per_proc=8, cells=16, iterations=2))
        assert profile.migratory_blocks()
        assert profile.locks > 0

    def test_barnes_sync_density_highest(self):
        barnes_profile = analyze_program(
            barnes(n_procs=8, bodies_per_proc=8, cells=16, iterations=2)
        )
        tomcatv_profile = analyze_program(
            tomcatv(n_procs=8, rows_per_proc=4, cols=64, iterations=2)
        )
        assert barnes_profile.sync_density() > tomcatv_profile.sync_density()

    def test_ocean_shares_only_boundary_rows(self):
        profile = analyze_program(ocean(n_procs=8, cols=32, days=1, sweeps_per_day=2))
        # interior rows are private: sharing degree never exceeds 2
        assert max(profile.sharing_degree()) == 2

    def test_tomcatv_mostly_private(self):
        profile = analyze_program(tomcatv(n_procs=8, iterations=1))  # full geometry
        assert profile.shared_fraction() < 0.1

    def test_tomcatv_largest_working_set(self):
        profiles = {
            "tomcatv": analyze_program(tomcatv(n_procs=8)),
            "em3d": analyze_program(em3d(n_procs=8)),
            "sparse": analyze_program(sparse(n_procs=8)),
        }
        tomcatv_ws = profiles["tomcatv"].max_working_set()
        assert tomcatv_ws > profiles["em3d"].max_working_set()
        assert tomcatv_ws > profiles["sparse"].max_working_set()
        # ... and it straddles the scaled cache pair.
        assert 16 * KB < tomcatv_ws < 128 * KB

    def test_producer_consumer_micro(self):
        profile = analyze_program(producer_consumer(n_procs=4, blocks=8, iterations=2))
        assert len(profile.producer_consumer_blocks()) == 8
        assert profile.migratory_blocks() == set()

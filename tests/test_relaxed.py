"""The relaxed execution engine: observational equality and its seams.

The relaxed engine (``ExecutionMode.RELAXED``) runs the reference event
*structure* on cheaper substrates — the per-cycle bucketed event queue
(:class:`repro.engine.simulator.BucketSimulator`) and the Message-free
protocol lanes — and claims *observational* equality with the reference
oracle: every measured :class:`~repro.stats.record.RunRecord` field
except ``events_fired`` must match exactly.  The full 46-variant x
5-workload proof runs via ``python -m repro.harness.equivalence
--observational`` (CI's check-protocol job); this module pins the
deterministic edge cases and the mode seams:

* bucketed-queue firing order is the flat heap's, event for event —
  including same-cycle events scheduled *during* a sweep;
* span-boundary arithmetic: a sync op landing exactly on a processor
  batch edge, FIFO-overflow bursts in mid-batch, and a Tardis lease
  expiring exactly at the read that would renew it;
* the forcing seams: instrumentation, the invariant monitor and custom
  network classes all force the reference oracle; Tardis keeps the
  bucketed queue but stays off the lanes.
"""

from dataclasses import replace

import pytest

import repro.system as system_mod
from repro.config import (
    Consistency,
    ExecutionMode,
    IdentifyScheme,
    SIMechanism,
    SystemConfig,
)
from repro.engine.simulator import BucketSimulator, Simulator
from repro.errors import SimulationError
from repro.harness.equivalence import compare_observational, relaxed_config
from repro.network.network import Network
from repro.obs.instrument import Instrument
from repro.stats.record import RunRecord
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program
from repro.workloads import by_name

BLOCK = 32
SEGMENT = 1 << 22


def _addr(block, segment=0):
    return segment * SEGMENT + block * BLOCK


def _records(config, program):
    """(relaxed record, reference record) for one program."""
    relaxed = RunRecord.from_result(Machine(relaxed_config(config), program).run())
    reference = RunRecord.from_result(Machine(config, program).run())
    return relaxed, reference


def _assert_observational(config, program):
    relaxed, reference = _records(config, program)
    diffs = compare_observational(relaxed, reference)
    assert not diffs, f"relaxed diverged on: {', '.join(diffs)}"
    return relaxed, reference


# ---------------------------------------------------------------------------
# Bucketed event queue: firing order is the flat heap's
# ---------------------------------------------------------------------------


class TestBucketSimulator:
    def _both(self):
        return Simulator(), BucketSimulator()

    def test_interleaved_delays_fire_in_heap_order(self):
        logs = []
        for sim in self._both():
            log = []
            for delay, tag in [(5, "a"), (0, "b"), (5, "c"), (2, "d"), (0, "e")]:
                sim.schedule(delay, log.append, (delay, tag))
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]
        assert logs[0] == [(0, "b"), (0, "e"), (2, "d"), (5, "a"), (5, "c")]

    def test_same_cycle_event_scheduled_mid_sweep_fires_in_sweep(self):
        # An event scheduled with delay 0 *during* its own cycle's sweep
        # must fire in that sweep, after everything already queued there
        # — the flat heap's same-time-later-seq order.
        for sim in self._both():
            log = []
            sim.schedule(3, lambda: (log.append("first"), sim.schedule(0, log.append, "chained")))
            sim.schedule(3, log.append, "second")
            sim.run()
            assert log == ["first", "second", "chained"]
            assert sim.now == 3
            assert sim.events_fired == 3

    def test_at_and_step_match_flat_heap(self):
        for sim in self._both():
            log = []
            sim.at(7, log.append, "late")
            sim.at(2, log.append, "early")
            assert sim.step()
            assert log == ["early"] and sim.now == 2
            assert sim.step()
            assert log == ["early", "late"] and sim.now == 7
            assert not sim.step()

    def test_until_pauses_without_draining(self):
        for sim in self._both():
            log = []
            sim.schedule(1, log.append, "x")
            sim.schedule(10, log.append, "y")
            sim.run(until=5)
            assert log == ["x"] and sim.now == 5
            sim.run()
            assert log == ["x", "y"]

    def test_max_events_guard_still_trips(self):
        sim = BucketSimulator(max_events=10)

        def rearm():
            sim.schedule(1, rearm)

        sim.schedule(1, rearm)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run()

    def test_negative_delay_rejected(self):
        for sim in self._both():
            with pytest.raises(SimulationError):
                sim.schedule(-1, lambda: None)
            with pytest.raises(SimulationError):
                sim.at(-1, lambda: None)


# ---------------------------------------------------------------------------
# Mode seams: who runs relaxed, and how far
# ---------------------------------------------------------------------------


def _tiny_program():
    return by_name("producer_consumer", n_procs=4)


class TestModeSeams:
    def test_relaxed_machine_uses_bucketed_queue_and_lanes(self):
        machine = Machine(
            SystemConfig(n_processors=4, execution_mode=ExecutionMode.RELAXED),
            _tiny_program(),
        )
        assert machine.relaxed
        assert isinstance(machine.sim, BucketSimulator)
        assert all(c.relaxed for c in machine.controllers)

    def test_reference_machine_keeps_flat_heap(self):
        machine = Machine(SystemConfig(n_processors=4), _tiny_program())
        assert not machine.relaxed
        assert type(machine.sim) is Simulator
        assert not any(c.relaxed for c in machine.controllers)

    def test_instrument_forces_reference(self):
        machine = Machine(
            SystemConfig(n_processors=4, execution_mode=ExecutionMode.RELAXED),
            _tiny_program(),
            instrument=Instrument(),
        )
        assert not machine.relaxed
        assert type(machine.sim) is Simulator

    def test_invariant_monitor_forces_reference(self):
        machine = Machine(
            SystemConfig(
                n_processors=4,
                execution_mode=ExecutionMode.RELAXED,
                check_invariants=True,
            ),
            _tiny_program(),
        )
        assert not machine.relaxed

    def test_custom_network_forces_reference(self):
        class MyNetwork(Network):
            pass

        machine = Machine(
            SystemConfig(n_processors=4, execution_mode=ExecutionMode.RELAXED),
            _tiny_program(),
            network_cls=MyNetwork,
        )
        assert not machine.relaxed

    def test_tardis_keeps_queue_but_not_lanes(self):
        machine = Machine(
            SystemConfig(
                n_processors=4, tardis=True, execution_mode=ExecutionMode.RELAXED
            ),
            _tiny_program(),
        )
        assert machine.relaxed
        assert isinstance(machine.sim, BucketSimulator)
        assert not any(c.relaxed for c in machine.controllers)

    def test_layer_narrowing_disables_lanes(self, monkeypatch):
        # The equivalence harness localizes mismatches by narrowing the
        # layer set; queue-only machines must not bind the lanes.
        monkeypatch.setattr(system_mod, "RELAXED_LAYERS", frozenset({"queue"}))
        machine = Machine(
            SystemConfig(n_processors=4, execution_mode=ExecutionMode.RELAXED),
            _tiny_program(),
        )
        assert isinstance(machine.sim, BucketSimulator)
        assert not any(c.relaxed for c in machine.controllers)


# ---------------------------------------------------------------------------
# Span-boundary regressions (deterministic, hand-sized)
# ---------------------------------------------------------------------------


class TestBatchBoundaries:
    def test_sync_exactly_on_batch_edge(self):
        # Two processors ping through a barrier placed so the preceding
        # hit run's cost lands exactly on the processor quantum: with
        # hit_cycles=1 and quantum=N, N hits complete *at* the batch
        # edge and the sync op is the first op of the next span.  Sweep
        # the quantum across the run length so every alignment of the
        # barrier relative to the edge occurs, including exact ones.
        for quantum in (4, 5, 6, 8):
            builders = [TraceBuilder(), TraceBuilder()]
            for node, builder in enumerate(builders):
                mine = _addr(2 + node, segment=node)
                builder.write(mine)
                for _ in range(quantum):  # hits filling exactly one span
                    builder.read(mine)
                builder.barrier(0)
                theirs = _addr(2 + (1 - node), segment=1 - node)
                builder.read(theirs)
                builder.barrier(1)
            program = Program("sync-edge", [b.build() for b in builders])
            config = SystemConfig(n_processors=2, quantum=quantum)
            relaxed, _ = _assert_observational(config, program)
            assert relaxed.misses.read_misses >= 2  # the cross reads missed

    def test_fifo_overflow_burst_mid_batch(self):
        # A DSI-FIFO config with a tiny FIFO: every fill of a marked
        # block pushes an entry and the burst overflows the FIFO in the
        # middle of a hit span.  The overflow invalidation changes which
        # later accesses hit — any relaxed-engine drift in when the
        # burst lands shows up as a miss-mix difference.
        config = SystemConfig(
            n_processors=4,
            identify=IdentifyScheme.VERSION,
            si_mechanism=SIMechanism.FIFO,
            fifo_entries=2,
            cache_size=16384,
        )
        program = by_name("sparse", n_procs=4, x_words=512, iterations=3,
                          a_words_per_proc=128)
        relaxed, _ = _assert_observational(config, program)
        assert relaxed.misses.fifo_overflows > 0  # the burst actually burst

    def test_tardis_lease_expiry_exactly_at_read(self):
        # lease=1: every granted lease is already expiring at the next
        # logical tick, so reads keep landing exactly on the expiry
        # boundary and must renew rather than hit.  Tardis runs the
        # bucketed queue without lanes — the boundary being probed is
        # the queue's, at the lease-check cycle.
        config = SystemConfig(n_processors=4, tardis=True, lease=1)
        program = by_name("producer_consumer", n_procs=4)
        _assert_observational(config, program)

    def test_wc_write_buffer_and_tearoff_shapes(self):
        # The lane write path's pre-action row choice (a store to the
        # registered SC tear-off copy must take the GETX shape, not the
        # upgrade shape) and the WC buffered path both replayed against
        # the oracle on a workload with real write sharing.
        for fields in (
            {"identify": IdentifyScheme.STATES, "sc_tearoff": True},
            {"consistency": Consistency.WC, "identify": IdentifyScheme.VERSION,
             "tearoff": True},
        ):
            config = SystemConfig(n_processors=4, cache_size=16384, **fields)
            program = by_name("producer_consumer", n_procs=4)
            _assert_observational(config, program)


# ---------------------------------------------------------------------------
# Record comparison semantics
# ---------------------------------------------------------------------------


def test_compare_observational_ignores_only_events_fired():
    config = SystemConfig(n_processors=4)
    program = _tiny_program()
    relaxed, reference = _records(config, program)
    # Same engine twice -> nothing differs.
    assert not compare_observational(reference, reference)
    # The relaxed run must agree on everything measured...
    assert not compare_observational(relaxed, reference)
    # ...and a doctored exec_time must be caught.
    doctored = RunRecord.from_dict(reference.to_dict())
    doctored.exec_time += 1
    assert "exec_time" in compare_observational(relaxed, doctored)


def test_relaxed_config_round_trip():
    config = SystemConfig(n_processors=4)
    relaxed = relaxed_config(config)
    assert relaxed.execution_mode is ExecutionMode.RELAXED
    assert replace(relaxed, execution_mode=ExecutionMode.REFERENCE) == config

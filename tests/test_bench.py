"""Benchmark observatory: suites, snapshot schema, regression gate."""

import copy
import json

import pytest

from repro.errors import ConfigError
from repro.harness import bench


@pytest.fixture(scope="module")
def snapshot():
    """One real smoke-suite run shared by every test in the module."""
    return bench.run_bench(suite="smoke", procs=2, jobs=1)


def slowed(payload, factor=0.8):
    """A copy of ``payload`` with every run's simulation speed scaled."""
    clone = copy.deepcopy(payload)
    for run in clone["runs"]:
        run["sim_cycles_per_s"] *= factor
    return clone


class TestSuites:
    def test_pinned_suites_exist(self):
        assert set(bench.SUITES) == {"smoke", "quick", "full"}
        assert set(bench.SUITE_PROCS) == set(bench.SUITES)

    def test_suite_specs_pin_protocol_and_workload(self):
        triples = bench.suite_specs("quick")
        assert len(triples) == 12  # 3 workloads x (SC, W, V, TARDIS)
        assert [p for _w, p, _s in triples].count("TARDIS") == 3
        for workload, protocol, spec in triples:
            assert spec.workload == workload
            assert spec.config.n_processors == bench.SUITE_PROCS["quick"]

    def test_unknown_suite_raises(self):
        with pytest.raises(ConfigError, match="unknown bench suite"):
            bench.suite_specs("nope")

    def test_procs_override(self):
        triples = bench.suite_specs("smoke", procs=2)
        assert all(spec.config.n_processors == 2 for _w, _p, spec in triples)

    def test_bad_repeat_raises(self):
        with pytest.raises(ConfigError, match="repeat"):
            bench.run_bench(suite="smoke", repeat=0)


class TestSnapshot:
    def test_schema_valid(self, snapshot):
        assert bench.validate_payload(snapshot) is snapshot
        assert snapshot["schema_version"] == bench.BENCH_SCHEMA_VERSION
        assert snapshot["suite"] == "smoke"
        assert snapshot["procs"] == 2
        assert len(snapshot["runs"]) == len(bench.SUITES["smoke"])

    def test_runs_carry_measurements(self, snapshot):
        for run in snapshot["runs"]:
            assert run["exec_time"] > 0
            assert run["wall_time_s"] > 0
            assert run["sim_cycles_per_s"] > 0
            assert run["network_messages"] > 0

    def test_json_round_trip(self, snapshot, tmp_path):
        path = tmp_path / "BENCH_test.json"
        bench.write_payload(snapshot, str(path))
        assert bench.load_payload(str(path)) == snapshot

    def test_validate_rejects_wrong_version(self, snapshot):
        bad = copy.deepcopy(snapshot)
        bad["schema_version"] = 999
        with pytest.raises(ConfigError, match="schema_version"):
            bench.validate_payload(bad)

    def test_validate_rejects_missing_run_field(self, snapshot):
        bad = copy.deepcopy(snapshot)
        del bad["runs"][0]["sim_cycles_per_s"]
        with pytest.raises(ConfigError, match="sim_cycles_per_s"):
            bench.validate_payload(bad)

    def test_validate_rejects_empty_runs(self, snapshot):
        bad = copy.deepcopy(snapshot)
        bad["runs"] = []
        with pytest.raises(ConfigError, match="no runs"):
            bench.validate_payload(bad)

    def test_default_path_shape(self):
        assert bench.default_path(0).startswith("BENCH_19")  # epoch, local time


class TestCompare:
    def test_identical_snapshots_pass(self, snapshot):
        rows, regressions = bench.compare(snapshot, snapshot)
        assert not regressions
        assert all(row["status"] == "ok" for row in rows)
        assert all(row["speed_delta"] == pytest.approx(0.0) for row in rows)

    def test_injected_20pct_slowdown_detected(self, snapshot):
        rows, regressions = bench.compare(snapshot, slowed(snapshot, 0.8), threshold=0.15)
        assert len(regressions) == len(snapshot["runs"])
        for row in regressions:
            assert row["status"] == "REGRESSED"
            assert row["speed_delta"] == pytest.approx(-0.2)
            assert any("cycles/s" in flag for flag in row["flags"])

    def test_slowdown_within_threshold_passes(self, snapshot):
        _, regressions = bench.compare(snapshot, slowed(snapshot, 0.8), threshold=0.25)
        assert not regressions

    def test_speedup_never_regresses(self, snapshot):
        _, regressions = bench.compare(snapshot, slowed(snapshot, 1.5), threshold=0.15)
        assert not regressions

    def test_sim_threshold_flags_exec_time_drift(self, snapshot):
        drifted = copy.deepcopy(snapshot)
        for run in drifted["runs"]:
            run["exec_time"] = int(run["exec_time"] * 1.3)
        _, without = bench.compare(snapshot, drifted)
        assert not without  # host threshold alone ignores simulated drift
        _, with_gate = bench.compare(snapshot, drifted, sim_threshold=0.05)
        assert with_gate
        assert any("exec_time" in flag for row in with_gate for flag in row["flags"])

    def test_new_and_removed_runs(self, snapshot):
        pruned = copy.deepcopy(snapshot)
        extra_run = pruned["runs"].pop()
        rows, regressions = bench.compare(pruned, snapshot)
        assert not regressions  # membership changes inform, never fail
        statuses = {(r["workload"], r["protocol"]): r["status"] for r in rows}
        assert statuses[(extra_run["workload"], extra_run["protocol"])] == "new"
        rows, _ = bench.compare(snapshot, pruned)
        statuses = {(r["workload"], r["protocol"]): r["status"] for r in rows}
        assert statuses[(extra_run["workload"], extra_run["protocol"])] == "removed"

    def test_format_compare_renders(self, snapshot):
        rows, _ = bench.compare(snapshot, slowed(snapshot, 0.8))
        text = bench.format_compare(rows)
        assert "REGRESSED" in text
        assert "-20.0%" in text


class TestBenchCli:
    def test_run_writes_valid_snapshot(self, tmp_path, capsys):
        from repro.harness.cli import main

        path = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--suite", "smoke", "--procs", "2", "-o", str(path)]) == 0
        payload = bench.load_payload(str(path))
        assert payload["suite"] == "smoke"
        assert "bench suite 'smoke'" in capsys.readouterr().out

    def test_compare_exit_codes(self, snapshot, tmp_path, capsys):
        from repro.harness.cli import main

        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        bench.write_payload(snapshot, str(old))
        bench.write_payload(slowed(snapshot, 0.8), str(new))
        assert main(["bench", "--compare", str(old), str(old)]) == 0
        assert main(["bench", "--compare", str(old), str(new)]) == 1
        assert main(["bench", "--compare", str(old), str(new), "--threshold", "0.25"]) == 0
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_compare_json_output(self, snapshot, tmp_path, capsys):
        from repro.harness.cli import main

        old = tmp_path / "old.json"
        bench.write_payload(snapshot, str(old))
        assert main(["bench", "--compare", str(old), str(old), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regressions"] == 0
        assert all(row["status"] == "ok" for row in payload["rows"])

    def test_unreadable_snapshot_is_config_error(self, tmp_path, capsys):
        from repro.harness.cli import main

        missing = str(tmp_path / "absent.json")
        assert main(["bench", "--compare", missing, missing]) == 2
        assert "cannot read bench snapshot" in capsys.readouterr().err

"""Tardis leased-timestamp coherence (docs/PROTOCOL.md §8).

End-to-end zero-invalidation runs on a paper workload, deterministic
lease-expiry edge cases (expiry exactly at the read timestamp, renewal
racing a remote write), timestamp-growth bounds, the lease policies, the
analytics lease section, and the model checker's timestamp-aware
data-value invariant.
"""

import numpy as np
import pytest
from conftest import seg_addr, tiny_config, two_proc_program

from repro.coherence.explore import check_variant
from repro.coherence.variants import Bugs, tardis_variants
from repro.config import Consistency, SystemConfig
from repro.core.mechanisms import (
    AdaptiveLeasePolicy,
    StaticLeasePolicy,
    make_lease_policy,
)
from repro.errors import ConfigError
from repro.harness.configs import LARGE_CACHE, paper_config, workload_args
from repro.obs import Instrument
from repro.obs.analytics import AnalyticsInstrument, lease_report
from repro.system import Machine
from repro.trace.ops import OP_LOCK, OP_UNLOCK, OP_WRITE
from repro.workloads import by_name

LEASE = 4
A = seg_addr(0)  # home node 0
B = seg_addr(1)  # home node 1

#: The checker configuration used by the unit tests here (2 nodes, 2
#: values).  CI's ``check-protocol --variant tardis`` runs the full
#: default grid; these tests only need the invariants armed.
CHECK_CONFIGS = ((2, 2),)


def tardis_config(**overrides):
    overrides.setdefault("tardis", True)
    overrides.setdefault("lease", LEASE)
    return tiny_config(**overrides)


def run_counted(config, build):
    """Run a two-processor program and return (machine, result, counts)."""
    program = two_proc_program(build)
    instrument = Instrument()
    machine = Machine(config, program, instrument=instrument)
    result = machine.run()
    return machine, result, instrument.counts


def paper_run(protocol, workload="em3d", n_procs=4):
    program = by_name(workload, **workload_args(workload, quick=True, n_procs=n_procs))
    config = paper_config(protocol, cache=LARGE_CACHE, n_procs=n_procs)
    return program, Machine(config, program).run()


class TestZeroInvalidations:
    """The acceptance criterion: a paper workload under SC- and WC-Tardis
    completes with *zero* invalidation traffic on the message ledger —
    every coherence hand-off rides lease expiry and writebacks."""

    @pytest.mark.parametrize("protocol", ["TARDIS", "W+TARDIS"])
    def test_paper_workload_sends_no_invalidations(self, protocol):
        _program, result = paper_run(protocol)
        network = result.messages.network
        assert network.get("INV", 0) == 0
        assert network.get("INV_ACK", 0) == 0
        assert network.get("INV_ACK_DATA", 0) == 0
        # ...and it actually exercised the protocol, with leases expiring.
        assert network.get("GETS", 0) > 0
        assert result.misses.self_invalidations > 0
        assert result.exec_time > 0


class TestLeaseExpiryEdge:
    """Lease expiry exactly at the read timestamp: a copy leased to
    ``rts`` is still readable at ``pts == rts`` and expires only at
    ``pts == rts + 1``."""

    def expiry_run(self, writes):
        def build(b0, b1, ctx):
            b0.read(A)  # lease grant: rts(A) = LEASE (wts 0, pts 0)
            for _ in range(writes):
                b1.write(B)  # each write bumps the writer's pts by one
            ctx.barrier_all()  # barrier joins every pts to the peak
            b0.read(A)  # readable iff pts <= rts

        return run_counted(tardis_config(), build)

    def test_read_exactly_at_lease_end_is_a_hit(self):
        machine, result, counts = self.expiry_run(LEASE)
        assert counts.get("lease_expire", 0) == 0
        assert result.misses.self_invalidations == 0
        assert counts.get("lease_grant", 0) == 1  # the original grant only
        assert [c.pts for c in machine.controllers] == [LEASE, LEASE]

    def test_read_one_past_lease_end_expires(self):
        machine, result, counts = self.expiry_run(LEASE + 1)
        assert counts.get("lease_expire", 0) == 1
        assert result.misses.self_invalidations == 1
        assert counts.get("lease_grant", 0) == 2  # original grant + renewal
        assert [c.pts for c in machine.controllers] == [LEASE + 1, LEASE + 1]

    def test_expiry_is_free_of_coherence_traffic(self):
        _machine, result, _counts = self.expiry_run(LEASE + 1)
        network = result.messages.network
        assert network.get("INV", 0) == 0
        assert network.get("INV_ACK", 0) == 0


class TestLeaseRenewal:
    """Renewals carry the expired copy's retained ``wts`` so the home can
    judge whether the expiry was justified."""

    def test_renewal_racing_remote_write(self):
        """A renewal GETS and a remote GETX hit the same block back to
        back after the lease expires; whichever order the home services
        them, the run stays coherent, invalidation-free, and counts
        exactly one renewal."""

        def build(b0, b1, ctx):
            b1.write(A)  # prime: wts(A) = 1, so renewals are detectable
            ctx.barrier_all()
            b0.read(A)  # lease grant on the written block
            for _ in range(LEASE + 2):
                b1.write(B)  # push the writer's pts past the lease
            ctx.barrier_all()  # join -> the reader's copy of A is expired
            b0.read(A)  # renewal (stale wts rides the GETS)...
            b1.write(A)  # ...racing a remote write to the same block

        machine, result, counts = run_counted(tardis_config(), build)
        renewals = counts.get("lease_renew_changed", 0) + counts.get(
            "lease_renew_unchanged", 0
        )
        assert renewals == 1
        assert counts.get("lease_expire", 0) >= 1
        assert result.messages.network.get("INV", 0) == 0
        # The home's lease policy saw the same renewal the probes did.
        policy = machine.directories[0].lease_policy
        assert policy.renewals_changed + policy.renewals_unchanged == 1

    def test_renewal_after_remote_write_counts_changed(self):
        """When the block moved between lease and renewal, the retained
        ``wts`` mismatches and the expiry scores as justified."""

        def build(b0, b1, ctx):
            b1.write(A)
            ctx.barrier_all()
            b0.read(A)
            for _ in range(LEASE + 2):
                b1.write(B)
            ctx.barrier_all()
            b1.write(A)  # the block moves while the lease is expired
            ctx.barrier_all()
            b0.read(A)  # renewal finds a different wts

        machine, _result, counts = run_counted(tardis_config(), build)
        assert counts.get("lease_renew_changed", 0) == 1
        assert counts.get("lease_renew_unchanged", 0) == 0
        assert machine.directories[0].lease_policy.renewals_changed == 1


class TestTimestampGrowth:
    """Timestamps are unbounded Python integers — there is no wraparound
    to get wrong — but logical time must grow with *conflicts*, not with
    cycles: one write advances a block's ``wts`` by at most ``lease + 1``
    (the jump past an outstanding lease), so the program timestamp is
    bounded by the write count, however long the run takes."""

    def test_pts_bounded_by_writes_times_lease(self):
        program, result = paper_run("TARDIS")
        writing = np.isin(
            np.concatenate([t.kinds for t in program.traces]),
            (OP_WRITE, OP_LOCK, OP_UNLOCK),
        )
        writes = int(np.count_nonzero(writing))
        config = paper_config("TARDIS", cache=LARGE_CACHE, n_procs=4)
        machine = Machine(config, program)
        machine.run()
        peak = max(c.pts for c in machine.controllers)
        assert 0 < peak <= writes * (config.lease + 1)
        # Logical time is decoupled from physical time: far fewer ticks
        # than cycles even on a tiny run.
        assert peak < result.exec_time


class TestLeasePolicies:
    class Entry:
        """The slice of DirEntry the policies touch."""

        def __init__(self, lease=0):
            self.lease = lease

    def test_static_lease_is_constant(self):
        policy = StaticLeasePolicy(8)
        assert policy.lease_for(self.Entry()) == 8
        policy.on_read_grant(self.Entry(), renewed=True, changed=True)
        policy.on_read_grant(self.Entry(), renewed=True, changed=False)
        policy.on_read_grant(self.Entry(), renewed=False, changed=False)
        assert (policy.renewals_changed, policy.renewals_unchanged) == (1, 1)
        policy.on_write_grant(self.Entry(), slack=100)  # no-op, no error

    def test_static_lease_rejects_nonpositive(self):
        with pytest.raises(ConfigError, match="lease"):
            StaticLeasePolicy(0)

    def test_adaptive_grows_on_unchanged_renewal(self):
        policy = AdaptiveLeasePolicy(8, lease_min=2, lease_max=64)
        entry = self.Entry()
        assert policy.lease_for(entry) == 8  # unprimed -> default
        policy.on_read_grant(entry, renewed=True, changed=False)
        assert entry.lease == 16
        policy.on_read_grant(entry, renewed=True, changed=False)
        policy.on_read_grant(entry, renewed=True, changed=False)
        assert entry.lease == 64  # capped at lease_max
        policy.on_read_grant(entry, renewed=True, changed=False)
        assert entry.lease == 64
        assert policy.grows == 3  # the capped repeat does not count
        assert policy.renewals_unchanged == 4

    def test_adaptive_shrinks_on_idle_lease_window(self):
        policy = AdaptiveLeasePolicy(8, lease_min=2, lease_max=64)
        entry = self.Entry(lease=16)
        policy.on_write_grant(entry, slack=16)  # slack > lease//2: keep
        assert entry.lease == 16
        policy.on_write_grant(entry, slack=8)  # slack <= lease//2: halve
        assert entry.lease == 8
        policy.on_write_grant(entry, slack=0)
        policy.on_write_grant(entry, slack=0)
        assert entry.lease == 2  # floored at lease_min
        policy.on_write_grant(entry, slack=0)
        assert entry.lease == 2
        assert policy.shrinks == 3

    def test_adaptive_changed_renewal_does_not_grow(self):
        policy = AdaptiveLeasePolicy(8, lease_min=2, lease_max=64)
        entry = self.Entry(lease=8)
        policy.on_read_grant(entry, renewed=True, changed=True)
        assert entry.lease == 8
        assert policy.grows == 0
        assert policy.renewals_changed == 1

    def test_adaptive_rejects_bad_bounds(self):
        with pytest.raises(ConfigError, match="lease_min"):
            AdaptiveLeasePolicy(8, lease_min=16, lease_max=4)
        with pytest.raises(ConfigError, match="lease_min"):
            AdaptiveLeasePolicy(8, lease_min=0, lease_max=4)

    def test_factory_dispatch(self):
        static = make_lease_policy(SystemConfig(tardis=True, lease=12))
        assert isinstance(static, StaticLeasePolicy)
        assert static.lease == 12
        adaptive = make_lease_policy(
            SystemConfig(tardis=True, lease=12, lease_adaptive=True)
        )
        assert isinstance(adaptive, AdaptiveLeasePolicy)


class TestLeaseAnalytics:
    def test_lease_report_outside_tardis_is_inert(self):
        report = lease_report({})
        assert report["grants"] == report["expiries"] == report["renewals"] == 0
        assert report["renewal_accuracy"] is None

    def test_lease_report_folds_counters(self):
        report = lease_report(
            {
                "lease_grant": 10,
                "lease_expire": 6,
                "lease_renew_changed": 3,
                "lease_renew_unchanged": 1,
            }
        )
        assert report["renewals"] == 4
        assert report["never_renewed"] == 2
        assert report["renewal_accuracy"] == 0.75

    def test_analytics_report_carries_lease_section(self):
        def build(b0, b1, ctx):
            b0.read(A)
            for _ in range(LEASE + 1):
                b1.write(B)
            ctx.barrier_all()
            b0.read(A)

        program = two_proc_program(build)
        instrument = AnalyticsInstrument()
        Machine(tardis_config(), program, instrument=instrument).run()
        report = instrument.report()
        assert report["schema_version"] == 2
        lease = report["lease"]
        assert lease["grants"] == 2
        assert lease["expiries"] == 1


class TestChecker:
    """The bounded model checker's timestamp-aware data-value invariant:
    every read must observe the latest write whose ``wts`` precedes the
    read's logical time."""

    def test_tardis_variants_verify_clean(self):
        variants = tardis_variants()
        assert [v.describe() for v in variants] == ["SC+TARDIS", "WC+TARDIS"]
        for variant in variants:
            report = check_variant(
                variant, configs=CHECK_CONFIGS, require_coverage=False
            )
            assert report.violation is None, report.violation
            assert report.states > 1000

    def test_write_ignoring_leases_is_caught(self):
        report = check_variant(
            tardis_variants()[0],
            bugs=Bugs(tardis_write_ignores_lease=True),
            configs=CHECK_CONFIGS,
            require_coverage=False,
        )
        assert report.violation is not None
        assert "timestamp data-value violated" in report.violation
        assert "lease [" in report.violation

    def test_counterexample_trace_is_replayable_prose(self):
        """The counterexample names each move: processor ops as
        ``n<i>: LOAD/STORE``, message deliveries with kind and route."""
        report = check_variant(
            tardis_variants()[0],
            bugs=Bugs(tardis_write_ignores_lease=True),
            configs=CHECK_CONFIGS,
            require_coverage=False,
        )
        assert report.trace, "a violation must come with its trace"
        assert all(isinstance(move, str) for move in report.trace)
        ops = [m for m in report.trace if m.startswith("n")]
        deliveries = [m for m in report.trace if m.startswith("deliver ")]
        assert len(ops) + len(deliveries) == len(report.trace)
        assert any("STORE" in m for m in ops)
        assert any("->" in m for m in deliveries)


class TestConfigWiring:
    def test_protocol_labels_are_case_insensitive(self):
        config = paper_config("tardis", n_procs=4)
        assert config.tardis
        assert config.consistency is Consistency.SC
        wc = paper_config("w+tardis", n_procs=4)
        assert wc.tardis
        assert wc.consistency is Consistency.WC

    def test_lease_overrides_flow_through(self):
        config = paper_config("TARDIS", n_procs=4, lease=16, lease_adaptive=True)
        assert config.lease == 16
        assert config.lease_adaptive

    def test_unknown_label_still_rejected(self):
        with pytest.raises(ConfigError, match="unknown protocol label"):
            paper_config("tardis++")

"""Shared test fixtures and helpers."""

import pytest

from repro.config import Consistency, IdentifyScheme, SystemConfig
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program

KB = 1024


def tiny_config(n_procs=2, **overrides):
    """A small, fully-checked machine configuration for protocol tests."""
    defaults = dict(
        n_processors=n_procs,
        cache_size=8 * KB,
        check_invariants=True,
        quantum=1,
        max_events=2_000_000,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def seg_addr(node, offset=0):
    """A byte address in ``node``'s home segment (block-aligned base)."""
    return (node << 22) + 4096 + offset


def run_program(config, program):
    return Machine(config, program).run()


def two_proc_program(build):
    """Build a two-processor program via ``build(b0, b1, ctx)`` where ctx
    offers barrier emission."""
    builders = [TraceBuilder(), TraceBuilder()]
    counter = {"next": 0}

    class Ctx:
        @staticmethod
        def barrier_all():
            bid = counter["next"]
            counter["next"] += 1
            for builder in builders:
                builder.barrier(bid)

    build(builders[0], builders[1], Ctx)
    return Program("test", [b.build() for b in builders])


@pytest.fixture
def sc_config():
    return tiny_config()


@pytest.fixture
def wc_config():
    return tiny_config(consistency=Consistency.WC)


@pytest.fixture
def dsi_v_config():
    return tiny_config(identify=IdentifyScheme.VERSION)


@pytest.fixture
def dsi_s_config():
    return tiny_config(identify=IdentifyScheme.STATES)

"""Locks, barriers, and processor synchronization accounting."""

import pytest

from conftest import seg_addr, tiny_config
from repro.engine.simulator import Simulator
from repro.errors import SimulationError
from repro.processor.sync import BarrierManager, LockManager
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


class TestLockManagerUnit:
    def test_uncontended_acquire(self):
        locks = LockManager()
        assert locks.acquire(0x100, node=0, granted=lambda: None)
        assert locks.holder(0x100) == 0

    def test_fifo_handoff(self):
        locks = LockManager()
        order = []
        locks.acquire(0x100, 0, lambda: None)
        locks.acquire(0x100, 1, lambda: order.append(1))
        locks.acquire(0x100, 2, lambda: order.append(2))
        locks.release(0x100, 0)
        locks.release(0x100, 1)
        locks.release(0x100, 2)
        assert order == [1, 2]
        assert locks.holder(0x100) is None

    def test_release_by_non_holder_rejected(self):
        locks = LockManager()
        locks.acquire(0x100, 0, lambda: None)
        with pytest.raises(SimulationError):
            locks.release(0x100, 1)

    def test_stats(self):
        locks = LockManager()
        locks.acquire(0x100, 0, lambda: None)
        locks.acquire(0x100, 1, lambda: None)
        acquisitions, contended = locks.stats()[0x100]
        assert acquisitions == 1 and contended == 1

    def test_deadlock_diagnostic(self):
        locks = LockManager()
        locks.acquire(0x100, 0, lambda: None)
        assert locks.deadlock_diagnostic() is None
        locks.acquire(0x100, 1, lambda: None)
        assert "waiting" in locks.deadlock_diagnostic()


class TestBarrierManagerUnit:
    def test_releases_after_latency(self):
        sim = Simulator()
        barrier = BarrierManager(sim, n_procs=2, latency=100)
        released = []
        sim.schedule(10, barrier.arrive, 0, 0, lambda: released.append(("a", sim.now)))
        sim.schedule(50, barrier.arrive, 1, 0, lambda: released.append(("b", sim.now)))
        sim.run()
        # 100 cycles from the LAST arrival.
        assert released == [("a", 150), ("b", 150)]
        assert barrier.episodes == 1

    def test_double_arrival_rejected(self):
        sim = Simulator()
        barrier = BarrierManager(sim, n_procs=2, latency=10)
        barrier.arrive(0, 0, lambda: None)
        with pytest.raises(SimulationError):
            barrier.arrive(0, 0, lambda: None)

    def test_id_mismatch_rejected(self):
        sim = Simulator()
        barrier = BarrierManager(sim, n_procs=2, latency=10)
        barrier.arrive(0, 0, lambda: None)
        with pytest.raises(SimulationError):
            barrier.arrive(1, 7, lambda: None)

    def test_diagnostic(self):
        sim = Simulator()
        barrier = BarrierManager(sim, n_procs=2, latency=10)
        assert barrier.deadlock_diagnostic() is None
        barrier.arrive(0, 0, lambda: None)
        assert "1/2 arrived" in barrier.deadlock_diagnostic()


class TestLockIntegration:
    def lock_program(self, n=3, rounds=2, compute=0):
        lock_addr = seg_addr(0, 4096)
        builders = [TraceBuilder() for _ in range(n)]
        for _round in range(rounds):
            for builder in builders:
                if compute:
                    builder.compute(compute)
                builder.lock(lock_addr)
                builder.read(seg_addr(0)).write(seg_addr(0))
                builder.unlock(lock_addr)
        for builder in builders:
            builder.barrier(0)
        return Program("locks", [b.build() for b in builders])

    def test_mutual_exclusion_traffic(self):
        program = self.lock_program()
        machine = Machine(tiny_config(n_procs=3), program)
        result = machine.run()
        # The protected block migrates between the three caches.
        assert result.misses.explicit_invalidations > 0

    def test_contention_counts_as_sync(self):
        program = self.lock_program()
        result = Machine(tiny_config(n_procs=3), program).run()
        total = result.aggregate_breakdown()
        assert total.sync > 0

    def test_lock_block_ping_pongs(self):
        program = self.lock_program(rounds=3)
        machine = Machine(tiny_config(n_procs=3), program)
        machine.run()
        stats = machine.locks.stats()
        (lock_stats,) = list(stats.values())
        acquisitions, contended = lock_stats
        assert acquisitions == 9
        assert contended > 0

    def test_all_critical_sections_execute(self):
        program = self.lock_program(n=4, rounds=3)
        machine = Machine(tiny_config(n_procs=4), program)
        machine.run()
        # The protected block saw one write per critical section.
        block = seg_addr(0) >> 5
        entry = machine.directories[0].entries[block]
        holder = None
        for controller in machine.controllers:
            frame = controller.cache.lookup(block, touch=False)
            if frame is not None and frame.dirty:
                holder = frame
        final_stamp = holder.data if holder is not None else entry.data
        assert final_stamp > 0


class TestBarrierIntegration:
    def test_barrier_equalizes(self):
        builders = [TraceBuilder(), TraceBuilder()]
        builders[0].compute(1000)
        for builder in builders:
            builder.barrier(0)
        program = Program("bar", [b.build() for b in builders])
        result = Machine(tiny_config(n_procs=2), program).run()
        assert result.per_proc_time[0] == result.per_proc_time[1]
        # The idle processor's wait shows up as sync time.
        assert result.breakdowns[1].sync >= 1000

    def test_barrier_latency_applied(self):
        builders = [TraceBuilder(), TraceBuilder()]
        for builder in builders:
            builder.barrier(0)
        program = Program("bar", [b.build() for b in builders])
        result = Machine(tiny_config(n_procs=2), program).run()
        assert result.exec_time == 100  # barrier_latency from last arrival

    def test_missing_arrival_deadlocks(self):
        builders = [TraceBuilder().barrier(0).barrier(1), TraceBuilder().barrier(0).barrier(1)]
        program = Program("bar", [b.build() for b in builders])
        # Corrupt: proc 1 stops after the first barrier.
        program.traces[1] = TraceBuilder().barrier(0).build()
        from repro.errors import DeadlockError, TraceError

        with pytest.raises((DeadlockError, TraceError)):
            Program("bad", program.traces)  # validation catches it first

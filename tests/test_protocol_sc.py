"""Full-machine integration tests: the sequentially consistent protocol.

These check end-to-end behaviour including exact miss latencies derived
from the paper's cost model: cache controller 3 cycles, directory 10,
injection 3 (+8 with data), network 100, local hop 1.
"""


from conftest import seg_addr, tiny_config, two_proc_program
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


def single_proc(ops):
    builder = TraceBuilder()
    ops(builder)
    return Program("single", [builder.build()])


# Expected latencies under the paper's cost model:
# remote read/write miss to an Idle block:
#   cc(3) + inject(3) + net(100) + dir(10) + inject(3+8) + net(100) + cc(3) = 230
REMOTE_MISS = 230
# local (home-node) miss: cc(3) + local(1) + dir(10) + local(1) + cc(3) = 18
LOCAL_MISS = 18
# invalidation of one remote copy, as seen by the directory:
#   inject(3) + net(100) + cc(3) + inject(3[+8]) + net(100) + dir(10)
INVAL_RTT_CLEAN = 219
INVAL_RTT_DIRTY = 227


class TestMissLatencies:
    def test_local_cold_read_miss(self):
        program = single_proc(lambda b: b.read(seg_addr(0)))
        result = Machine(tiny_config(n_procs=1), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.read_other == LOCAL_MISS
        assert breakdown.read_inval == 0

    def test_remote_cold_read_miss(self):
        program = Program(
            "remote",
            [TraceBuilder().read(seg_addr(1)).build(), TraceBuilder().build()],
        )
        result = Machine(tiny_config(), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.read_other == REMOTE_MISS

    def test_remote_cold_write_miss(self):
        program = Program(
            "remote",
            [TraceBuilder().write(seg_addr(1)).build(), TraceBuilder().build()],
        )
        result = Machine(tiny_config(), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.write_other == REMOTE_MISS
        assert breakdown.write_inval == 0

    def test_read_hit_costs_hit_cycles_only(self):
        program = single_proc(lambda b: b.read(seg_addr(0)).read(seg_addr(0)))
        result = Machine(tiny_config(n_procs=1), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.read_other == LOCAL_MISS  # only the first read missed
        assert breakdown.compute == 1  # the second read's hit cycle folds into compute

    def test_write_invalidation_latency(self):
        """P0 writes a block P1 holds shared: the extra stall is the
        invalidation round trip, reported as write_inval."""

        def build(b0, b1, ctx):
            ctx.barrier_all()
            b1.read(seg_addr(0))
            ctx.barrier_all()
            b0.write(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(tiny_config(), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.write_inval == INVAL_RTT_CLEAN

    def test_read_invalidation_latency(self):
        """P0 reads a block P1 holds exclusive (homed on P0): the extra
        stall is the dirty invalidation round trip."""

        def build(b0, b1, ctx):
            ctx.barrier_all()
            b1.write(seg_addr(0))
            ctx.barrier_all()
            b0.read(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(tiny_config(), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.read_inval == INVAL_RTT_DIRTY


class TestCoherenceSemantics:
    def test_reader_sees_writers_value(self):
        def build(b0, b1, ctx):
            ctx.barrier_all()
            b0.write(seg_addr(0))
            ctx.barrier_all()
            b1.read(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(), program)
        machine.run()
        frame = machine.controllers[1].cache.lookup(seg_addr(0) >> 5, touch=False)
        assert frame is not None
        # The reader's copy carries the writer's stamp.
        home_entry = machine.directories[0].entries[seg_addr(0) >> 5]
        assert frame.data == home_entry.data

    def test_upgrade_path(self):
        """Read then write the same remote block: the write goes out as an
        UPGRADE (no data transfer back)."""

        def build(b0, b1, ctx):
            b0.read(seg_addr(1)).write(seg_addr(1))
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(), program)
        result = machine.run()
        assert result.misses.upgrades == 1
        assert result.messages.network["UPGRADE"] == 1
        assert result.messages.network["UPGRADE_ACK"] == 1

    def test_dirty_eviction_writes_back(self):
        config = tiny_config(n_procs=1, cache_size=256, cache_assoc=1)  # 8 frames
        builder = TraceBuilder()
        builder.write(seg_addr(0))
        for i in range(1, 9):  # walk far enough to evict block 0
            builder.read(seg_addr(0, i * 256))
        program = Program("evict", [builder.build()])
        machine = Machine(config, program)
        result = machine.run()
        assert result.messages.local.get("WB", 0) >= 1
        # After the WB the directory holds the written data.
        entry = machine.directories[0].entries[seg_addr(0) >> 5]
        assert entry.owner is None

    def test_clean_eviction_sends_replacement_hint(self):
        config = tiny_config(n_procs=1, cache_size=256, cache_assoc=1)
        builder = TraceBuilder()
        for i in range(9):
            builder.read(seg_addr(0, i * 256))
        program = Program("evict", [builder.build()])
        result = Machine(config, program).run()
        assert result.messages.local.get("REPL", 0) >= 1

    def test_ping_pong_ownership(self):
        def build(b0, b1, ctx):
            addr = seg_addr(0)
            for round_id in range(3):
                ctx.barrier_all()
                b0.write(addr)
                ctx.barrier_all()
                b1.write(addr)
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(), program)
        result = machine.run()
        entry = machine.directories[0].entries[seg_addr(0) >> 5]
        assert entry.owner == 1
        # 5 ownership transfers -> 5 invalidations (first write finds Idle)
        total_invs = result.messages.network["INV"] + result.messages.local.get("INV", 0)
        assert total_invs == 5

    def test_message_conservation(self):
        """Every request gets exactly one response; every INV one ack."""

        def build(b0, b1, ctx):
            addr = seg_addr(0)
            for i in range(4):
                ctx.barrier_all()
                b0.write(addr)
                b0.write(seg_addr(1, 64))
                ctx.barrier_all()
                b1.read(addr)
                b1.write(seg_addr(1, 64))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(tiny_config(), program).run()
        counts = {}
        for source in (result.messages.network, result.messages.local):
            for kind, count in source.items():
                counts[kind] = counts.get(kind, 0) + count
        assert counts.get("GETS", 0) == counts.get("DATA", 0)
        assert counts.get("GETX", 0) + counts.get("UPGRADE", 0) == counts.get(
            "DATA_EX", 0
        ) + counts.get("UPGRADE_ACK", 0)
        acks = counts.get("INV_ACK", 0) + counts.get("INV_ACK_DATA", 0)
        # Racing replacements may stand in for acks, so acks <= INVs.
        assert acks <= counts.get("INV", 0)
        assert counts.get("ACK_DONE", 0) == 0  # SC never defers acks

    def test_deterministic(self):
        def build(b0, b1, ctx):
            for i in range(3):
                b0.compute(7).write(seg_addr(0, 32 * i)).read(seg_addr(1, 32 * i))
                b1.compute(5).read(seg_addr(0, 32 * i)).write(seg_addr(1, 32 * i))
                ctx.barrier_all()

        program = two_proc_program(build)
        first = Machine(tiny_config(), program).run()
        second = Machine(tiny_config(), program).run()
        assert first.exec_time == second.exec_time
        assert first.messages.network == second.messages.network
        assert first.events_fired == second.events_fired


class TestContention:
    def test_directory_serialises_simultaneous_readers(self):
        """N readers hitting one idle block: responses serialise at the
        home directory and NI, so later readers stall longer."""
        n = 4
        builders = [TraceBuilder() for _ in range(n)]
        for builder in builders:
            builder.barrier(0)
        for proc in range(1, n):
            builders[proc].read(seg_addr(0))
        for builder in builders:
            builder.barrier(1)
        program = Program("pileup", [b.build() for b in builders])
        result = Machine(tiny_config(n_procs=n), program).run()
        stalls = sorted(
            result.breakdowns[p].read_other for p in range(1, n)
        )
        assert stalls[0] == REMOTE_MISS
        assert stalls[1] > stalls[0]
        assert stalls[2] > stalls[1]

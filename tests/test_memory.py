"""Unit tests for the memory substrates: address map, cache, write buffer."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SystemConfig
from repro.errors import SimulationError, TraceError
from repro.memory.address import Allocator, RoundRobinHome, SegmentHome, SEGMENT_SHIFT
from repro.memory.cache import Cache, EXCLUSIVE, SHARED
from repro.memory.write_buffer import CoalescingWriteBuffer, WAIT_ACK, WAIT_DATA

KB = 1024


def make_cache(cache_size=8 * KB, assoc=4, block_size=32):
    config = SystemConfig(cache_size=cache_size, cache_assoc=assoc, block_size=block_size)
    return Cache(config, node=0)


class TestHomeMaps:
    def test_round_robin(self):
        home = RoundRobinHome(4)
        assert [home.home_of(b) for b in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_segment_home(self):
        home = SegmentHome(4, block_shift=5)
        block_in_seg2 = (2 << SEGMENT_SHIFT) >> 5
        assert home.home_of(block_in_seg2) == 2
        assert home.home_of(0) == 0

    def test_segment_home_out_of_range(self):
        home = SegmentHome(2, block_shift=5)
        bad_block = (3 << SEGMENT_SHIFT) >> 5
        with pytest.raises(TraceError):
            home.home_of(bad_block)


class TestAllocator:
    def test_allocations_live_in_own_segment(self):
        alloc = Allocator(4, 32)
        for node in range(4):
            addr = alloc.alloc(node, 128)
            assert addr >> SEGMENT_SHIFT == node

    def test_block_alignment(self):
        alloc = Allocator(2, 32)
        alloc.alloc(0, 10)
        addr = alloc.alloc(0, 10)
        assert addr % 32 == 0

    def test_allocations_do_not_overlap(self):
        alloc = Allocator(1, 32)
        a = alloc.alloc(0, 100)
        b = alloc.alloc(0, 100)
        assert b >= a + 100

    def test_staggered_bases_differ_mod_sets(self):
        # The anti-aliasing stagger: equal offsets on different nodes must
        # not map to the same cache set index.
        alloc = Allocator(8, 32)
        bases = [alloc.alloc(node, 32) for node in range(8)]
        sets = {(addr >> 5) % 128 for addr in bases}
        assert len(sets) > 1

    def test_segment_overflow(self):
        alloc = Allocator(1, 32)
        with pytest.raises(TraceError):
            alloc.alloc(0, 5 << SEGMENT_SHIFT)

    def test_bad_node(self):
        alloc = Allocator(2, 32)
        with pytest.raises(TraceError):
            alloc.alloc(5, 8)

    def test_alloc_blocks(self):
        alloc = Allocator(1, 32)
        first = alloc.alloc_blocks(0, 4)
        second = alloc.alloc_blocks(0, 4)
        assert second == first + 4

    def test_bytes_used(self):
        alloc = Allocator(1, 32)
        alloc.alloc(0, 64)
        assert alloc.bytes_used(0) >= 64

    @given(st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_no_overlap(self, sizes):
        alloc = Allocator(1, 32)
        regions = []
        for size in sizes:
            base = alloc.alloc(0, size)
            regions.append((base, base + size))
        regions.sort()
        for (_, end), (start, _) in zip(regions, regions[1:]):
            assert start >= end


class TestCacheBasics:
    def test_miss_then_fill_then_hit(self):
        cache = make_cache()
        assert cache.lookup(100) is None
        frame, victim = cache.fill(100, SHARED, data=1)
        assert victim is None
        hit = cache.lookup(100)
        assert hit is frame
        assert hit.state == SHARED
        assert hit.data == 1

    def test_fill_same_block_twice_rejected(self):
        cache = make_cache()
        cache.fill(100, SHARED, data=1)
        with pytest.raises(SimulationError):
            cache.fill(100, SHARED, data=2)

    def test_invalidate_keeps_tag_and_version(self):
        cache = make_cache()
        frame, _ = cache.fill(100, SHARED, data=1, version=7)
        cache.invalidate(frame)
        assert cache.lookup(100) is None
        assert cache.stored_version(100) == 7

    def test_invalidate_drop_version(self):
        cache = make_cache()
        frame, _ = cache.fill(100, SHARED, data=1, version=7)
        cache.invalidate(frame, keep_version=False)
        assert cache.stored_version(100) is None

    def test_refill_after_invalidate_reuses_frame(self):
        cache = make_cache()
        frame, _ = cache.fill(100, SHARED, data=1)
        cache.invalidate(frame)
        frame2, victim = cache.fill(100, EXCLUSIVE, data=2)
        assert frame2 is frame
        assert victim is None
        assert frame2.state == EXCLUSIVE

    def test_lru_eviction(self):
        cache = make_cache(assoc=2)
        n_sets = cache.n_sets
        blocks = [i * n_sets for i in range(3)]  # all map to set 0
        cache.fill(blocks[0], SHARED, data=0)
        cache.fill(blocks[1], SHARED, data=1)
        cache.lookup(blocks[0])  # touch 0: 1 becomes LRU
        _, victim = cache.fill(blocks[2], SHARED, data=2)
        assert victim is not None
        assert victim.block == blocks[1]

    def test_victim_carries_state(self):
        cache = make_cache(assoc=1)
        n_sets = cache.n_sets
        cache.fill(0, EXCLUSIVE, data=5, dirty=True, s_bit=True)
        _, victim = cache.fill(n_sets, SHARED, data=6)
        assert victim.block == 0
        assert victim.state == EXCLUSIVE
        assert victim.dirty
        assert victim.s_bit
        assert victim.data == 5

    def test_pinned_frames_not_evicted(self):
        cache = make_cache(assoc=2)
        n_sets = cache.n_sets
        frame0, _ = cache.fill(0, SHARED, data=0)
        frame1, _ = cache.fill(n_sets, SHARED, data=1)
        frame0.pinned = True
        _, victim = cache.fill(2 * n_sets, SHARED, data=2)
        assert victim.block == n_sets  # frame0 skipped despite being LRU

    def test_all_pinned_returns_none(self):
        cache = make_cache(assoc=2)
        n_sets = cache.n_sets
        frame0, _ = cache.fill(0, SHARED, data=0)
        frame1, _ = cache.fill(n_sets, SHARED, data=1)
        frame0.pinned = frame1.pinned = True
        frame, victim = cache.fill(2 * n_sets, SHARED, data=2)
        assert frame is None and victim is None

    def test_invalid_victim_prefers_lru(self):
        cache = make_cache(assoc=2)
        n_sets = cache.n_sets
        frame0, _ = cache.fill(0, SHARED, data=0, version=3)
        frame1, _ = cache.fill(n_sets, SHARED, data=1, version=4)
        cache.invalidate(frame0)
        cache.invalidate(frame1)  # frame1 touched later -> higher lru
        cache.fill(2 * n_sets, SHARED, data=2)
        # The older invalid frame (frame0) should have been recycled,
        # keeping frame1's version history alive.
        assert cache.stored_version(n_sets) == 4
        assert cache.stored_version(0) is None


class TestCacheSIList:
    def test_si_fill_registers(self):
        cache = make_cache()
        frame, _ = cache.fill(5, SHARED, data=0, s_bit=True)
        assert frame in cache.si_frames

    def test_invalidate_unregisters(self):
        cache = make_cache()
        frame, _ = cache.fill(5, SHARED, data=0, s_bit=True)
        cache.invalidate(frame)
        assert frame not in cache.si_frames
        assert not frame.s_bit

    def test_mark_and_unmark(self):
        cache = make_cache()
        frame, _ = cache.fill(5, SHARED, data=0)
        cache.mark_si(frame)
        assert frame.s_bit and frame in cache.si_frames
        cache.mark_si(frame, marked=False)
        assert not frame.s_bit and frame not in cache.si_frames

    def test_eviction_of_marked_block_unregisters(self):
        cache = make_cache(assoc=1)
        n_sets = cache.n_sets
        frame, _ = cache.fill(0, SHARED, data=0, s_bit=True)
        cache.fill(n_sets, SHARED, data=1)
        assert frame not in cache.si_frames
        assert not any(f.tag == 0 and f.s_bit for s in cache.sets for f in s)

    def test_eviction_of_marked_block_clears_flag(self):
        cache = make_cache(assoc=1)
        n_sets = cache.n_sets
        cache.fill(0, SHARED, data=0, s_bit=True)
        frame, _ = cache.fill(n_sets, SHARED, data=1, s_bit=False)
        assert not frame.s_bit
        assert frame not in cache.si_frames


class TestCacheIntrospection:
    def test_valid_blocks(self):
        cache = make_cache()
        cache.fill(1, SHARED, data=0)
        cache.fill(2, EXCLUSIVE, data=0)
        assert set(cache.valid_blocks()) == {1, 2}

    def test_occupancy(self):
        cache = make_cache()
        for block in range(10):
            cache.fill(block, SHARED, data=0)
        assert cache.occupancy() == 10

    def test_state_name(self):
        cache = make_cache()
        frame, _ = cache.fill(1, SHARED, data=0)
        assert frame.state_name() == "S"
        cache.invalidate(frame)
        assert frame.state_name() == "I"


@st.composite
def cache_ops(draw):
    ops = draw(
        st.lists(
            st.tuples(st.sampled_from(["fill", "touch", "inval"]), st.integers(0, 30)),
            max_size=60,
        )
    )
    return ops


class TestCacheModelProperty:
    @given(cache_ops())
    @settings(max_examples=80, deadline=None)
    def test_against_reference_lru(self, ops):
        """The cache must agree with a simple dict-based LRU reference."""
        assoc = 2
        cache = make_cache(cache_size=2 * 32 * 4, assoc=assoc)  # 4 sets
        n_sets = cache.n_sets
        reference = {}  # set_index -> list of blocks in LRU order (oldest first)

        def ref_set(block):
            return reference.setdefault(block % n_sets, [])

        for op, block in ops:
            bucket = ref_set(block)
            if op == "fill":
                if block in bucket:
                    continue  # model: no double fill
                if cache.lookup(block, touch=False) is not None:
                    continue
                frame, victim = cache.fill(block, SHARED, data=0)
                if len(bucket) == assoc:
                    expected_victim = bucket.pop(0)
                    assert victim is not None and victim.block == expected_victim
                bucket.append(block)
            elif op == "touch":
                hit = cache.lookup(block)
                assert (hit is not None) == (block in bucket)
                if block in bucket:
                    bucket.remove(block)
                    bucket.append(block)
            else:  # inval
                frame = cache.lookup(block, touch=False)
                if block in bucket:
                    assert frame is not None
                    cache.invalidate(frame)
                    bucket.remove(block)
                else:
                    assert frame is None
        valid = set(cache.valid_blocks())
        expected = {b for bucket in reference.values() for b in bucket}
        assert valid == expected


class TestWriteBuffer:
    def test_allocate_and_retire(self):
        wb = CoalescingWriteBuffer(2)
        wb.allocate(1, data=10, now=0)
        assert len(wb) == 1 and not wb.empty
        wb.retire(1)
        assert wb.empty

    def test_full(self):
        wb = CoalescingWriteBuffer(2)
        wb.allocate(1, 0, 0)
        wb.allocate(2, 0, 0)
        assert wb.full
        with pytest.raises(SimulationError):
            wb.allocate(3, 0, 0)

    def test_duplicate_rejected(self):
        wb = CoalescingWriteBuffer(2)
        wb.allocate(1, 0, 0)
        with pytest.raises(SimulationError):
            wb.allocate(1, 0, 0)

    def test_merge(self):
        wb = CoalescingWriteBuffer(2)
        entry = wb.allocate(1, data=10, now=0)
        wb.merge(1, data=20)
        assert entry.data == 20
        assert entry.merged_writes == 1
        assert wb.total_merges == 1

    def test_status_transitions(self):
        wb = CoalescingWriteBuffer(2)
        entry = wb.allocate(1, 0, 0)
        assert entry.status == WAIT_DATA
        wb.mark_data_arrived(1)
        assert entry.status == WAIT_ACK

    def test_when_space_immediate(self):
        wb = CoalescingWriteBuffer(1)
        called = []
        wb.when_space(lambda: called.append(1))
        assert called == [1]

    def test_when_space_deferred(self):
        wb = CoalescingWriteBuffer(1)
        wb.allocate(1, 0, 0)
        called = []
        wb.when_space(lambda: called.append(1))
        assert called == []
        wb.retire(1)
        assert called == [1]

    def test_when_empty(self):
        wb = CoalescingWriteBuffer(2)
        wb.allocate(1, 0, 0)
        wb.allocate(2, 0, 0)
        called = []
        wb.when_empty(lambda: called.append(1))
        wb.retire(1)
        assert called == []
        wb.retire(2)
        assert called == [1]

    def test_retire_unknown_rejected(self):
        wb = CoalescingWriteBuffer(2)
        with pytest.raises(SimulationError):
            wb.retire(9)

    def test_peak_occupancy(self):
        wb = CoalescingWriteBuffer(4)
        wb.allocate(1, 0, 0)
        wb.allocate(2, 0, 0)
        wb.retire(1)
        assert wb.peak_occupancy == 2

"""Load test: the service under hundreds of concurrent overlapping sweeps.

Twelve tenant threads fire 300 sweep submissions at one live server,
all drawn from a pool of ten unique tiny RunSpecs that *really
execute* (no stub executor here). The assertions are the service's
core promises:

* each unique spec executes exactly once (verified from the global
  event log, not the counters);
* every other request is served by the shared result — ``/v1/stats``
  shows ``executed == unique`` and a high cache-hit rate;
* a deliberately bursty tenant trips the rate limiter and gets 429
  with a usable ``Retry-After``;
* ``/v1/health`` answers in under a second the whole time, measured
  by a monitor thread polling throughout the storm.
"""

import threading
import time
from collections import Counter

import pytest

from repro.config import SystemConfig
from repro.harness.runspec import RunSpec
from repro.service.app import DsiService
from repro.service.client import ServiceClient, ServiceClientError

TENANTS = 12
SWEEPS_PER_TENANT = 25
UNIQUE_SPECS = 10


def _spec_pool():
    return [
        RunSpec.create(
            "producer_consumer", SystemConfig(n_processors=2),
            n_procs=2, blocks=2, iterations=2, seed=seed,
        )
        for seed in range(UNIQUE_SPECS)
    ]


@pytest.mark.slow
def test_service_survives_concurrent_sweep_storm(tmp_path):
    pool = _spec_pool()
    payloads = [spec.to_dict() for spec in pool]
    service = DsiService(
        cache_dir=str(tmp_path / "cache"), jobs=4, queue_depth=256,
    ).start()
    try:
        stop_monitor = threading.Event()
        health_worst = [0.0]
        health_errors = []

        def monitor():
            probe = ServiceClient(service.url, timeout=5.0)
            while not stop_monitor.is_set():
                begin = time.monotonic()
                try:
                    assert probe.health()["status"] == "ok"
                except Exception as exc:  # noqa: BLE001 - recorded, asserted below
                    health_errors.append(repr(exc))
                    break
                health_worst[0] = max(health_worst[0], time.monotonic() - begin)
                time.sleep(0.02)

        monitor_thread = threading.Thread(target=monitor, daemon=True)
        monitor_thread.start()

        results = []  # (tenant, sweep_id) accepted submissions
        errors = []
        lock = threading.Lock()

        def tenant_worker(tenant_id):
            client = ServiceClient(service.url, tenant=f"tenant-{tenant_id}",
                                   timeout=30.0)
            for i in range(SWEEPS_PER_TENANT):
                # overlapping slices of the pool: every sweep shares specs
                # with its neighbours, so in-flight dedupe has to engage
                start = (tenant_id + i) % UNIQUE_SPECS
                batch = [payloads[start], payloads[(start + 1) % UNIQUE_SPECS]]
                try:
                    accepted = client.submit_specs(batch)
                    with lock:
                        results.append((tenant_id, accepted["sweep"]))
                except ServiceClientError as exc:
                    if exc.status == 429:  # queue-full backpressure is legal
                        time.sleep(exc.retry_after or 0.05)
                        continue
                    with lock:
                        errors.append(repr(exc))

        threads = [
            threading.Thread(target=tenant_worker, args=(t,)) for t in range(TENANTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not any(t.is_alive() for t in threads), "tenant threads hung"
        assert not errors, f"unexpected client errors: {errors[:5]}"
        assert len(results) >= TENANTS * SWEEPS_PER_TENANT * 0.9

        # every accepted sweep completes
        waiter = ServiceClient(service.url, timeout=30.0)
        for _tenant, sweep_id in results:
            status = waiter.wait(sweep_id, timeout=120)
            assert status["counts"]["failed"] == 0

        stop_monitor.set()
        monitor_thread.join(10)
        assert not health_errors, health_errors
        assert health_worst[0] < 1.0, f"health latency {health_worst[0]:.3f}s"

        # exactly-once execution, proven from the global event log itself
        starts = Counter(
            event["spec_key"]
            for event in service.broker.global_events()
            if event["type"] == "run_started"
        )
        assert len(starts) == UNIQUE_SPECS
        assert set(starts.values()) == {1}, f"re-executed specs: {starts}"

        stats = waiter.stats()
        assert stats["runs"]["executed"] == UNIQUE_SPECS
        assert stats["runs"]["failed"] == 0
        assert stats["runs"]["requested"] >= len(results) * 2
        assert stats["runs"]["cache_hits"] == stats["runs"]["requested"] - UNIQUE_SPECS
        assert stats["runs"]["cache_hit_rate"] > 0.9
        assert stats["sweeps"]["active"] == 0
        assert len(stats["tenants"]) == TENANTS
    finally:
        service.close()


@pytest.mark.slow
def test_rate_limiter_engages_under_burst(tmp_path):
    """A bursty tenant gets 429 + Retry-After while a polite one sails."""
    service = DsiService(
        cache_dir=str(tmp_path / "cache"), jobs=2, rate=5.0, burst=5,
    ).start()
    try:
        pool = _spec_pool()
        hammer = ServiceClient(service.url, tenant="hammer")
        polite = ServiceClient(service.url, tenant="polite")
        rejections = []
        for spec in pool:  # 10 rapid submissions against burst=5
            try:
                hammer.submit_specs([spec])
            except ServiceClientError as exc:
                assert exc.status == 429
                assert exc.retry_after and exc.retry_after > 0
                rejections.append(exc)
        assert rejections, "burst never tripped the rate limiter"
        # the well-behaved tenant is not collateral damage
        accepted = polite.submit_specs([pool[0]])
        assert polite.wait(accepted["sweep"], timeout=60)["state"] == "done"
        stats = polite.stats()
        assert stats["tenants"]["hammer"]["rejected"] == len(rejections)
        assert stats["tenants"]["polite"]["rejected"] == 0
    finally:
        service.close()

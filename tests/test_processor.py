"""Processor model: trace walking, quantum batching, stall accounting."""

import pytest

from conftest import seg_addr, tiny_config
from repro.errors import SimulationError
from repro.stats.breakdown import CATEGORIES, Breakdown
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


def one_proc(build, **config_over):
    builder = TraceBuilder()
    build(builder)
    program = Program("p", [builder.build()])
    config = tiny_config(n_procs=1, **config_over)
    machine = Machine(config, program)
    result = machine.run()
    return result


class TestComputeAccounting:
    def test_pure_compute(self):
        result = one_proc(lambda b: b.compute(500).read(seg_addr(0)))
        assert result.breakdowns[0].compute == 500
        assert result.exec_time == 500 + 18  # compute + local miss

    def test_empty_trace_finishes_at_zero(self):
        result = one_proc(lambda b: None)
        assert result.exec_time == 0
        assert result.breakdowns[0].total() == 0

    def test_gap_charged_once_across_stalls(self):
        result = one_proc(lambda b: b.compute(100).write(seg_addr(0)))
        assert result.breakdowns[0].compute == 100

    def test_every_cycle_attributed(self):
        """exec time == sum of all breakdown categories (single proc)."""

        def build(b):
            b.compute(50)
            for i in range(5):
                b.read(seg_addr(0, 32 * i)).write(seg_addr(0, 32 * i)).compute(9)

        result = one_proc(build)
        assert result.breakdowns[0].total() == result.exec_time


class TestQuantum:
    @pytest.mark.parametrize("quantum", [1, 10, 100, 1000])
    def test_single_proc_timing_independent_of_quantum(self, quantum):
        def build(b):
            b.compute(37)
            for i in range(20):
                b.read(seg_addr(0, 32 * (i % 4))).compute(13)

        results = one_proc(build, quantum=quantum)
        reference = one_proc(build, quantum=1)
        assert results.exec_time == reference.exec_time
        assert results.breakdowns[0].as_dict() == reference.breakdowns[0].as_dict()

    def test_batching_reduces_events(self):
        def build(b):
            for i in range(200):
                b.read(seg_addr(0)).compute(3)

        precise = one_proc(build, quantum=1)
        batched = one_proc(build, quantum=100)
        assert batched.events_fired < precise.events_fired

    def test_multiproc_quantum_changes_timing_only_slightly(self):
        """Quantum batching is the WWT approximation: cross-processor
        timing may shift within a quantum but results stay close."""
        builders = [TraceBuilder(), TraceBuilder()]
        for i in range(50):
            builders[0].write(seg_addr(0, 32 * (i % 4))).compute(7)
            builders[1].read(seg_addr(0, 32 * (i % 4))).compute(5)
        for builder in builders:
            builder.barrier(0)
        program = Program("q", [b.build() for b in builders])
        precise = Machine(tiny_config(n_procs=2, quantum=1), program).run()
        batched = Machine(tiny_config(n_procs=2, quantum=100, check_invariants=False), program).run()
        assert abs(batched.exec_time - precise.exec_time) / precise.exec_time < 0.25


class TestBreakdownClass:
    def test_categories_complete(self):
        assert "compute" in CATEGORIES and "dsi" in CATEGORIES
        breakdown = Breakdown()
        assert breakdown.total() == 0

    def test_add_and_merge(self):
        a = Breakdown()
        a.add("compute", 10)
        b = Breakdown()
        b.add("compute", 5)
        b.add("sync", 2)
        a.merge(b)
        assert a.compute == 15 and a.sync == 2
        assert a.total() == 17

    def test_fractions_sum_to_one(self):
        breakdown = Breakdown()
        breakdown.add("compute", 30)
        breakdown.add("read_other", 70)
        fractions = breakdown.fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_of_empty(self):
        assert all(v == 0.0 for v in Breakdown().fractions().values())

    def test_copy_is_independent(self):
        a = Breakdown()
        a.add("compute", 1)
        b = a.copy()
        b.add("compute", 1)
        assert a.compute == 1 and b.compute == 2

    def test_repr_shows_nonzero(self):
        a = Breakdown()
        a.add("sync", 4)
        assert "sync=4" in repr(a)


class TestMachineGuards:
    def test_run_only_once(self):
        program = Program("p", [TraceBuilder().read(seg_addr(0)).build()])
        machine = Machine(tiny_config(n_procs=1), program)
        machine.run()
        with pytest.raises(SimulationError):
            machine.run()

    def test_proc_count_mismatch_rejected(self):
        program = Program("p", [TraceBuilder().build()])
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Machine(tiny_config(n_procs=2), program)

    def test_per_proc_times_reported(self):
        builders = [TraceBuilder().compute(10), TraceBuilder().compute(30)]
        program = Program("p", [b.build() for b in builders])
        result = Machine(tiny_config(n_procs=2), program).run()
        assert result.exec_time == max(result.per_proc_time)

"""RunSpec and RunRecord: value semantics, hashing, serialization."""

import pickle

import pytest

from repro.config import IdentifyScheme, SystemConfig
from repro.harness.runspec import RunSpec
from repro.stats.record import RunRecord


def _config(**overrides):
    defaults = dict(n_processors=2, cache_size=8192, quantum=1)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def _spec(**config_overrides):
    return RunSpec.create(
        "write_conflict", _config(n_processors=3, **config_overrides),
        n_procs=3, conflict=True, rounds=1,
    )


class TestRunSpec:
    def test_create_normalizes_kwarg_order(self):
        config = _config()
        a = RunSpec.create("ocean", config, n=8, n_procs=2, seed=3)
        b = RunSpec.create("ocean", config, seed=3, n_procs=2, n=8)
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_hashable_and_usable_as_dict_key(self):
        spec = _spec()
        assert {spec: "x"}[_spec()] == "x"

    def test_distinct_configs_distinct_keys(self):
        base = _spec()
        dsi = _spec(identify=IdentifyScheme.VERSION)
        assert base != dsi
        assert base.key() != dsi.key()

    def test_distinct_workload_args_distinct_keys(self):
        a = RunSpec.create("write_conflict", _config(n_processors=3), n_procs=3, rounds=1)
        b = RunSpec.create("write_conflict", _config(n_processors=3), n_procs=3, rounds=2)
        assert a.key() != b.key()

    def test_key_is_stable_across_calls(self):
        spec = _spec()
        assert spec.key() == spec.key()
        assert len(spec.key()) == 64  # sha256 hex

    def test_to_dict_flattens_enums(self):
        payload = _spec(identify=IdentifyScheme.VERSION).to_dict()
        assert payload["config"]["identify"] == IdentifyScheme.VERSION.value
        assert payload["workload"] == "write_conflict"
        assert payload["workload_args"]["rounds"] == 1

    def test_pickle_round_trip(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_build_program_is_deterministic(self):
        spec = _spec()
        one, two = spec.build_program(), spec.build_program()
        assert one.n_procs == two.n_procs == 3
        assert [len(t) for t in one.traces] == [len(t) for t in two.traces]

    def test_unknown_workload_raises(self):
        spec = RunSpec.create("no_such_workload", _config())
        with pytest.raises(KeyError):
            spec.build_program()

    def test_execute_returns_record(self):
        record = _spec().execute()
        assert isinstance(record, RunRecord)
        assert record.exec_time > 0
        assert record.workload.startswith("write_conflict")


class TestRunRecord:
    @pytest.fixture(scope="class")
    def record(self):
        return _spec(identify=IdentifyScheme.VERSION).execute()

    def test_dict_round_trip(self, record):
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.exec_time == record.exec_time
        assert clone.misses.as_dict() == record.misses.as_dict()
        assert dict(clone.messages.network) == dict(record.messages.network)

    def test_pickle_round_trip(self, record):
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record

    def test_round_trip_preserves_derived_stats(self, record):
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.normalized_to(record) == 1.0
        assert (
            clone.aggregate_breakdown().fractions()
            == record.aggregate_breakdown().fractions()
        )
        assert clone.messages.invalidations() == record.messages.invalidations()

    def test_json_compatible(self, record):
        import json

        payload = json.loads(json.dumps(record.to_dict()))
        assert RunRecord.from_dict(payload) == record

    def test_inequality_on_different_runs(self, record):
        other = _spec().execute()  # no DSI -> different timing
        assert record != other

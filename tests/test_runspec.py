"""RunSpec and RunRecord: value semantics, hashing, serialization."""

import pickle

import pytest

from repro.config import IdentifyScheme, SystemConfig
from repro.harness.runspec import RunSpec, SpecValidationError
from repro.stats.record import RunRecord


def _config(**overrides):
    defaults = dict(n_processors=2, cache_size=8192, quantum=1)
    defaults.update(overrides)
    return SystemConfig(**defaults)


def _spec(**config_overrides):
    return RunSpec.create(
        "write_conflict", _config(n_processors=3, **config_overrides),
        n_procs=3, conflict=True, rounds=1,
    )


class TestRunSpec:
    def test_create_normalizes_kwarg_order(self):
        config = _config()
        a = RunSpec.create("ocean", config, n=8, n_procs=2, seed=3)
        b = RunSpec.create("ocean", config, seed=3, n_procs=2, n=8)
        assert a == b
        assert hash(a) == hash(b)
        assert a.key() == b.key()

    def test_hashable_and_usable_as_dict_key(self):
        spec = _spec()
        assert {spec: "x"}[_spec()] == "x"

    def test_distinct_configs_distinct_keys(self):
        base = _spec()
        dsi = _spec(identify=IdentifyScheme.VERSION)
        assert base != dsi
        assert base.key() != dsi.key()

    def test_distinct_workload_args_distinct_keys(self):
        a = RunSpec.create("write_conflict", _config(n_processors=3), n_procs=3, rounds=1)
        b = RunSpec.create("write_conflict", _config(n_processors=3), n_procs=3, rounds=2)
        assert a.key() != b.key()

    def test_key_is_stable_across_calls(self):
        spec = _spec()
        assert spec.key() == spec.key()
        assert len(spec.key()) == 64  # sha256 hex

    def test_to_dict_flattens_enums(self):
        payload = _spec(identify=IdentifyScheme.VERSION).to_dict()
        assert payload["config"]["identify"] == IdentifyScheme.VERSION.value
        assert payload["workload"] == "write_conflict"
        assert payload["workload_args"]["rounds"] == 1

    def test_pickle_round_trip(self):
        spec = _spec()
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.key() == spec.key()

    def test_build_program_is_deterministic(self):
        spec = _spec()
        one, two = spec.build_program(), spec.build_program()
        assert one.n_procs == two.n_procs == 3
        assert [len(t) for t in one.traces] == [len(t) for t in two.traces]

    def test_unknown_workload_raises(self):
        spec = RunSpec.create("no_such_workload", _config())
        with pytest.raises(KeyError):
            spec.build_program()

    def test_execute_returns_record(self):
        record = _spec().execute()
        assert isinstance(record, RunRecord)
        assert record.exec_time > 0
        assert record.workload.startswith("write_conflict")


class TestRunSpecFromDict:
    """Strict JSON round-trip (the sweep service's validation path)."""

    def test_round_trip_preserves_identity_and_key(self):
        spec = _spec(identify=IdentifyScheme.VERSION)
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.key() == spec.key()

    def test_round_trip_through_json_text(self):
        import json

        spec = _spec()
        clone = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.key() == spec.key()

    def test_non_object_payload_rejected(self):
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(["not", "a", "spec"])
        assert "JSON object" in excinfo.value.errors[0]["reason"]

    def test_unknown_top_level_field_rejected(self):
        payload = _spec().to_dict()
        payload["priority"] = "high"
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert [e["field"] for e in excinfo.value.errors] == ["priority"]
        assert "unknown field" in excinfo.value.errors[0]["reason"]

    def test_missing_workload_rejected(self):
        payload = _spec().to_dict()
        del payload["workload"]
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert excinfo.value.errors[0]["field"] == "workload"
        assert "missing" in excinfo.value.errors[0]["reason"]

    def test_unregistered_workload_rejected(self):
        payload = _spec().to_dict()
        payload["workload"] = "barnes_hut"
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert "unknown workload" in excinfo.value.errors[0]["reason"]
        # the message names the registered catalog so a client can self-fix
        assert "producer_consumer" in excinfo.value.errors[0]["reason"]

    def test_non_scalar_workload_arg_rejected(self):
        payload = _spec().to_dict()
        payload["workload_args"]["rounds"] = [1, 2]
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert excinfo.value.errors[0]["field"] == "workload_args.rounds"
        assert "JSON scalars" in excinfo.value.errors[0]["reason"]

    def test_unknown_config_field_rejected(self):
        payload = _spec().to_dict()
        payload["config"]["mystery_knob"] = 7
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert excinfo.value.errors[0]["field"] == "config.mystery_knob"
        assert "unknown SystemConfig field" in excinfo.value.errors[0]["reason"]

    def test_bad_enum_value_rejected_with_choices(self):
        payload = _spec().to_dict()
        payload["config"]["identify"] = "psychic"
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        reason = excinfo.value.errors[0]["reason"]
        assert "bad IdentifyScheme value" in reason
        assert "'version'" in reason  # valid choices are listed

    def test_bool_and_int_type_confusion_rejected(self):
        payload = _spec().to_dict()
        payload["config"]["tearoff"] = 1          # int where bool expected
        payload["config"]["cache_size"] = True    # bool where int expected
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        reasons = {e["field"]: e["reason"] for e in excinfo.value.errors}
        assert reasons["config.tearoff"] == "must be a boolean"
        assert reasons["config.cache_size"] == "must be an integer"

    def test_all_errors_collected_not_just_first(self):
        payload = _spec().to_dict()
        payload["workload"] = "nope"
        payload["config"]["identify"] = "psychic"
        payload["extra"] = True
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert len(excinfo.value.errors) == 3

    def test_semantic_config_violation_reported_structurally(self):
        payload = _spec().to_dict()
        # version identification requires the version-number mechanism's
        # bits; zero is semantically invalid (SystemConfig.__post_init__)
        payload["config"]["identify"] = "version"
        payload["config"]["version_bits"] = 0
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        assert excinfo.value.errors[0]["field"] == "config"

    def test_error_payload_is_json_serializable(self):
        import json

        payload = _spec().to_dict()
        payload["workload_args"]["rounds"] = {1, 2}  # a set: not JSON
        with pytest.raises(SpecValidationError) as excinfo:
            RunSpec.from_dict(payload)
        body = excinfo.value.to_payload()
        json.dumps(body)  # must never raise, whatever garbage arrived
        assert body["error"] == "invalid RunSpec payload"


class TestRunRecord:
    @pytest.fixture(scope="class")
    def record(self):
        return _spec(identify=IdentifyScheme.VERSION).execute()

    def test_dict_round_trip(self, record):
        clone = RunRecord.from_dict(record.to_dict())
        assert clone == record
        assert clone.exec_time == record.exec_time
        assert clone.misses.as_dict() == record.misses.as_dict()
        assert dict(clone.messages.network) == dict(record.messages.network)

    def test_pickle_round_trip(self, record):
        clone = pickle.loads(pickle.dumps(record))
        assert clone == record

    def test_round_trip_preserves_derived_stats(self, record):
        clone = RunRecord.from_dict(record.to_dict())
        assert clone.normalized_to(record) == 1.0
        assert (
            clone.aggregate_breakdown().fractions()
            == record.aggregate_breakdown().fractions()
        )
        assert clone.messages.invalidations() == record.messages.invalidations()

    def test_json_compatible(self, record):
        import json

        payload = json.loads(json.dumps(record.to_dict()))
        assert RunRecord.from_dict(payload) == record

    def test_inequality_on_different_runs(self, record):
        other = _spec().execute()  # no DSI -> different timing
        assert record != other

"""Message tracer: recording, filtering, formatting."""


from conftest import seg_addr, tiny_config, two_proc_program
from repro.stats.tracer import MessageTracer, attach_tracer
from repro.system import Machine


def traced_run(tracer_kwargs=None, config=None):
    def build(b0, b1, ctx):
        ctx.barrier_all()
        b0.write(seg_addr(0))
        ctx.barrier_all()
        b1.read(seg_addr(0))
        ctx.barrier_all()

    program = two_proc_program(build)
    machine = Machine(config or tiny_config(), program)
    tracer = attach_tracer(machine, MessageTracer(**(tracer_kwargs or {})))
    machine.run()
    return tracer


class TestRecording:
    def test_records_all_messages(self):
        tracer = traced_run()
        kinds = {event.kind for event in tracer.events}
        assert "GETS" in kinds and "GETX" in kinds and "DATA" in kinds

    def test_times_monotone(self):
        tracer = traced_run()
        times = [event.time for event in tracer.events]
        assert times == sorted(times)

    def test_local_flag(self):
        tracer = traced_run()
        local = [e for e in tracer.events if e.local]
        remote = [e for e in tracer.events if not e.local]
        assert local and remote  # block homed on node 0: P0 local, P1 remote

    def test_limit(self):
        tracer = traced_run({"limit": 3})
        assert len(tracer) == 3
        assert tracer.full

    def test_max_events_caps_and_counts_drops(self):
        unbounded = traced_run({"max_events": 0})
        capped = traced_run({"max_events": 3})
        assert len(capped) == 3
        assert capped.dropped == len(unbounded) - 3

    def test_default_cap_applies(self):
        tracer = MessageTracer()
        assert tracer.max_events == 100_000
        assert not tracer.full and tracer.dropped == 0

    def test_max_events_wins_over_limit(self):
        tracer = MessageTracer(limit=5, max_events=7)
        assert tracer.max_events == 7
        assert tracer.limit == 7

    def test_block_filter(self):
        block = seg_addr(0) >> 5
        tracer = traced_run({"blocks": [block]})
        assert tracer.events
        assert all(event.block == block for event in tracer.events)

    def test_block_filter_misses_do_not_count_as_drops(self):
        tracer = traced_run({"blocks": [999_999], "max_events": 1})
        assert len(tracer) == 0
        assert tracer.dropped == 0


class TestQueries:
    def test_block_history_ordered(self):
        block = seg_addr(0) >> 5
        tracer = traced_run()
        history = tracer.block_history(block)
        # GETX (write miss) precedes the read's GETS on this block.
        kinds = [event.kind for event in history]
        assert kinds.index("GETX") < kinds.index("GETS")

    def test_block_history_only_that_block(self):
        def build(b0, b1, ctx):
            ctx.barrier_all()
            b0.write(seg_addr(0))
            b0.write(seg_addr(1))  # second block: other traffic to exclude
            ctx.barrier_all()
            b1.read(seg_addr(0))
            b1.read(seg_addr(1))
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(), program)
        tracer = attach_tracer(machine, MessageTracer())
        machine.run()
        block = seg_addr(0) >> 5
        history = tracer.block_history(block)
        assert history
        assert all(event.block == block for event in history)
        assert {e.block for e in tracer.events} - {block}
        assert len(history) < len(tracer.events)

    def test_block_history_times_ordered(self):
        block = seg_addr(0) >> 5
        tracer = traced_run()
        times = [e.time for e in tracer.block_history(block)]
        assert times == sorted(times)

    def test_between_channel(self):
        tracer = traced_run()
        channel = tracer.between(1, 0)
        assert all(e.src == 1 and e.dst == 0 for e in channel)
        assert any(e.kind == "GETS" for e in channel)

    def test_format(self):
        tracer = traced_run({"limit": 5})
        text = tracer.format()
        assert "message" in text and "path" in text
        # 2 header lines, 5 event rows, 1 drop-count line.
        assert len(text.splitlines()) == 2 + 5 + 1
        assert "dropped" in text.splitlines()[-1]

    def test_format_no_drop_line_when_nothing_dropped(self):
        tracer = traced_run()
        assert "dropped" not in tracer.format()

    def test_format_limit(self):
        tracer = traced_run()
        assert len(tracer.format(limit=2).splitlines()) == 4


class TestFlags:
    def test_si_flag_recorded(self):
        from repro.config import IdentifyScheme

        def build(b0, b1, ctx):
            addr = seg_addr(0)
            for _ in range(3):
                ctx.barrier_all()
                b0.write(addr)
                ctx.barrier_all()
                b1.read(addr)
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(identify=IdentifyScheme.VERSION), program)
        tracer = attach_tracer(machine, MessageTracer())
        machine.run()
        marked = [e for e in tracer.events if "si" in e.flags and e.kind == "DATA"]
        assert marked

    def test_version_on_requests(self):
        from repro.config import IdentifyScheme

        def build(b0, b1, ctx):
            addr = seg_addr(0)
            for _ in range(3):
                ctx.barrier_all()
                b0.write(addr)
                ctx.barrier_all()
                b1.read(addr)
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(identify=IdentifyScheme.VERSION), program)
        tracer = attach_tracer(machine, MessageTracer())
        machine.run()
        versioned = [e for e in tracer.events if e.flags.startswith("v") and e.kind == "GETS"]
        assert versioned

"""Causal tracing and the ``why`` cycle-accounting observatory.

Two layers of proof:

* **Conservation matrix** — every paper workload under base SC, DSI-V
  and Tardis (plus the WC stack) runs under a
  :class:`~repro.obs.CausalInstrument`; its quiesce hook re-tiles every
  blocking miss window from the transaction's causal marks and raises
  :class:`~repro.errors.AuditError` unless, per node, the ten categories
  sum to the execution time exactly.
* **Paper-shaped claims** — DSI-V spends strictly fewer INV-attributed
  cycles than base SC (the mechanism behind Figure 3's bar shrink), and
  Tardis attributes exactly zero cycles to invalidation (timestamp
  self-invalidation sends none by construction).
"""

import pytest

from conftest import tiny_config
from repro.config import Consistency, IdentifyScheme
from repro.obs import (
    CAUSAL_CATEGORIES,
    CausalInstrument,
    TxnTrace,
    WHY_SCHEMA_VERSION,
    diff_why,
    format_txn,
    format_why,
)
from repro.obs.causal import INV_CATEGORIES, MISS_CATEGORIES
from repro.system import Machine
from repro.workloads import barnes, em3d, ocean, sparse, tomcatv

PAPER_PROGRAMS = {
    "barnes": lambda n: barnes(n_procs=n, bodies_per_proc=4, cells=16, iterations=1),
    "em3d": lambda n: em3d(n_procs=n, nodes_per_proc=16, iterations=1, private_words=64),
    "ocean": lambda n: ocean(n_procs=n, cols=16, days=1, sweeps_per_day=2),
    "sparse": lambda n: sparse(n_procs=n, x_words=128, iterations=1, a_words_per_proc=64),
    "tomcatv": lambda n: tomcatv(n_procs=n, rows_per_proc=2, cols=32, iterations=1),
}

#: The acceptance matrix: base write-invalidate, DSI with versions, and
#: leased timestamps, plus the WC stack (write buffers exercise the
#: write-buffer-stall category and the ACK_DONE leg of the chains).
VARIANTS = {
    "base": {},
    "dsi_v": {"identify": IdentifyScheme.VERSION},
    "tardis": {"tardis": True, "lease": 8},
    "wc": {"consistency": Consistency.WC},
    "wc_tardis": {"consistency": Consistency.WC, "tardis": True, "lease": 8},
}


def causal_run(workload, variant, n_procs=4, **instrument_kwargs):
    program = PAPER_PROGRAMS[workload](n_procs)
    config = tiny_config(n_procs=n_procs, **VARIANTS[variant])
    instrument = CausalInstrument(**instrument_kwargs)
    result = Machine(config, program, instrument=instrument).run()
    return instrument, result


def trained_em3d_run(variant, **instrument_kwargs):
    """em3d big enough for version prediction to train (the tiny matrix
    programs run one iteration — no history, so DSI has nothing to
    speculate on)."""
    program = em3d(n_procs=4, nodes_per_proc=96, iterations=3, private_words=64)
    config = tiny_config(n_procs=4, **VARIANTS[variant])
    instrument = CausalInstrument(**instrument_kwargs)
    result = Machine(config, program, instrument=instrument).run()
    return instrument, result


def inv_cycles(instrument):
    return sum(instrument.accounting["categories"][c] for c in INV_CATEGORIES)


@pytest.mark.parametrize("workload", sorted(PAPER_PROGRAMS))
@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_conservation(workload, variant):
    """Every cycle of every node lands in exactly one causal category.

    The hard check lives in ``on_quiesce`` (AuditError on any mismatch);
    reaching a populated ``accounting`` *is* the proof, the asserts
    below just pin the shape down."""
    instrument, result = causal_run(workload, variant)
    accounting = instrument.accounting
    assert accounting is not None
    assert accounting["exec_time"] == result.exec_time
    for entry in accounting["per_node"]:
        assert sum(entry["categories"].values()) == entry["exec_time"]
    assert sum(accounting["categories"].values()) == accounting["node_cycles"]


@pytest.mark.parametrize("workload", sorted(PAPER_PROGRAMS))
def test_tardis_attributes_zero_inv_cycles(workload):
    """Tardis never invalidates, so the accounting must attribute zero
    cycles to inv-roundtrip/ack-stall on every workload — stronger than
    counting messages: no *stall* is blamed on invalidation either."""
    instrument, _ = causal_run(workload, "tardis")
    for label in INV_CATEGORIES:
        assert instrument.accounting["categories"][label] == 0
    report = instrument.why_report()
    assert report["inv_attributed_cycles"] == 0
    assert report["categories"]["lease-expiry-reload"] >= 0


def test_dsi_v_spends_fewer_inv_cycles_than_base():
    """The paper's core effect, stated causally: on a paper workload
    DSI-V attributes strictly fewer cycles to invalidation
    (inv-roundtrip + ack-stall) than the base protocol."""
    base, _ = trained_em3d_run("base")
    dsi, _ = trained_em3d_run("dsi_v")
    assert inv_cycles(dsi) < inv_cycles(base), (
        "DSI-V did not reduce INV-attributed cycles "
        f"({inv_cycles(dsi)} vs base {inv_cycles(base)})"
    )


class TestWhyReport:
    def test_schema(self):
        instrument, result = causal_run("em3d", "base")
        report = instrument.why_report(workload="em3d", protocol="SC", top=5)
        assert report["schema_version"] == WHY_SCHEMA_VERSION
        assert report["workload"] == "em3d"
        assert report["protocol"] == "SC"
        assert set(report["categories"]) == set(CAUSAL_CATEGORIES)
        assert report["conservation"]["ok"]
        assert report["conservation"]["nodes"] == 4
        assert report["exec_time"] == result.exec_time
        txns = report["transactions"]
        assert txns["total"] > 0
        assert txns["unfinished"] == 0  # everything drains before quiesce
        assert len(report["top"]) <= 5

    def test_top_entries_carry_replayable_chains(self):
        instrument, _ = causal_run("em3d", "base")
        report = instrument.why_report(top=3)
        for entry in report["top"]:
            assert entry["cycles"] == sum(
                seg["cycles"] for seg in entry["segments"]
            )
            events = [hop["event"] for hop in entry["chain"]]
            assert events[0].startswith("MSHR open")
            assert events[-1] == "transaction complete"
            times = [hop["at"] for hop in entry["chain"]]
            assert times == sorted(times)

    def test_report_before_quiesce_raises(self):
        from repro.errors import AuditError

        with pytest.raises(AuditError):
            CausalInstrument().why_report()

    def test_formatters_render(self):
        instrument, _ = causal_run("em3d", "dsi_v")
        report = instrument.why_report(top=2)
        text = format_why(report)
        assert "conservation OK" in text
        for label in CAUSAL_CATEGORIES:
            assert label in text
        top = instrument.top_transactions(1)
        assert top and "segments:" in format_txn(top[0])


class TestDiff:
    def test_diff_why_is_mechanistic(self):
        base, _ = trained_em3d_run("base")
        dsi, _ = trained_em3d_run("dsi_v")
        diff = diff_why(base.why_report(protocol="SC"), dsi.why_report(protocol="V"))
        assert diff["base"] == "SC" and diff["other"] == "V"
        for label in CAUSAL_CATEGORIES:
            entry = diff["categories"][label]
            assert entry["delta"] == entry["other"] - entry["base"]
        # em3d trained across iterations is where versions pay off.
        assert diff["inv_attributed_cycles"]["delta"] < 0
        assert "diff vs SC" in format_why(dsi.why_report(protocol="V"), diff=diff)


class TestTxnMechanics:
    def test_txn_ids_deterministic_across_reruns(self):
        """Same config + workload => same txn ids, which is what makes
        'dsi-sim trace --txn <id from why>' replay the right one."""
        first, _ = causal_run("em3d", "base")
        second, _ = causal_run("em3d", "base")
        pick = first.top_transactions(3)
        for txn in pick:
            again = second.txn(txn.txn_id)
            assert again is not None
            assert (again.node, again.block, again.open, again.done) == (
                txn.node, txn.block, txn.open, txn.done
            )

    def test_keep_txns_survive_retention_cap(self):
        probe, _ = causal_run("em3d", "base")
        target = probe.top_transactions(1)[0].txn_id
        capped, _ = causal_run(
            "em3d", "base", max_txns=0, keep_txns=(target,)
        )
        assert capped.txns_dropped > 0
        kept = capped.txn(target)
        assert kept is not None and kept.txn_id == target

    def test_tile_telescopes_exactly(self):
        txn = TxnTrace(0, 1, 42, "read miss", 100, True, False, False)
        txn.req_send = 103
        txn.req_recv = 203
        txn.dir_begin = 210
        txn.inval_wait = 30
        txn.grant_send = 240
        txn.grant_recv = 340
        txn.done = 343
        segments = txn.tile()
        assert sum(cycles for _, cycles in segments) == 243
        assert segments == [
            ("miss-data", 3),
            ("network-transit", 100),
            ("directory-occupancy", 7),
            ("inv-roundtrip", 30),
            ("network-transit", 100),
            ("miss-data", 3),
        ]
        assert all(label in MISS_CATEGORIES for label, _ in segments)

    def test_tile_with_missing_marks_still_covers_window(self):
        txn = TxnTrace(1, 0, 7, "write miss", 50, True, False, False)
        txn.done = 90  # no other marks recorded at all
        assert txn.tile() == [("miss-data", 40)]

    def test_renewal_window_is_all_lease_reload(self):
        txn = TxnTrace(2, 0, 7, "read miss", 10, True, False, True)
        txn.req_send = 12
        txn.done = 110
        assert txn.tile() == [("lease-expiry-reload", 100)]

"""Extensions beyond the paper's evaluated design points:

* cache-side identification (§3.1 sketch): the cache marks its own fills
  from an invalidation-count history;
* tear-off blocks under sequential consistency (§3.3 discussion): at most
  one untracked copy per cache, dropped at the next miss (Scheurich).
"""

import pytest

from conftest import seg_addr, tiny_config
from repro.config import Consistency, IdentifyScheme, SystemConfig
from repro.core.identify import InvalidationHistory
from repro.errors import ConfigError
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program
from repro.workloads import producer_consumer


class TestInvalidationHistoryUnit:
    def test_threshold(self):
        history = InvalidationHistory(capacity=8, threshold=2)
        history.record(5)
        assert not history.should_mark(5)
        history.record(5)
        assert history.should_mark(5)

    def test_capacity_evicts_oldest(self):
        history = InvalidationHistory(capacity=2, threshold=1)
        history.record(1)
        history.record(2)
        history.record(3)  # evicts 1
        assert not history.should_mark(1)
        assert history.should_mark(2)
        assert history.should_mark(3)
        assert len(history) == 2

    def test_record_refreshes_recency(self):
        history = InvalidationHistory(capacity=2, threshold=1)
        history.record(1)
        history.record(2)
        history.record(1)  # 1 becomes most recent
        history.record(3)  # evicts 2
        assert history.should_mark(1)
        assert not history.should_mark(2)

    def test_counts_accumulate(self):
        history = InvalidationHistory(capacity=4, threshold=3)
        for _ in range(3):
            history.record(7)
        assert history.count(7) == 3
        assert history.should_mark(7)

    def test_validation(self):
        with pytest.raises(ConfigError):
            InvalidationHistory(capacity=0, threshold=1)


class TestCacheSideIdentification:
    def test_marks_after_repeated_invalidations(self):
        program = producer_consumer(n_procs=3, blocks=4, iterations=6)
        config = tiny_config(n_procs=3, identify=IdentifyScheme.CACHE)
        result = Machine(config, program).run()
        assert result.misses.self_invalidations > 0
        base = Machine(tiny_config(n_procs=3), program).run()
        assert result.messages.invalidations() < base.messages.invalidations()
        assert result.exec_time < base.exec_time

    def test_needs_warmup_rounds(self):
        """Threshold 2 means the first two invalidations are eaten."""
        program = producer_consumer(n_procs=3, blocks=4, iterations=2)
        config = tiny_config(n_procs=3, identify=IdentifyScheme.CACHE)
        result = Machine(config, program).run()
        # Readers' copies invalidated twice at most -> barely any marking.
        assert result.misses.si_marked_fills == 0

    def test_threshold_configurable(self):
        program = producer_consumer(n_procs=3, blocks=4, iterations=4)
        eager = Machine(
            tiny_config(n_procs=3, identify=IdentifyScheme.CACHE, cache_inval_threshold=1),
            program,
        ).run()
        lazy = Machine(
            tiny_config(n_procs=3, identify=IdentifyScheme.CACHE, cache_inval_threshold=4),
            program,
        ).run()
        assert eager.misses.si_marked_fills > lazy.misses.si_marked_fills

    def test_no_tearoff_with_cache_scheme(self):
        with pytest.raises(ConfigError):
            SystemConfig(
                consistency=Consistency.WC, identify=IdentifyScheme.CACHE, tearoff=True
            )

    def test_describe(self):
        assert SystemConfig(identify=IdentifyScheme.CACHE).describe() == "SC+DSI(C)"


class TestSCTearoff:
    def config(self, n_procs=3, **over):
        return tiny_config(
            n_procs=n_procs, identify=IdentifyScheme.VERSION, sc_tearoff=True, **over
        )

    def test_requires_sc_and_dsi(self):
        with pytest.raises(ConfigError):
            SystemConfig(sc_tearoff=True, consistency=Consistency.WC)
        with pytest.raises(ConfigError):
            SystemConfig(sc_tearoff=True)

    def test_eliminates_acks_under_sc(self):
        program = producer_consumer(n_procs=3, blocks=8, iterations=6)
        base = Machine(tiny_config(n_procs=3), program).run()
        tear = Machine(self.config(), program).run()
        assert tear.misses.tearoff_fills > 0
        assert tear.messages.invalidations() < base.messages.invalidations()
        assert tear.messages.total_network() < base.messages.total_network()

    def test_at_most_one_tearoff_copy(self):
        """The single-copy rule: after filling several tear-off blocks,
        at most one valid tear-off frame exists in any cache."""
        program = producer_consumer(n_procs=3, blocks=8, iterations=4)
        machine = Machine(self.config(), program)
        result = machine.run()
        assert result.misses.tearoff_fills > 0
        for controller in machine.controllers:
            tearoffs = [
                f for f in controller.cache.valid_blocks().values() if f.tearoff
            ]
            assert len(tearoffs) <= 1

    def test_miss_drops_tearoff_copy(self):
        """Scheurich's condition end-to-end: a tear-off copy dies at the
        holder's next miss."""
        builders = [TraceBuilder(), TraceBuilder()]
        block_a = seg_addr(0)
        block_b = seg_addr(0, 64)
        # Warm the version history so the second read is marked tear-off.
        builders[0].write(block_a).barrier(0)
        builders[1].read(block_a).barrier(0)
        builders[0].write(block_a).barrier(1)
        builders[1].barrier(1)
        builders[0].barrier(2)
        builders[1].read(block_a).barrier(2)  # tear-off fill
        builders[0].barrier(3)
        builders[1].read(block_b).barrier(3)  # a miss: must drop block_a
        program = Program("scheurich", [b.build() for b in builders])
        machine = Machine(self.config(n_procs=2), program)
        result = machine.run()
        assert result.misses.tearoff_fills >= 1
        frame = machine.controllers[1].cache.lookup(block_a >> 5, touch=False)
        assert frame is None  # dropped by the miss on block_b

    def test_sc_semantics_preserved(self):
        """The strict monitor stays quiet across a racy run."""
        program = producer_consumer(n_procs=3, blocks=6, iterations=5)
        Machine(self.config(), program).run()  # monitor raises on violation

"""Structural tests for the declarative transition tables.

The tables are validated at construction (uniqueness, deterministic
guard chains, pure error rows); these tests build every variant x bug
combination, check the structural invariants hold, and pin down the
variant-conditional rows that the state-space checker's coverage pass
relies on (a row misclassified NORMAL fails CI as unreachable, a row
misclassified DEFENSIVE silently loses coverage).
"""

import dataclasses

import pytest

from repro.coherence.cache_table import build_cache_table, cache_table
from repro.coherence.dir_table import build_dir_table, dir_table
from repro.coherence.events import (
    CacheEvent,
    CacheState,
    DirEvent,
    DirState,
)
from repro.coherence.table import DEFENSIVE, ERROR, MULTIBLOCK, NORMAL
from repro.coherence.variants import Bugs, NO_BUGS, enumerate_variants
from repro.config import IdentifyScheme

ALL_VARIANTS = tuple(enumerate_variants(False)) + tuple(enumerate_variants(True))
ALL_BUGS = (
    NO_BUGS,
    Bugs(fifo_overflow_ignores_mshr=True),
    Bugs(notification_consumed_as_ack=True),
)


def by_label(label):
    for variant in ALL_VARIANTS:
        if variant.describe() == label:
            return variant
    raise AssertionError(f"no variant labelled {label!r}")


def find_rows(table, state, event):
    return [t for t in table.transitions if t.state is state and t.event is event]


def the_row(table, state, event, guards=()):
    (row,) = [t for t in find_rows(table, state, event) if t.guards == tuple(guards)]
    return row


class TestConstruction:
    @pytest.mark.parametrize("bugs", ALL_BUGS, ids=lambda b: repr(b))
    def test_every_variant_builds_and_validates(self, bugs):
        for variant in ALL_VARIANTS:
            cache = build_cache_table(variant, bugs)
            directory = build_dir_table(variant, bugs)
            # validate() ran in the constructor; spot-check the index too.
            assert cache.transitions and directory.transitions
            cache.validate()
            directory.validate()

    def test_tables_are_memoized(self):
        variant = ALL_VARIANTS[0]
        assert cache_table(variant) is cache_table(variant)
        assert dir_table(variant) is dir_table(variant)
        assert cache_table(variant, ALL_BUGS[1]) is not cache_table(variant)

    def test_every_row_documented(self):
        for variant in ALL_VARIANTS:
            for table in (cache_table(variant), dir_table(variant)):
                for row in table.transitions:
                    assert row.doc or row.error, f"undocumented row {row!r}"

    def test_kinds_are_known(self):
        kinds = {NORMAL, MULTIBLOCK, DEFENSIVE, ERROR}
        for variant in ALL_VARIANTS:
            for table in (cache_table(variant), dir_table(variant)):
                assert {row.kind for row in table.transitions} <= kinds

    def test_error_rows_have_error_kind(self):
        for variant in ALL_VARIANTS:
            for table in (cache_table(variant), dir_table(variant)):
                for row in table.transitions:
                    assert (row.kind == ERROR) == (row.error is not None)


class TestVariantConditionalRows:
    """Rows whose presence or kind depends on the variant knobs."""

    def test_sc_has_no_wc_only_states(self):
        table = cache_table(by_label("SC"))
        for row in table.transitions:
            if row.state is CacheState.E_A:
                assert row.error is not None
        dtable = dir_table(by_label("SC"))
        assert not find_rows(dtable, DirState.B_WCP, DirEvent.LAST_ACK)

    def test_tearoff_states_only_with_tearoff(self):
        plain = cache_table(by_label("SC+DSI(V)"))
        assert not [t for t in plain.transitions if t.state is CacheState.T]
        tearoff = cache_table(by_label("WC+DSI(V)+TO"))
        assert [t for t in tearoff.transitions if t.state is CacheState.T]

    def test_load_waiter_rows_defensive_under_sc(self):
        """SC stores block the processor, so nothing can load under an
        outstanding write; under WC the rows are required coverage."""
        sc = cache_table(by_label("SC"))
        wc = cache_table(by_label("WC"))
        for state in (CacheState.IM_D, CacheState.SM_WI):
            assert the_row(sc, state, CacheEvent.LOAD).kind == DEFENSIVE
            assert the_row(wc, state, CacheEvent.LOAD).kind == NORMAL

    def test_marked_shared_sync_defensive_with_tearoff(self):
        """With tear-off, marked read fills land in T, so a marked
        tracked S copy never forms."""
        plain = cache_table(by_label("SC+DSI(V)"))
        tearoff = cache_table(by_label("SC+DSI(V)+TO"))
        assert the_row(plain, CacheState.S, CacheEvent.SI_SYNC).kind == NORMAL
        assert the_row(tearoff, CacheState.S, CacheEvent.SI_SYNC).kind == DEFENSIVE

    def test_owner_re_request_rows_defensive(self):
        """Per-pair FIFO delivers a WB before any later request from the
        same node, so the late-writeback wait (B_WB) never engages."""
        for label in ("SC", "WC+DSI(V)+FIFO+TO+MIG"):
            table = dir_table(by_label(label))
            for row in table.transitions:
                if "owner_is_requester" in row.guards:
                    assert row.kind == DEFENSIVE, row
                if row.state is DirState.B_WB and row.error is None:
                    assert row.kind == DEFENSIVE, row

    def test_upgrade_defer_kind_tracks_consistency(self):
        """B_WRITE can defer an UPGRADE only under SC (under WC,
        shared-state writes run through B_WCP instead)."""
        sc = dir_table(by_label("SC"))
        wc = dir_table(by_label("WC"))
        assert the_row(sc, DirState.B_WRITE, DirEvent.UPGRADE).kind == NORMAL
        assert the_row(wc, DirState.B_WRITE, DirEvent.UPGRADE).kind == DEFENSIVE
        assert the_row(sc, DirState.B_READ, DirEvent.UPGRADE).kind == DEFENSIVE
        assert the_row(wc, DirState.B_WCP, DirEvent.UPGRADE).kind == NORMAL

    def test_states_scheme_makes_tracked_regrant_defensive(self):
        """Under the additional-states scheme a post-reclaim read of a
        just-written block always classifies as a tear-off grant."""
        states = dir_table(by_label("WC+DSI(S)+TO"))
        version = dir_table(by_label("WC+DSI(V)+TO"))
        assert the_row(states, DirState.B_READ, DirEvent.LAST_ACK).kind \
            == DEFENSIVE
        assert the_row(version, DirState.B_READ, DirEvent.LAST_ACK).kind \
            == NORMAL

    def test_migratory_gates_clean_owner_rows(self):
        plain = dir_table(by_label("SC+DSI(V)"))
        mig = dir_table(by_label("SC+DSI(V)+MIG"))
        row = ("from_owner",)
        assert the_row(plain, DirState.EXCL, DirEvent.REPL, row).kind == DEFENSIVE
        assert the_row(mig, DirState.EXCL, DirEvent.REPL, row).kind == NORMAL

    def test_bug_rows_replace_fix_rows(self):
        variant = by_label("SC+DSI(V)+FIFO")
        fixed = cache_table(variant)
        buggy = cache_table(variant, Bugs(fifo_overflow_ignores_mshr=True))
        fixed_row = the_row(fixed, CacheState.IM_D, CacheEvent.SI_OVERFLOW)
        buggy_row = the_row(buggy, CacheState.IM_D, CacheEvent.SI_OVERFLOW)
        assert not fixed_row.actions and fixed_row.next_state is None
        assert buggy_row.actions and buggy_row.next_state is CacheState.I

    def test_notification_as_ack_rows_only_with_bug(self):
        variant = by_label("SC+DSI(V)+TO")
        fixed = dir_table(variant)
        buggy = dir_table(variant, Bugs(notification_consumed_as_ack=True))

        def pending_rows(table):
            return [
                t for t in table.transitions
                if t.guards == ("from_pending",)
                and t.event in (DirEvent.WB, DirEvent.REPL, DirEvent.SI_NOTIFY)
            ]

        assert not pending_rows(fixed)
        assert pending_rows(buggy)


class TestDecide:
    def test_guard_chain_first_match(self):
        table = cache_table(by_label("SC"))

        class Ctx:
            dirty = True

        row = table.decide(CacheState.E, CacheEvent.EVICT, Ctx())
        assert row.guards == ("dirty",)
        Ctx.dirty = False
        row = table.decide(CacheState.E, CacheEvent.EVICT, Ctx())
        assert row.guards == ()

    def test_variant_row_sets_differ(self):
        """Knobs add/remove whole rows rather than branching in actions."""
        keys = {}
        for variant in ALL_VARIANTS:
            keys.setdefault(
                (frozenset(t.key for t in cache_table(variant).transitions),
                 frozenset(t.key for t in dir_table(variant).transitions)),
                variant,
            )
        # Far fewer distinct shapes than variants, but more than a handful:
        # the knobs genuinely reshape the tables.
        assert 8 <= len(keys) <= len(ALL_VARIANTS)


class TestBugsDataclass:
    def test_bug_knobs_are_boolean_and_default_off(self):
        for field in dataclasses.fields(Bugs):
            assert field.type in ("bool", bool)
            assert getattr(NO_BUGS, field.name) is False

    def test_variant_labels_unique(self):
        labels = [v.describe() for v in ALL_VARIANTS]
        assert len(labels) == len(set(labels)) == 44

    def test_identify_schemes_enumerated(self):
        schemes = {v.identify for v in ALL_VARIANTS}
        assert schemes == set(IdentifyScheme)

"""Unit tests for the interconnect: timing, ordering, counters, topology."""


from repro.config import SystemConfig
from repro.engine.simulator import Simulator
from repro.network.message import DIR_BOUND, Message, MsgKind
from repro.network.network import Network
from repro.network.topology import MeshNetwork

KB = 1024


class Sink:
    def __init__(self):
        self.received = []

    def receive(self, msg):
        self.received.append(msg)


def make_network(n=4, network_cls=Network, **config_overrides):
    sim = Simulator()
    config = SystemConfig(n_processors=n, **config_overrides)
    net = network_cls(sim, config)
    caches = [Sink() for _ in range(n)]
    dirs = [Sink() for _ in range(n)]
    for node in range(n):
        net.attach(node, caches[node], dirs[node])
    return sim, net, caches, dirs


class TestRouting:
    def test_dir_bound_kinds(self):
        assert MsgKind.GETS in DIR_BOUND
        assert MsgKind.WB in DIR_BOUND
        assert MsgKind.DATA not in DIR_BOUND
        assert MsgKind.INV not in DIR_BOUND

    def test_requests_go_to_directory(self):
        sim, net, caches, dirs = make_network()
        net.send(Message(MsgKind.GETS, 5, src=0, dst=2))
        sim.run()
        assert len(dirs[2].received) == 1
        assert not caches[2].received

    def test_responses_go_to_cache(self):
        sim, net, caches, dirs = make_network()
        net.send(Message(MsgKind.DATA, 5, src=2, dst=0, carries_data=True))
        sim.run()
        assert len(caches[0].received) == 1
        assert not dirs[0].received


class TestTiming:
    def test_remote_latency(self):
        sim, net, caches, dirs = make_network()
        times = []
        dirs[1].receive = lambda msg: times.append(sim.now)
        net.send(Message(MsgKind.GETS, 1, src=0, dst=1))
        sim.run()
        # injection (3) + network latency (100)
        assert times == [103]

    def test_data_injection_overhead(self):
        sim, net, caches, dirs = make_network()
        times = []
        caches[1].receive = lambda msg: times.append(sim.now)
        net.send(Message(MsgKind.DATA, 1, src=0, dst=1, carries_data=True))
        sim.run()
        # injection (3 + 8) + latency (100)
        assert times == [111]

    def test_local_message_short_circuit(self):
        sim, net, caches, dirs = make_network()
        times = []
        dirs[0].receive = lambda msg: times.append(sim.now)
        net.send(Message(MsgKind.GETS, 1, src=0, dst=0))
        sim.run()
        assert times == [1]  # local_latency only

    def test_injection_contention_serialises(self):
        sim, net, caches, dirs = make_network()
        times = []
        dirs[1].receive = lambda msg: times.append(sim.now)
        for _ in range(3):
            net.send(Message(MsgKind.GETS, 1, src=0, dst=1))
        sim.run()
        assert times == [103, 106, 109]  # NI serialises at 3 cycles each

    def test_fifo_ordering_per_pair(self):
        sim, net, caches, dirs = make_network()
        order = []
        dirs[1].receive = lambda msg: order.append(msg.block)
        net.send(Message(MsgKind.WB, 1, src=0, dst=1, carries_data=True))  # 11-cycle inject
        net.send(Message(MsgKind.GETS, 2, src=0, dst=1))  # 3-cycle inject
        sim.run()
        assert order == [1, 2]  # still FIFO despite unequal injection cost

    def test_on_injected_callback(self):
        sim, net, caches, dirs = make_network()
        injected_at = []
        net.send(
            Message(MsgKind.GETS, 1, src=0, dst=1),
            on_injected=lambda: injected_at.append(sim.now),
        )
        sim.run()
        assert injected_at == [3]

    def test_on_injected_local_immediate(self):
        sim, net, caches, dirs = make_network()
        injected_at = []
        net.send(
            Message(MsgKind.GETS, 1, src=0, dst=0),
            on_injected=lambda: injected_at.append(sim.now),
        )
        assert injected_at == [0]

    def test_configurable_latency(self):
        sim, net, caches, dirs = make_network(network_latency=1000)
        times = []
        dirs[1].receive = lambda msg: times.append(sim.now)
        net.send(Message(MsgKind.GETS, 1, src=0, dst=1))
        sim.run()
        assert times == [1003]


class TestCounters:
    def test_network_vs_local(self):
        sim, net, caches, dirs = make_network()
        net.send(Message(MsgKind.GETS, 1, src=0, dst=1))
        net.send(Message(MsgKind.GETS, 2, src=0, dst=0))
        sim.run()
        assert net.counters.network["GETS"] == 1
        assert net.counters.local["GETS"] == 1
        assert net.counters.total_network() == 1

    def test_invalidation_count(self):
        sim, net, caches, dirs = make_network()
        net.send(Message(MsgKind.INV, 1, src=0, dst=1))
        net.send(Message(MsgKind.INV_ACK, 1, src=1, dst=0))
        sim.run()
        assert net.counters.invalidations() == 1
        assert net.counters.acknowledgments() == 1

    def test_data_blocks_sent(self):
        sim, net, caches, dirs = make_network()
        net.send(Message(MsgKind.DATA, 1, src=0, dst=1, carries_data=True))
        net.send(Message(MsgKind.GETS, 1, src=0, dst=1))
        sim.run()
        assert net.counters.data_blocks_sent == 1

    def test_in_flight_diagnostic(self):
        sim, net, caches, dirs = make_network()
        net.send(Message(MsgKind.GETS, 1, src=0, dst=1))
        assert net.deadlock_diagnostic() is not None
        sim.run()
        assert net.deadlock_diagnostic() is None


class TestMesh:
    def test_hop_distance(self):
        sim, net, caches, dirs = make_network(n=16, network_cls=MeshNetwork)
        assert net.hops(0, 0) == 0
        assert net.hops(0, 1) == 1
        assert net.hops(0, 15) == net.hops(15, 0)

    def test_latency_grows_with_distance(self):
        sim, net, caches, dirs = make_network(n=16, network_cls=MeshNetwork)
        assert net.latency(0, 1) < net.latency(0, 15)

    def test_delivery(self):
        sim, net, caches, dirs = make_network(n=16, network_cls=MeshNetwork)
        net.send(Message(MsgKind.GETS, 1, src=0, dst=15))
        sim.run()
        assert len(dirs[15].received) == 1

    def test_message_repr(self):
        msg = Message(MsgKind.DATA, 7, src=0, dst=1, si=True, tearoff=True)
        text = repr(msg)
        assert "DATA" in text and "si" in text and "tearoff" in text

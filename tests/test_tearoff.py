"""Tear-off accounting (core/tearoff.py) and the migratory-read
directory path (BEGIN_MIGRATORY_TXN and its acknowledgment handling),
driven through the same fake network as test_directory.py."""

from repro.config import Consistency, IdentifyScheme, SystemConfig
from repro.core.identify import make_policy
from repro.core.tearoff import TearoffTracker
from repro.directory.controller import DirectoryController
from repro.directory.state import DIR_EXCLUSIVE, DIR_IDLE, DIR_SHARED
from repro.engine.simulator import Simulator
from repro.network.message import Message, MsgKind


class FakeNetwork:
    def __init__(self):
        self.sent = []

    def send(self, msg, on_injected=None):
        self.sent.append(msg)
        if on_injected is not None:
            on_injected()

    def of_kind(self, kind):
        return [m for m in self.sent if m.kind is kind]

    def last(self):
        return self.sent[-1]


def make_dir(consistency=Consistency.SC, identify=IdentifyScheme.NONE, **over):
    sim = Simulator()
    config = SystemConfig(
        n_processors=4, consistency=consistency, identify=identify, **over
    )
    network = FakeNetwork()
    controller = DirectoryController(sim, config, 0, network, make_policy(config))
    return sim, controller, network


def deliver(sim, ctrl, msg):
    ctrl.receive(msg)
    sim.run()


def gets(block, src, version=None):
    return Message(MsgKind.GETS, block, src=src, dst=0, version=version)


def upgrade(block, src):
    return Message(MsgKind.UPGRADE, block, src=src, dst=0)


def inv_ack(block, src, data=None):
    if data is None:
        return Message(MsgKind.INV_ACK, block, src=src, dst=0)
    return Message(
        MsgKind.INV_ACK_DATA, block, src=src, dst=0,
        data=data, dirty=True, carries_data=True,
    )


def wb(block, src, data):
    return Message(
        MsgKind.WB, block, src=src, dst=0, data=data, dirty=True,
        carries_data=True,
    )


class TestTearoffTracker:
    def test_initial_state(self):
        tracker = TearoffTracker()
        assert tracker.count == 0 and not tracker.multi

    def test_one_grant_does_not_set_multi(self):
        tracker = TearoffTracker()
        tracker.on_grant()
        assert tracker.count == 1 and not tracker.multi

    def test_second_grant_sets_multi(self):
        tracker = TearoffTracker()
        tracker.on_grant()
        tracker.on_grant()
        assert tracker.count == 2 and tracker.multi

    def test_multi_sticks_beyond_two(self):
        tracker = TearoffTracker()
        for _ in range(5):
            tracker.on_grant()
        assert tracker.count == 5 and tracker.multi

    def test_exclusive_grant_resets_history(self):
        tracker = TearoffTracker()
        tracker.on_grant()
        tracker.on_grant()
        tracker.on_exclusive_grant()
        assert tracker.count == 0 and not tracker.multi
        # A single new grant after the reset does not resurrect the bit.
        tracker.on_grant()
        assert not tracker.multi


class TestTearoffGrants:
    """Directory-level tear-off: the stale-versioned reader's copy is
    handed out without entering the full map."""

    def make_tearoff_dir(self):
        return make_dir(
            consistency=Consistency.WC,
            identify=IdentifyScheme.VERSION,
            tearoff=True,
        )

    def stale_version(self, ctrl, block):
        return (ctrl.entries[block].version - 1) & ctrl.config.version_mask

    def test_tearoff_reader_not_recorded(self):
        sim, ctrl, net = self.make_tearoff_dir()
        deliver(sim, ctrl, gets(7, src=1))  # creates the entry
        stale = self.stale_version(ctrl, 7)
        deliver(sim, ctrl, gets(7, src=2, version=stale))
        grant = net.last()
        assert grant.kind is MsgKind.DATA and grant.dst == 2
        assert grant.tearoff and grant.si
        entry = ctrl.entries[7]
        assert not entry.has_sharer(2)
        assert entry.tearoff.count == 1 and not entry.tearoff.multi

    def test_two_tearoffs_set_the_multi_bit(self):
        sim, ctrl, net = self.make_tearoff_dir()
        deliver(sim, ctrl, gets(7, src=1))
        stale = self.stale_version(ctrl, 7)
        deliver(sim, ctrl, gets(7, src=2, version=stale))
        deliver(sim, ctrl, gets(7, src=3, version=stale))
        assert ctrl.entries[7].tearoff.multi

    def test_current_version_reader_is_tracked(self):
        sim, ctrl, net = self.make_tearoff_dir()
        deliver(sim, ctrl, gets(7, src=1))
        current = ctrl.entries[7].version
        deliver(sim, ctrl, gets(7, src=2, version=current))
        grant = net.last()
        assert not grant.tearoff and not grant.si
        assert ctrl.entries[7].has_sharer(2)


class TestMigratoryReadPath:
    """A read of a detected-migratory block is served with an exclusive
    copy through a write-kind transaction (BEGIN_MIGRATORY_TXN)."""

    def detected(self):
        """Run the Cox-Fowler detection: 1 writes, 2 reads then writes."""
        sim, ctrl, net = make_dir(migratory=True)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, upgrade(7, src=1))  # last_writer=1, no detection
        deliver(sim, ctrl, gets(7, src=2))
        deliver(sim, ctrl, inv_ack(7, src=1, data=11))
        deliver(sim, ctrl, upgrade(7, src=2))  # sole sharer, other writer
        entry = ctrl.entries[7]
        assert entry.migratory and entry.state == DIR_EXCLUSIVE
        assert entry.owner == 2
        net.sent.clear()
        return sim, ctrl, net

    def test_migratory_read_invalidates_owner_then_grants_exclusive(self):
        sim, ctrl, net = self.detected()
        deliver(sim, ctrl, gets(7, src=3))
        (inv,) = net.of_kind(MsgKind.INV)
        assert inv.dst == 2
        assert ctrl.entries[7].busy
        deliver(sim, ctrl, inv_ack(7, src=2, data=33))
        grant = net.last()
        assert grant.kind is MsgKind.DATA_EX and grant.dst == 3
        assert grant.data == 33
        entry = ctrl.entries[7]
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 3
        assert entry.migratory  # the dirty ack confirms the prediction

    def test_clean_ack_resets_the_prediction(self):
        """The previous owner never wrote its exclusive copy: the block
        is not migratory after all."""
        sim, ctrl, net = self.detected()
        deliver(sim, ctrl, gets(7, src=3))
        deliver(sim, ctrl, inv_ack(7, src=2))  # clean: no data
        entry = ctrl.entries[7]
        assert not entry.migratory
        # The in-flight grant still completes exclusively...
        assert net.last().kind is MsgKind.DATA_EX
        assert entry.owner == 3
        # ...but the next reader goes down the ordinary B_READ path.
        net.sent.clear()
        deliver(sim, ctrl, gets(7, src=1))
        (inv,) = net.of_kind(MsgKind.INV)
        assert inv.dst == 3
        deliver(sim, ctrl, inv_ack(7, src=3, data=44))
        assert net.last().kind is MsgKind.DATA
        assert ctrl.entries[7].state == DIR_SHARED

    def test_idle_migratory_read_grants_exclusive_directly(self):
        """After the owner writes back, the prediction persists and an
        idle-state read is granted exclusively with no invalidation."""
        sim, ctrl, net = self.detected()
        deliver(sim, ctrl, wb(7, src=2, data=55))
        entry = ctrl.entries[7]
        assert entry.state == DIR_IDLE and entry.migratory
        net.sent.clear()
        deliver(sim, ctrl, gets(7, src=3))
        assert not net.of_kind(MsgKind.INV)
        grant = net.last()
        assert grant.kind is MsgKind.DATA_EX and grant.data == 55
        assert ctrl.entries[7].owner == 3

    def test_non_migratory_read_still_shares(self):
        sim, ctrl, net = make_dir(migratory=True)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        entry = ctrl.entries[7]
        assert entry.state == DIR_SHARED
        assert entry.sharer_list() == [1, 2]
        assert all(m.kind is MsgKind.DATA for m in net.sent)

"""Workload generators: structure, determinism, and the sharing properties
each one is supposed to exhibit."""

import pytest

from repro.config import IdentifyScheme, SystemConfig
from repro.system import Machine
from repro.trace.ops import OP_LOCK, OP_READ, OP_WRITE
from repro.workloads import (
    CATALOG,
    barnes,
    by_name,
    em3d,
    false_sharing,
    migratory,
    ocean,
    producer_consumer,
    read_mostly,
    sparse,
    tomcatv,
)
from repro.workloads.base import WorkloadContext

KB = 1024

QUICK = {
    "barnes": dict(n_procs=4, bodies_per_proc=4, cells=16, iterations=1),
    "em3d": dict(n_procs=4, nodes_per_proc=16, iterations=1, private_words=64),
    "ocean": dict(n_procs=4, cols=16, days=1, sweeps_per_day=2),
    "sparse": dict(n_procs=4, x_words=128, iterations=1, a_words_per_proc=64),
    "tomcatv": dict(n_procs=4, rows_per_proc=2, cols=32, iterations=1),
}


class TestCatalog:
    def test_all_paper_workloads_present(self):
        assert set(CATALOG) == {"barnes", "em3d", "ocean", "sparse", "tomcatv"}

    def test_by_name(self):
        program = by_name("em3d", **QUICK["em3d"])
        assert program.name == "em3d"

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("nonesuch")


@pytest.mark.parametrize("name", sorted(CATALOG))
class TestEveryWorkload:
    def test_builds_and_validates(self, name):
        program = by_name(name, **QUICK[name])
        assert program.n_procs == 4
        assert program.total_ops() > 0

    def test_deterministic(self, name):
        import numpy as np

        first = by_name(name, **QUICK[name])
        second = by_name(name, **QUICK[name])
        for a, b in zip(first.traces, second.traces):
            assert np.array_equal(a.kinds, b.kinds)
            assert np.array_equal(a.addrs, b.addrs)
            assert np.array_equal(a.gaps, b.gaps)

    def test_seed_changes_trace(self, name):
        import numpy as np

        if name not in ("barnes", "em3d"):
            pytest.skip("regular access pattern: generator does not use the RNG")
        first = by_name(name, **QUICK[name])
        second = by_name(name, **dict(QUICK[name], seed=999))
        different = any(
            len(a) != len(b) or not np.array_equal(a.addrs, b.addrs)
            for a, b in zip(first.traces, second.traces)
        )
        assert different

    def test_runs_clean_with_invariants(self, name):
        program = by_name(name, **QUICK[name])
        config = SystemConfig(
            n_processors=4, cache_size=8 * KB, check_invariants=True, quantum=1
        )
        result = Machine(config, program).run()
        assert result.exec_time > 0

    def test_has_shared_accesses(self, name):
        """Some block must be touched by more than one processor."""
        program = by_name(name, **QUICK[name])
        touched = {}
        for proc, trace in enumerate(program.traces):
            for kind, addr in zip(trace.kinds, trace.addrs):
                if kind in (OP_READ, OP_WRITE):
                    touched.setdefault(int(addr) >> 5, set()).add(proc)
        assert any(len(procs) > 1 for procs in touched.values())


class TestWorkloadProperties:
    def test_em3d_writes_are_home_local(self):
        """EM3D's defining property: all modifications to shared data
        happen at the home node (local allocation)."""
        program = em3d(**QUICK["em3d"])
        assert program.home == "segment"
        for proc, trace in enumerate(program.traces):
            for kind, addr in zip(trace.kinds, trace.addrs):
                if kind == OP_WRITE:
                    assert int(addr) >> 22 == proc

    def test_sparse_uses_round_robin_homes(self):
        program = sparse(**QUICK["sparse"])
        assert program.home == "round-robin"

    def test_sparse_every_proc_sweeps_whole_vector(self):
        program = sparse(**QUICK["sparse"])
        x_words = program.meta["x_words"]
        # Every processor reads blocks of every chunk.
        for proc, trace in enumerate(program.traces):
            read_segments = {
                int(addr) >> 22
                for kind, addr in zip(trace.kinds, trace.addrs)
                if kind == OP_READ
            }
            assert len(read_segments) == program.n_procs

    def test_barnes_is_imbalanced(self):
        program = barnes(**QUICK["barnes"], imbalance=1.0)
        op_counts = [len(trace) for trace in program.traces]
        assert max(op_counts) > 1.5 * min(op_counts)

    def test_barnes_has_locks(self):
        program = barnes(**QUICK["barnes"])
        lock_ops = sum(int((t.kinds == OP_LOCK).sum()) for t in program.traces)
        assert lock_ops > 0

    def test_ocean_barrier_per_sweep(self):
        args = QUICK["ocean"]
        program = ocean(**args)
        expected = args["days"] * args["sweeps_per_day"] + 1  # +1 initial
        assert program.traces[0].barrier_count() == expected

    def test_tomcatv_working_set_between_cache_sizes(self):
        program = tomcatv(n_procs=4)  # full-scale geometry
        wss = program.meta["wss_bytes_per_proc"]
        assert 16 * KB < wss < 128 * KB

    def test_tomcatv_mostly_private(self):
        program = tomcatv(**QUICK["tomcatv"])
        cross = 0
        total = 0
        for proc, trace in enumerate(program.traces):
            for kind, addr in zip(trace.kinds, trace.addrs):
                if kind in (OP_READ, OP_WRITE):
                    total += 1
                    if int(addr) >> 22 != proc:
                        cross += 1
        assert cross / total < 0.1


class TestMicroPatterns:
    def test_producer_consumer_dsi_wins(self):
        program = producer_consumer(n_procs=3)
        config = SystemConfig(n_processors=3, cache_size=8 * KB, quantum=1)
        base = Machine(config, program).run()
        dsi = Machine(config.with_(identify=IdentifyScheme.STATES), program).run()
        assert dsi.messages.invalidations() < base.messages.invalidations()
        assert dsi.exec_time < base.exec_time

    def test_migratory_runs(self):
        program = migratory(n_procs=3)
        config = SystemConfig(n_processors=3, cache_size=8 * KB, quantum=1, check_invariants=True)
        result = Machine(config, program).run()
        assert result.misses.explicit_invalidations > 0

    def test_read_mostly_builds(self):
        program = read_mostly(n_procs=3)
        config = SystemConfig(n_processors=3, cache_size=8 * KB, quantum=1)
        result = Machine(config, program).run()
        assert result.misses.read_hits > 0

    def test_false_sharing_ping_pongs(self):
        program = false_sharing(n_procs=3)
        config = SystemConfig(n_processors=3, cache_size=8 * KB, quantum=1)
        result = Machine(config, program).run()
        # One shared block, three writers: constant invalidation traffic.
        assert result.misses.explicit_invalidations > program.meta["iterations"]


class TestWorkloadContext:
    def test_locks_rotate_homes(self):
        ctx = WorkloadContext("t", 4)
        homes = {ctx.new_lock() >> 22 for _ in range(4)}
        assert len(homes) == 4

    def test_lock_in_own_block(self):
        ctx = WorkloadContext("t", 2)
        lock_a = ctx.new_lock()
        lock_b = ctx.new_lock()
        assert lock_a >> 5 != lock_b >> 5

    def test_barrier_all_balanced(self):
        ctx = WorkloadContext("t", 3)
        ctx.barrier_all()
        ctx.barrier_all()
        program = ctx.program()
        assert all(t.barrier_count() == 2 for t in program.traces)

    def test_stream_private_touches_blocks(self):
        ctx = WorkloadContext("t", 1)
        base = ctx.alloc_words(0, 64)
        ctx.stream_private(0, base, 64, stride_words=8)
        trace = ctx.builders[0].build()
        assert len(trace) == 8

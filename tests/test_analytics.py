"""Coherence analytics: sharing-pattern classification, DSI accuracy,
and the runtime accounting audit.

Classifier thresholds are validated two ways: unit tests on hand-built
access streams with known shapes, and end-to-end runs of the synthetic
workloads whose names promise a pattern (``migratory`` must classify as
migratory, ``producer_consumer`` as producer-consumer).
"""

import json

import pytest

from repro.errors import AuditError
from repro.harness.configs import paper_config
from repro.network.message import Message, MsgKind
from repro.obs import AnalyticsInstrument, MessageLedger, SharingClassifier, audit_coherence
from repro.obs.analytics import PATTERNS, REPORT_SCHEMA_VERSION
from repro.system import Machine
from repro.workloads import by_name

BLOCK = 7


def feed(stream, classifier=None):
    """Feed ``(time, node, kind)`` accesses for one block; returns the
    classifier and the block's life."""
    classifier = classifier or SharingClassifier()
    for time, node, kind in stream:
        classifier.on_access(time, BLOCK, node, kind)
    return classifier, classifier.blocks[BLOCK]


class TestClassifier:
    def test_private(self):
        classifier, life = feed([(t, 0, "read") for t in range(10)] + [(20, 0, "write")])
        assert classifier.classify(life) == "private"

    def test_read_mostly_no_writes(self):
        classifier, life = feed([(t, t % 3, "read") for t in range(12)])
        assert classifier.classify(life) == "read-mostly"

    def test_read_mostly_by_ratio(self):
        stream = [(0, 0, "write")] + [(t, 1 + t % 2, "read") for t in range(1, 17)]
        stream += [(20, 0, "write")]
        classifier, life = feed(stream)
        assert life.reads / life.writes >= classifier.read_mostly_ratio
        assert classifier.classify(life) == "read-mostly"

    def test_migratory_read_modify_write_rotation(self):
        stream = []
        t = 0
        for _round in range(4):
            for node in range(3):
                stream.append((t, node, "read"))
                stream.append((t + 1, node, "write"))
                t += 2
        classifier, life = feed(stream)
        assert classifier.classify(life) == "migratory"

    def test_producer_consumer_stable_reader_set(self):
        stream = []
        t = 0
        for _round in range(5):
            stream.append((t, 0, "write"))
            for reader in (1, 2, 3):
                stream.append((t + 1 + reader, reader, "read"))
            t += 10
        classifier, life = feed(stream)
        assert classifier.classify(life) == "producer-consumer"

    def test_widely_shared_alternating_writers(self):
        stream = []
        t = 0
        for round_ in range(6):
            stream.append((t, round_ % 2, "write"))
            for reader in (2, 3, 4):
                stream.append((t + 1 + reader, reader, "read"))
            t += 10
        classifier, life = feed(stream)
        assert classifier.classify(life) == "widely-shared"

    def test_upgrade_counts_as_write(self):
        classifier, life = feed([(0, 0, "read"), (1, 0, "upgrade")])
        assert life.writes == 1 and life.reads == 1

    def test_event_cap_counts_dropped(self):
        classifier = SharingClassifier(max_events_per_block=2)
        classifier, life = feed(
            [(t, t % 2, "read") for t in range(5)], classifier=classifier
        )
        assert len(life.accesses) == 2
        assert life.dropped == 3
        assert classifier.report()["events_dropped"] == 3


class TestDsiAccuracy:
    def test_correct_and_mispredicted(self):
        classifier, life = feed(
            [(10, 1, "read"), (50, 2, "write"), (60, 1, "read"), (90, 2, "write")]
        )
        # SI at t=20: next access after it is the write at 50 -> correct.
        classifier.on_self_invalidate(20, BLOCK, 1)
        # SI at t=55: node 1 re-reads at 60 before the write at 90 -> wrong.
        classifier.on_self_invalidate(55, BLOCK, 1)
        assert classifier._dsi_accuracy(life) == (1, 1)
        report = classifier.report()
        assert report["dsi"]["correct"] == 1
        assert report["dsi"]["mispredicted"] == 1
        assert report["dsi"]["accuracy"] == pytest.approx(0.5)

    def test_never_referenced_again_is_correct(self):
        classifier, life = feed([(10, 1, "read")])
        classifier.on_self_invalidate(20, BLOCK, 1)
        assert classifier._dsi_accuracy(life) == (1, 0)

    def test_other_nodes_reads_do_not_mispredict(self):
        classifier, life = feed([(10, 1, "read"), (30, 2, "read"), (80, 0, "write")])
        classifier.on_self_invalidate(20, BLOCK, 1)
        assert classifier._dsi_accuracy(life) == (1, 0)

    def test_no_si_events(self):
        classifier, life = feed([(10, 1, "read")])
        assert classifier._dsi_accuracy(life) == (0, 0)
        assert classifier.report()["dsi"]["accuracy"] is None


def run_analytics(workload, protocol="SC", n_procs=4, **kwargs):
    instrument = AnalyticsInstrument(**kwargs)
    machine = Machine(
        paper_config(protocol, n_procs=n_procs),
        by_name(workload, n_procs=n_procs),
        instrument=instrument,
    )
    machine.run()
    return instrument, machine


class TestEndToEnd:
    def test_migratory_workload_classifies_migratory(self):
        instrument, _ = run_analytics("migratory")
        report = instrument.report()
        # All four data blocks migrate; only the lock block does not.
        assert report["patterns"]["migratory"] == 4

    def test_producer_consumer_workload_classifies(self):
        instrument, _ = run_analytics("producer_consumer")
        report = instrument.report()
        assert report["patterns"]["producer-consumer"] == report["blocks"] == 8

    def test_dsi_accuracy_under_version_scheme(self):
        instrument, _ = run_analytics("producer_consumer", protocol="V")
        dsi = instrument.report()["dsi"]
        assert dsi["si_marked_grants"] > 0
        assert dsi["self_invalidations"] > 0
        # Barrier-separated single-writer rounds are DSI's best case: the
        # overwhelming majority of speculations must be correct.
        assert dsi["accuracy"] is not None and dsi["accuracy"] > 0.5

    def test_report_schema(self):
        instrument, _ = run_analytics("migratory")
        report = instrument.report(top=3)
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert set(report["patterns"]) == set(PATTERNS)
        assert len(report["top_blocks"]) == 3
        assert json.loads(json.dumps(report)) == report

    def test_quiesce_audit_runs_and_passes(self):
        instrument, _ = run_analytics("migratory")
        audit = instrument.audit_result
        assert audit["messages"]["sends"] == audit["messages"]["receives"] > 0
        assert audit["coherence"]["blocks"] > 0


class TestMessageLedger:
    def _msg(self, kind, src, dst, block=1):
        return Message(kind, block, src, dst)

    def test_balanced_round_trip(self):
        ledger = MessageLedger()
        msg = self._msg(MsgKind.GETS, 0, 1)
        ledger.on_send(msg, 5)
        ledger.on_receive(msg, 15)
        assert ledger.check_quiesced() == {"sends": 1, "receives": 1}

    def test_receive_without_send_raises(self):
        ledger = MessageLedger()
        with pytest.raises(AuditError, match="received but never sent"):
            ledger.on_receive(self._msg(MsgKind.GETS, 0, 1), 5)

    def test_ack_for_unsent_inv_raises(self):
        ledger = MessageLedger()
        ack = self._msg(MsgKind.INV_ACK, 2, 1)  # node 2 answers home 1
        ledger.on_send(self._msg(MsgKind.GETS, 0, 1), 0)  # unrelated traffic
        with pytest.raises(AuditError, match="never sent"):
            ledger.on_send(ack, 5)

    def test_unreceived_send_fails_quiesce(self):
        ledger = MessageLedger()
        ledger.on_send(self._msg(MsgKind.DATA, 1, 0), 5)
        with pytest.raises(AuditError, match="sent but never received"):
            ledger.check_quiesced()

    def test_unacked_inv_fails_quiesce(self):
        ledger = MessageLedger()
        inv = self._msg(MsgKind.INV, 1, 2)
        ledger.on_send(inv, 5)
        ledger.on_receive(inv, 15)
        with pytest.raises(AuditError, match="never acknowledged"):
            ledger.check_quiesced()


class TestCoherenceAudit:
    def test_tampered_sharer_set_is_caught(self):
        from repro.directory.state import DIR_SHARED

        _, machine = run_analytics("producer_consumer", n_procs=2)
        # The machine passed its quiesce audit; now corrupt one entry's
        # sharer set to something the caches provably do not hold.
        directory = machine.directories[0]
        block, entry = sorted(directory.entries.items())[0]
        tracked = {}
        for controller in machine.controllers:
            copy = controller.cache.snapshot().get(block)
            if copy is not None and not copy[3]:  # ignore tear-off copies
                tracked[controller.node] = copy[0]
        entry.state = DIR_SHARED
        entry.sharers = 0b10 if tracked == {0: "S"} else 0b01
        with pytest.raises(AuditError, match=f"block {block}"):
            audit_coherence(machine)


class TestAnalyzeCli:
    def test_table_output(self, capsys):
        from repro.harness.cli import main

        assert main(["analyze", "migratory", "--procs", "4"]) == 0
        out = capsys.readouterr().out
        assert "sharing patterns" in out
        assert "migratory" in out
        assert "audit: ok" in out

    def test_json_output(self, capsys):
        from repro.harness.cli import main

        assert main(
            ["analyze", "producer_consumer", "--procs", "4", "--protocol", "V", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["schema_version"] == REPORT_SCHEMA_VERSION
        assert payload["report"]["patterns"]["producer-consumer"] > 0
        assert payload["audit"]["messages"]["sends"] > 0

    def test_no_audit_flag(self, capsys):
        from repro.harness.cli import main

        assert main(["analyze", "migratory", "--procs", "4", "--no-audit"]) == 0
        assert "audit: skipped" in capsys.readouterr().out

    def test_unknown_workload(self, capsys):
        from repro.harness.cli import main

        assert main(["analyze", "no_such_workload"]) == 2
        assert "unknown workload" in capsys.readouterr().err

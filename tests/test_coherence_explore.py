"""Tests for the exhaustive protocol state-space checker.

Two kinds of evidence that the checker actually checks something:

* clean variants explore to quiescence with zero violations and full
  coverage of their NORMAL rows (the per-variant CI sweep extends this
  to every combination — the DSI knob grid plus the Tardis family —
  via ``dsi-sim check-protocol``);
* re-introducing any of the historical races through the ``Bugs`` knobs
  makes the checker produce a counterexample trace again.
"""

from repro.coherence.explore import Checker, check_variant, default_configs
from repro.coherence.variants import Bugs, NO_BUGS, enumerate_variants

ALL_VARIANTS = tuple(enumerate_variants(False)) + tuple(enumerate_variants(True))


def by_label(label):
    for variant in ALL_VARIANTS:
        if variant.describe() == label:
            return variant
    raise AssertionError(f"no variant labelled {label!r}")


class TestCleanVariants:
    def test_sc_base_protocol_clean_and_fully_covered(self):
        report = check_variant(by_label("SC"))
        assert report.violation is None, report.violation
        assert not report.uncovered_cache and not report.uncovered_dir
        assert report.ok
        assert report.states > 5_000

    def test_wc_base_protocol_clean_and_fully_covered(self):
        """WC needs the asymmetric 3-node configuration for the
        three-party upgrade/INV re-grant race."""
        assert default_configs(by_label("WC")) == ((2, 3), (3, (2, 1, 1)))
        report = check_variant(by_label("WC"))
        assert report.ok, (report.violation, report.uncovered_cache,
                           report.uncovered_dir)

    def test_dsi_variant_clean(self):
        report = check_variant(
            by_label("SC+DSI(V)+TO"), configs=((2, 3),)
        )
        assert report.violation is None, (report.violation, report.trace)


class TestHistoricalRaceFifoOverflow:
    """Race 1 (fixed in the FIFO-overflow work): an overflow victim was
    invalidated even with a transaction in flight, yanking the fill that
    a stale FIFO entry pointed at and wedging the MSHR forever."""

    VARIANT = "SC+DSI(V)+FIFO"
    CONFIGS = ((2, (2, 2)),)

    def test_checker_rediscovers_the_race(self):
        report = check_variant(
            by_label(self.VARIANT),
            bugs=Bugs(fifo_overflow_ignores_mshr=True),
            configs=self.CONFIGS,
            require_coverage=False,
        )
        assert report.violation is not None
        assert "stuck transaction" in report.violation
        assert report.trace, "violation must come with a counterexample"
        assert any("fifo-overflow" in step for step in report.trace)

    def test_fixed_protocol_has_no_race(self):
        report = check_variant(
            by_label(self.VARIANT),
            configs=self.CONFIGS,
            require_coverage=False,
        )
        assert report.violation is None, (report.violation, report.trace)


class TestHistoricalRaceNotificationAsAck:
    """Race 2 (fixed in the seed): a crossing replacement/SI notification
    from a node the transaction was waiting on was consumed as an ack
    substitute, letting the real INV_ACK alias into the next transaction."""

    VARIANT = "SC+DSI(V)+TO"
    CONFIGS = ((2, 3),)

    def test_checker_rediscovers_the_race(self):
        report = check_variant(
            by_label(self.VARIANT),
            bugs=Bugs(notification_consumed_as_ack=True),
            configs=self.CONFIGS,
            require_coverage=False,
        )
        assert report.violation is not None
        assert "acknowledgment" in report.violation
        assert report.trace
        # The counterexample ends with the real, now-unexpected ack.
        assert "INV_ACK" in report.trace[-1]

    def test_fixed_protocol_has_no_race(self):
        report = check_variant(
            by_label(self.VARIANT),
            configs=self.CONFIGS,
            require_coverage=False,
        )
        assert report.violation is None, (report.violation, report.trace)


class TestHistoricalRaceSiNoticeBehindInvAck:
    """Race 3 (the pinned WC + STATES + tear-off coherence-order
    violation): a sync-point flush invalidates frames immediately but
    delays the SI_NOTIFY sends behind the flush cost, so a racing INV was
    acknowledged *without data* ahead of the dirty notice — the home
    completed the racing transaction with its stale memory copy and
    dropped the late notice as stale, losing the final write.  The
    explorer only sees the race because the model holds flushed notices
    at the node until an explicit notice-send move."""

    VARIANT = "WC+DSI(S)+TO"
    CONFIGS = ((2, 3),)

    def test_checker_rediscovers_the_race(self):
        report = check_variant(
            by_label(self.VARIANT),
            bugs=Bugs(si_notice_behind_inv_ack=True),
            configs=self.CONFIGS,
            require_coverage=False,
        )
        assert report.violation is not None
        assert "data-value" in report.violation
        assert report.trace
        assert any("sync-flush" in step for step in report.trace)
        assert any("INV_ACK" in step for step in report.trace)
        # The write is only lost once the stale notice is finally applied.
        assert "SI_NOTIFY" in report.trace[-1]

    def test_fixed_protocol_has_no_race(self):
        report = check_variant(
            by_label(self.VARIANT),
            configs=self.CONFIGS,
            require_coverage=False,
        )
        assert report.violation is None, (report.violation, report.trace)

    def test_race_not_specific_to_tearoff(self):
        """The underlying data loss needs only DSI + a dirty s-marked
        copy: plain SC + STATES reproduces it too."""
        report = check_variant(
            by_label("SC+DSI(S)"),
            bugs=Bugs(si_notice_behind_inv_ack=True),
            configs=((2, 3),),
            require_coverage=False,
        )
        assert report.violation is not None
        assert "data-value" in report.violation


class TestCheckerMechanics:
    def test_ops_budget_tuple_must_match_nodes(self):
        variant = by_label("SC")
        try:
            Checker(variant, nodes=2, ops=(3, 3, 3))
        except ValueError as err:
            assert "does not match" in str(err)
        else:
            raise AssertionError("mismatched ops budget accepted")

    def test_asymmetric_budgets_shrink_the_space(self):
        variant = by_label("SC")
        full = Checker(variant, nodes=2, ops=2).run()
        lean = Checker(variant, nodes=2, ops=(2, 1)).run()
        assert 0 < lean.states < full.states

    def test_trace_reconstruction_reaches_initial_state(self):
        """Every counterexample is a full path from the initial state."""
        report = check_variant(
            by_label("SC+DSI(V)+TO"),
            bugs=Bugs(notification_consumed_as_ack=True),
            configs=((2, 3),),
            require_coverage=False,
        )
        # First steps must be processor ops (nothing else can move first).
        assert report.trace[0].startswith("n")
        assert all(isinstance(step, str) for step in report.trace)

    def test_default_configs_sc_single(self):
        assert default_configs(by_label("SC+DSI(S)")) == ((2, 3),)

    def test_max_states_cap_raises(self):
        try:
            Checker(by_label("SC"), nodes=2, ops=3, max_states=100).run()
        except RuntimeError as err:
            assert "state-space bound exceeded" in str(err)
        else:
            raise AssertionError("state cap not enforced")

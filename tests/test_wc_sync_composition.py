"""Weak consistency + synchronization composition edge cases."""


from conftest import seg_addr, tiny_config
from repro.config import Consistency, IdentifyScheme
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


def wc(**over):
    return tiny_config(consistency=Consistency.WC, **over)


class TestLockDrainsBuffer:
    def test_lock_waits_for_outstanding_writes(self):
        """A lock acquire must not pass pending writes (weak ordering)."""
        lock = seg_addr(0, 4096)
        builder = TraceBuilder()
        for i in range(4):
            builder.write(seg_addr(1, i * 32))  # remote write misses
        builder.lock(lock)
        builder.unlock(lock)
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc(), program).run()
        assert result.breakdowns[0].synch_wb > 0

    def test_unlock_also_drains(self):
        lock = seg_addr(0, 4096)
        builder = TraceBuilder()
        builder.lock(lock)
        builder.write(seg_addr(1))  # written inside the critical section
        builder.unlock(lock)
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc(), program).run()
        # The release write waited for the buffered write to complete.
        assert result.breakdowns[0].synch_wb > 0

    def test_critical_section_writes_visible_to_next_holder(self):
        """Classic handoff: values written under the lock must be seen by
        the next lock holder (checked by the coherence monitor)."""
        lock = seg_addr(0, 4096)
        data = seg_addr(0)
        builders = [TraceBuilder() for _ in range(3)]
        for _round in range(3):
            for builder in builders:
                builder.lock(lock)
                builder.read(data)
                builder.write(data)
                builder.unlock(lock)
        for builder in builders:
            builder.barrier(0)
        program = Program("handoff", [b.build() for b in builders])
        Machine(wc(n_procs=3), program).run()  # monitor raises on violation


class TestBarrierWithBufferedWrites:
    def test_barrier_release_after_drain(self):
        """Both processors' pre-barrier writes must complete before either
        proceeds past the barrier to read them."""
        builders = [TraceBuilder(), TraceBuilder()]
        builders[0].write(seg_addr(1, 0))
        builders[1].write(seg_addr(0, 64))
        for builder in builders:
            builder.barrier(0)
        builders[0].read(seg_addr(0, 64))
        builders[1].read(seg_addr(1, 0))
        program = Program("exchange", [b.build() for b in builders])
        machine = Machine(wc(), program)
        machine.run()
        # Each reader observed the other's write.
        for node, block_addr in ((0, seg_addr(0, 64)), (1, seg_addr(1, 0))):
            frame = machine.controllers[node].cache.lookup(block_addr >> 5, touch=False)
            assert frame is not None and frame.data > 0

    def test_dsi_flush_ordering_with_drain(self):
        """At a sync point the buffer drains, then marked blocks flush —
        both accounted separately (synch_wb vs dsi)."""
        builders = [TraceBuilder(), TraceBuilder()]
        addr = seg_addr(0)
        # Warm DSI history: P1's copy gets marked on its second fetch.
        builders[0].write(addr)
        for builder in builders:
            builder.barrier(0)
        builders[1].read(addr)
        for builder in builders:
            builder.barrier(1)
        builders[0].write(addr)
        for builder in builders:
            builder.barrier(2)
        builders[1].read(addr)  # marked fill
        builders[1].write(seg_addr(1, 96))  # buffered write
        for builder in builders:
            builder.barrier(3)
        program = Program("order", [b.build() for b in builders])
        result = Machine(wc(identify=IdentifyScheme.VERSION), program).run()
        breakdown = result.breakdowns[1]
        assert breakdown.synch_wb > 0  # drained the buffered write
        assert breakdown.dsi > 0  # then flushed the marked block
        assert result.misses.si_marked_fills >= 1


class TestWriteBufferPressure:
    def test_sixteen_entry_default_absorbs_bursts(self):
        builder = TraceBuilder()
        for i in range(16):
            builder.write(seg_addr(1, i * 32))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc(), program).run()
        assert result.breakdowns[0].wb_full == 0

    def test_seventeenth_write_stalls(self):
        builder = TraceBuilder()
        for i in range(17):
            builder.write(seg_addr(1, i * 32))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc(), program).run()
        assert result.breakdowns[0].wb_full > 0

    def test_coalescing_defeats_pressure(self):
        """17 writes to ONE block need a single entry: no stall."""
        builder = TraceBuilder()
        for i in range(17):
            builder.write(seg_addr(1, (i % 8) * 4))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc(), program).run()
        assert result.breakdowns[0].wb_full == 0
        assert result.misses.write_misses == 1

"""The harness observatory: event schema, sinks, heartbeats, failure
drain, profiling sidecars, reporting, and cache neutrality."""

import io
import json
import multiprocessing
import os

import pytest

from repro.config import IdentifyScheme, SystemConfig
from repro.harness import runpool as runpool_mod
from repro.harness import telemetry as T
from repro.harness.runpool import RunPool
from repro.harness.runspec import RunSpec


def _specs(count=4):
    """The write_conflict micro-program under small config variations."""
    out = []
    for identify in (IdentifyScheme.NONE, IdentifyScheme.VERSION):
        for rounds in (1, 2):
            config = SystemConfig(n_processors=3, identify=identify, quantum=1)
            out.append(
                RunSpec.create(
                    "write_conflict", config, n_procs=3, conflict=True, rounds=rounds
                )
            )
    return out[:count]


def _poison_spec():
    """A spec whose workload does not exist: building it raises KeyError
    inside the (worker's) execute path, never at spec-construction time."""
    return RunSpec.create("no_such_workload", SystemConfig(n_processors=3, quantum=1))


def _types(events):
    return [event["type"] for event in events]


# ----------------------------------------------------------------------
# Schema
# ----------------------------------------------------------------------
class TestEventSchema:
    def test_make_event_stamps_schema_and_ts(self):
        event = T.make_event(
            "run_queued", sweep="s", spec_key="k", workload="w", label="SC"
        )
        assert event["schema"] == T.TELEMETRY_SCHEMA_VERSION
        assert isinstance(event["ts"], float)
        assert T.validate_event(event) is event

    def test_unknown_type_rejected(self):
        with pytest.raises(T.TelemetryError):
            T.make_event("run_exploded")
        with pytest.raises(T.TelemetryError):
            T.validate_event({"schema": 1, "type": "run_exploded", "ts": 0.0})

    def test_missing_field_rejected(self):
        event = T.make_event("run_queued", sweep="s", spec_key="k", workload="w")
        with pytest.raises(T.TelemetryError, match="label"):
            T.validate_event(event)

    def test_wrong_schema_version_rejected(self):
        event = T.make_event(
            "run_queued", sweep="s", spec_key="k", workload="w", label="SC"
        )
        event["schema"] = T.TELEMETRY_SCHEMA_VERSION + 1
        with pytest.raises(T.TelemetryError, match="schema"):
            T.validate_event(event)

    def test_heartbeat_counters_must_be_non_negative_ints(self):
        fields = dict(
            sweep="s", spec_key="k", worker=1, sim_cycles=10,
            events_fired=20, ops_retired=3, ops_total=8,
        )
        T.validate_event(T.make_event("heartbeat", **fields))
        bad = dict(fields, sim_cycles=-1)
        with pytest.raises(T.TelemetryError, match="sim_cycles"):
            T.validate_event(T.make_event("heartbeat", **bad))
        bad = dict(fields, ops_total=1.5)
        with pytest.raises(T.TelemetryError, match="ops_total"):
            T.validate_event(T.make_event("heartbeat", **bad))

    def test_every_type_has_common_fields(self):
        for type_ in T.EVENT_FIELDS:
            assert "ts" in T.COMMON_FIELDS
            assert type_ in T.EVENT_FIELDS

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        sink = T.JsonlSink(path)
        events = [
            T.make_event(
                "sweep_begin", sweep="s", specs=2, pending=1, jobs=1, fingerprint="f" * 16
            ),
            T.make_event(
                "heartbeat", sweep="s", spec_key="k", worker=7,
                sim_cycles=100, events_fired=200, ops_retired=5, ops_total=10,
            ),
            T.make_event(
                "sweep_end", sweep="s", executed=1, cache_hits=1, failed=0, wall_s=0.5
            ),
        ]
        for event in events:
            sink.handle(event)
        sink.close()
        loaded = T.load_log(path)
        assert loaded == events

    def test_load_log_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": 1, "type": "sweep_end", "ts": 0}\n')
        with pytest.raises(T.TelemetryError, match="bad.jsonl:1"):
            T.load_log(str(path))
        path.write_text("{not json\n")
        with pytest.raises(T.TelemetryError, match="not JSON"):
            T.load_log(str(path))


# ----------------------------------------------------------------------
# Sweep logging + reconciliation
# ----------------------------------------------------------------------
class TestSweepLog:
    def _run(self, tmp_path, jobs, specs=None, cache=True):
        specs = specs if specs is not None else _specs()
        log = str(tmp_path / f"sweep-{jobs}.jsonl")
        pool = RunPool(
            jobs=jobs,
            cache_dir=str(tmp_path / "cache") if cache else None,
            telemetry=T.TelemetryConfig(log_path=log, heartbeat_interval=0.01),
        )
        try:
            records = pool.run_batch(specs)
        finally:
            pool.close()
        return pool, records, T.load_log(log)

    def test_serial_sweep_reconciles_with_manifest(self, tmp_path):
        pool, records, events = self._run(tmp_path, jobs=1)
        assert T.reconcile(events, pool.manifest()) == []
        types = _types(events)
        assert types[0] == "sweep_begin" and types[-1] == "sweep_end"
        assert types.count("run_finished") == len(records)
        assert types.count("run_queued") == len(records)
        assert types.count("run_started") == len(records)

    def test_parallel_sweep_reconciles_with_manifest(self, tmp_path):
        pool, records, events = self._run(tmp_path, jobs=4)
        assert T.reconcile(events, pool.manifest()) == []
        assert _types(events).count("run_finished") == len(records)
        # seq is a total order stamped by the hub
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_cached_sweep_emits_run_cached_and_no_heartbeats(self, tmp_path):
        specs = _specs()
        cold_pool, _, _ = self._run(tmp_path, jobs=1)
        warm_log = str(tmp_path / "warm.jsonl")
        warm = RunPool(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            telemetry=T.TelemetryConfig(log_path=warm_log, heartbeat_interval=0.01),
        )
        try:
            warm.run_batch(specs)
        finally:
            warm.close()
        events = T.load_log(warm_log)
        types = _types(events)
        assert warm.cache_hits == len(specs)
        assert types.count("run_cached") == len(specs)
        assert types.count("run_started") == 0
        assert types.count("heartbeat") == 0  # cached hits never run a sampler
        assert T.reconcile(events, warm.manifest()) == []
        begin = events[0]
        assert begin["type"] == "sweep_begin"
        assert begin["specs"] == len(specs) and begin["pending"] == 0

    def test_events_carry_sweep_id_and_schema(self, tmp_path):
        pool, _, events = self._run(tmp_path, jobs=1)
        sweeps = {event["sweep"] for event in events}
        assert len(sweeps) == 1
        assert all(event["schema"] == T.TELEMETRY_SCHEMA_VERSION for event in events)

    def test_two_batches_two_sweeps_one_log(self, tmp_path):
        specs = _specs()
        log = str(tmp_path / "multi.jsonl")
        pool = RunPool(
            jobs=1,
            cache_dir=str(tmp_path / "cache"),
            telemetry=T.TelemetryConfig(log_path=log),
        )
        try:
            pool.run_batch(specs)
            pool.run_batch(specs)  # warm: same stream, second sweep id
        finally:
            pool.close()
        events = T.load_log(log)
        assert len({event["sweep"] for event in events}) == 2
        assert T.reconcile(events, pool.manifest()) == []


class TestFailureDrain:
    def test_poisoned_spec_raises_after_drain_serial(self, tmp_path):
        log = str(tmp_path / "fail.jsonl")
        pool = RunPool(jobs=1, telemetry=T.TelemetryConfig(log_path=log))
        with pytest.raises(KeyError):
            pool.run_batch([_poison_spec()])
        pool.close()
        events = T.load_log(log)
        types = _types(events)
        assert types.count("run_failed") == 1
        assert types[-1] == "sweep_end"  # emitted even though the batch raised
        failed = next(e for e in events if e["type"] == "run_failed")
        assert "KeyError" in failed["error"]
        assert "no_such_workload" in failed["traceback"]
        assert pool.failed == 1

    def test_poisoned_spec_drains_parallel_pool(self, tmp_path):
        specs = _specs()
        log = str(tmp_path / "fail-par.jsonl")
        pool = RunPool(jobs=4, telemetry=T.TelemetryConfig(log_path=log))
        with pytest.raises(KeyError):
            pool.run_batch(specs + [_poison_spec()])
        pool.close()
        events = T.load_log(log)
        types = _types(events)
        # every healthy spec still finished: the failure did not abort the drain
        assert types.count("run_finished") == len(specs)
        assert types.count("run_failed") == 1
        assert pool.executed == len(specs)
        end = next(e for e in events if e["type"] == "sweep_end")
        assert end["executed"] == len(specs) and end["failed"] == 1
        assert T.reconcile(events, pool.manifest()) == []

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="worker-death injection relies on fork inheritance",
    )
    def test_dead_worker_drains_without_hanging(self, tmp_path, monkeypatch):
        def die(spec, observer=None):
            os._exit(3)

        monkeypatch.setattr(runpool_mod, "execute_spec", die)
        log = str(tmp_path / "death.jsonl")
        pool = RunPool(jobs=2, telemetry=T.TelemetryConfig(log_path=log))
        with pytest.raises(Exception):  # BrokenProcessPool
            pool.run_batch(_specs(3))
        pool.close()
        events = T.load_log(log)
        types = _types(events)
        assert types.count("run_failed") == 3  # one per submitted spec
        assert types[-1] == "sweep_end"
        assert pool.failed == 3


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------
class TestHeartbeats:
    def test_sampler_reads_live_machine_counters(self):
        from repro.system import Machine

        spec = _specs(1)[0]
        machine = Machine(spec.config, spec.build_program())
        emitted = []
        sampler = T.HeartbeatSampler(emitted.append, spec.key(), worker=7, interval=0)
        sampler.attach(machine)  # interval 0: no thread, sample() drives it
        before = sampler.sample()
        machine.run()
        after = sampler.sample()
        sampler.detach()
        for event in (before, after):
            T.validate_event(dict(event, sweep="s", seq=0))
            assert event["worker"] == 7
        assert before["sim_cycles"] == 0 and before["ops_retired"] == 0
        assert after["sim_cycles"] > 0
        assert after["ops_retired"] == after["ops_total"]  # quiesced: exact
        assert after["events_fired"] > before["events_fired"]

    def test_sampler_thread_emits_during_run(self):
        from repro.system import Machine

        spec = _specs(1)[0]
        machine = Machine(spec.config, spec.build_program())
        emitted = []
        sampler = T.HeartbeatSampler(
            emitted.append, spec.key(), worker=1, interval=0.001
        )
        sampler.attach(machine)
        machine.run()
        # the machine is quiesced; give the thread a beat then stop it
        import time as _time

        deadline = _time.monotonic() + 2.0
        while not emitted and _time.monotonic() < deadline:
            _time.sleep(0.002)
        sampler.detach()
        assert emitted, "sampler thread never fired at a 1ms interval"
        assert all(event["type"] == "heartbeat" for event in emitted)

    def test_detach_is_idempotent(self):
        sampler = T.HeartbeatSampler(lambda e: None, "k", worker=1, interval=0)
        sampler.detach()
        sampler.detach()

    def test_zero_length_run_emits_no_heartbeats(self, tmp_path):
        # A trivial single-op program finishes far inside one heartbeat
        # interval: no heartbeats, but run_started/run_finished intact.
        spec = RunSpec.create(
            "write_conflict", SystemConfig(n_processors=2, quantum=1),
            n_procs=2, conflict=False, rounds=1,
        )
        log = str(tmp_path / "tiny.jsonl")
        pool = RunPool(
            jobs=1, telemetry=T.TelemetryConfig(log_path=log, heartbeat_interval=30.0)
        )
        try:
            pool.run(spec)
        finally:
            pool.close()
        types = _types(T.load_log(log))
        assert types.count("heartbeat") == 0
        assert types.count("run_started") == 1
        assert types.count("run_finished") == 1

    def test_machine_progress_shape(self):
        from repro.system import Machine

        spec = _specs(1)[0]
        machine = Machine(spec.config, spec.build_program())
        progress = machine.progress()
        assert set(progress) == {
            "sim_cycles", "events_fired", "ops_retired", "ops_total"
        }
        assert progress["ops_total"] > 0
        machine.run()
        assert machine.progress()["ops_retired"] == progress["ops_total"]


# ----------------------------------------------------------------------
# Results and cache must be telemetry-blind
# ----------------------------------------------------------------------
class TestTelemetryNeutrality:
    def test_records_identical_with_full_telemetry(self, tmp_path):
        specs = _specs()
        bare = RunPool(jobs=1, telemetry=T.TelemetryConfig()).run_batch(specs)
        observed_pool = RunPool(
            jobs=1,
            telemetry=T.TelemetryConfig(
                log_path=str(tmp_path / "log.jsonl"),
                profile="cprofile",
                profile_dir=str(tmp_path / "prof"),
                heartbeat_interval=0.001,
            ),
        )
        try:
            observed = observed_pool.run_batch(specs)
        finally:
            observed_pool.close()
        for spec in specs:
            assert observed[spec] == bare[spec]  # equality excludes wall time

    def test_cache_keys_identical_with_and_without_telemetry(self, tmp_path):
        spec = _specs(1)[0]
        bare = RunPool(jobs=1, cache_dir=str(tmp_path))
        observed = RunPool(
            jobs=1,
            cache_dir=str(tmp_path),
            telemetry=T.TelemetryConfig(
                log_path=str(tmp_path / "log.jsonl"),
                profile="cprofile",
                profile_dir=str(tmp_path / "prof"),
            ),
        )
        assert bare.cache.path_for(spec) == observed.cache.path_for(spec)
        bare.run(spec)
        try:
            observed.run(spec)
        finally:
            observed.close()
        assert observed.cache_hits == 1 and observed.executed == 0

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("DSI_LOG", raising=False)
        monkeypatch.delenv("DSI_PROFILE", raising=False)
        assert T.TelemetryConfig.resolve(None) is None
        monkeypatch.setenv("DSI_LOG", "env.jsonl")
        resolved = T.TelemetryConfig.resolve(None)
        assert resolved.log_path == "env.jsonl"
        # an explicit (even inactive) config outvotes the environment
        assert T.TelemetryConfig.resolve(T.TelemetryConfig()) is None

    def test_unknown_profiler_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="cprofile"):
            T.TelemetryConfig(profile="perf")


# ----------------------------------------------------------------------
# Verbose sink (the old RunPool._log, now one sink on the event stream)
# ----------------------------------------------------------------------
class TestVerboseSink:
    def test_verbose_lines_come_from_the_event_stream(self, tmp_path):
        spec = _specs(1)[0]
        stream = io.StringIO()
        pool = RunPool(jobs=1, cache_dir=str(tmp_path), verbose=True)
        assert isinstance(pool.hub.sinks[0], T.VerboseSink)
        pool.hub.sinks[0].stream = stream
        pool.run(spec)
        line = stream.getvalue()
        assert line.startswith("[run 1] write_conflict")
        assert "cache=256KB" in line and "net=100" in line

        warm = RunPool(jobs=1, cache_dir=str(tmp_path), verbose=True)
        warm_stream = io.StringIO()
        warm.hub.sinks[0].stream = warm_stream
        warm.run(spec)
        assert warm_stream.getvalue().startswith("[hit] write_conflict")

    def test_failed_runs_logged(self):
        sink = T.VerboseSink(stream=io.StringIO())
        sink.handle(
            T.make_event(
                "run_failed", sweep="s", spec_key="k", workload="w", label="SC",
                error="KeyError: boom", traceback="tb",
            )
        )
        assert "[FAIL]" in sink.stream.getvalue()


# ----------------------------------------------------------------------
# Live dashboard (pure render; no tty needed)
# ----------------------------------------------------------------------
class TestLiveDashboard:
    def _feed(self, dash, events):
        for event in events:
            dash.handle(event)

    def test_render_tracks_sweep_state(self):
        dash = T.LiveDashboard(stream=io.StringIO(), interval=0, clock=lambda: 100.0)
        hb = dict(sweep="s", spec_key="k1", worker=11, sim_cycles=500,
                  events_fired=900, ops_retired=5, ops_total=10)
        self._feed(dash, [
            dict(T.make_event("sweep_begin", sweep="s", specs=3, pending=2, jobs=2,
                              fingerprint="f" * 16), ts=0.0),
            dict(T.make_event("run_cached", sweep="s", spec_key="k0", workload="w",
                              label="SC", cache_kb=16, net=100, exec_time=10,
                              wall_time_s=0.1), ts=0.5),
            dict(T.make_event("run_started", sweep="s", spec_key="k1", workload="w",
                              label="SC+DSI(V)", worker=11), ts=1.0),
            dict(T.make_event("heartbeat", **hb), ts=2.0),
            dict(T.make_event("heartbeat", **dict(hb, sim_cycles=1500)), ts=3.0),
        ])
        frame = dash.render(now=4.0)
        assert "1/3" in frame          # one of three specs done (the cached one)
        assert "1 running" in frame
        assert "1 cached" in frame
        assert "w/SC+DSI(V)" in frame  # the worker lane names its run
        assert "1k cyc/s" in frame     # (1500-500)/(3-2) = 1000 cycles/s
        assert dash.workers[11]["rate"] == pytest.approx(1000.0)

    def test_eta_and_straggler_flagging(self):
        dash = T.LiveDashboard(stream=io.StringIO(), interval=0, clock=lambda: 50.0)
        dash.total = 10
        dash.jobs = 2
        dash.finished = 4
        dash.wall_times = [1.0, 1.0, 1.0, 1.0]
        assert dash.eta_seconds(now=50.0) == pytest.approx(6 * 1.0 / 2)
        assert dash.is_straggler(started_ts=49.5, now=50.0) is False
        assert dash.is_straggler(started_ts=40.0, now=50.0) is True  # 10s >> 2.5x mean

    def test_non_tty_prints_plain_progress(self, tmp_path):
        stream = io.StringIO()
        pool = RunPool(
            jobs=1,
            telemetry=T.TelemetryConfig(live=True, stream=stream),
        )
        try:
            pool.run(_specs(1)[0])
        finally:
            pool.close()
        lines = stream.getvalue().splitlines()
        assert lines and all(line.startswith("# sweep") for line in lines)
        assert any("1/1 done" in line for line in lines)

    def test_render_handles_empty_state(self):
        dash = T.LiveDashboard(stream=io.StringIO(), clock=lambda: 0.0)
        assert "0/0" in dash.render(now=0.0)


# ----------------------------------------------------------------------
# Profiling sidecars
# ----------------------------------------------------------------------
class TestProfiling:
    def test_sidecars_written_and_merged(self, tmp_path):
        specs = _specs(2)
        profile_dir = str(tmp_path / "prof")
        pool = RunPool(
            jobs=1,
            telemetry=T.TelemetryConfig(
                log_path=str(tmp_path / "log.jsonl"),
                profile="cprofile",
                profile_dir=profile_dir,
            ),
        )
        try:
            pool.run_batch(specs)
        finally:
            pool.close()
        sidecars = [T.profile_sidecar(profile_dir, spec.key()) for spec in specs]
        assert all(os.path.exists(path) for path in sidecars)
        rows, merged = T.profile_table(sidecars, top=10)
        assert merged == 2
        assert rows and len(rows) <= 10
        functions = " ".join(row[0] for row in rows)
        assert "execute_spec" in functions
        text = T.format_profile_table(rows, merged)
        assert "merged host profile (2 sidecars" in text

    def test_run_finished_events_carry_sidecar_path(self, tmp_path):
        spec = _specs(1)[0]
        log = str(tmp_path / "log.jsonl")
        pool = RunPool(
            jobs=1,
            telemetry=T.TelemetryConfig(
                log_path=log, profile="cprofile", profile_dir=str(tmp_path / "prof")
            ),
        )
        try:
            pool.run(spec)
        finally:
            pool.close()
        finished = next(
            e for e in T.load_log(log) if e["type"] == "run_finished"
        )
        assert finished["profile"] and os.path.exists(finished["profile"])

    def test_unreadable_sidecars_are_skipped(self, tmp_path):
        bogus = tmp_path / "bogus.pstats"
        bogus.write_text("not a pstats file")
        rows, merged = T.profile_table([str(bogus), str(tmp_path / "missing.pstats")])
        assert rows == [] and merged == 0
        assert "no profile sidecars" in T.format_profile_table(rows, merged)


# ----------------------------------------------------------------------
# Post-hoc report + Perfetto export
# ----------------------------------------------------------------------
class TestSweepReport:
    def _events(self, tmp_path, jobs=2):
        specs = _specs()
        log = str(tmp_path / "report.jsonl")
        pool = RunPool(
            jobs=jobs,
            cache_dir=str(tmp_path / "cache"),
            telemetry=T.TelemetryConfig(log_path=log, heartbeat_interval=0.005),
        )
        try:
            pool.run_batch(specs)
            pool.run_batch(specs)
        finally:
            pool.close()
        return T.load_log(log), pool

    def test_report_totals_and_workers(self, tmp_path):
        events, pool = self._events(tmp_path)
        report = T.sweep_report(events)
        totals = report["totals"]
        assert totals["runs"] == 8
        assert totals["executed"] == 4 and totals["cached"] == 4
        assert totals["cache_hit_ratio"] == pytest.approx(0.5)
        assert totals["failed"] == 0
        assert report["workers"]  # at least one worker lane
        for worker in report["workers"]:
            assert worker["runs"] >= 0 and worker["busy_s"] >= 0
        for run in report["runs"]:
            if run["status"] == "finished":
                assert run["queue_wait_s"] is not None
                assert run["execute_s"] is not None and run["execute_s"] >= 0
        assert len(report["stragglers"]) == 4  # executed runs only, sorted
        walls = [r["wall_time_s"] for r in report["stragglers"]]
        assert walls == sorted(walls, reverse=True)

    def test_format_report_mentions_key_sections(self, tmp_path):
        events, _pool = self._events(tmp_path)
        text = T.format_report(T.sweep_report(events))
        assert "worker utilization" in text
        assert "stragglers" in text
        assert "50% hit" in text

    def test_perfetto_export_schema(self, tmp_path):
        events, _pool = self._events(tmp_path)
        trace = T.sweep_to_perfetto(events)
        assert set(trace) >= {"traceEvents", "displayTimeUnit"}
        for event in trace["traceEvents"]:
            assert {"ph", "ts", "pid", "tid"} <= set(event)
            assert event["pid"] == 4  # PID_HARNESS
            if event["ph"] == "X":
                assert event["dur"] >= 1
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert "queue" in names and "cache" in names
        assert any(name.startswith("worker ") for name in names)
        # run slices land on worker lanes; cached hits are instants
        assert any(e["ph"] == "i" for e in trace["traceEvents"])
        out = tmp_path / "trace.json"
        T.write_sweep_perfetto(events, str(out))
        assert json.loads(out.read_text())["traceEvents"]

    def test_reconcile_flags_lost_events(self, tmp_path):
        events, pool = self._events(tmp_path, jobs=1)
        manifest = pool.manifest()
        # drop one terminal event: reconciliation must notice
        dropped = next(e for e in events if e["type"] == "run_finished")
        remaining = [e for e in events if e is not dropped]
        problems = T.reconcile(remaining, manifest)
        assert problems and dropped["spec_key"][:16] in " ".join(problems)
        # and an orphan heartbeat (spec never terminated) is flagged too
        orphan = T.make_event(
            "heartbeat", sweep="s", spec_key="orphan" * 11, worker=1,
            sim_cycles=1, events_fired=1, ops_retired=0, ops_total=1,
        )
        problems = T.reconcile(events + [dict(orphan, seq=10_000)], manifest)
        assert any("never terminated" in p for p in problems)


class TestHub:
    def test_sink_errors_never_kill_the_sweep(self):
        class Boom(T.TelemetrySink):
            def handle(self, event):
                raise RuntimeError("sink died")

        hub = T.TelemetryHub([Boom()])
        hub.begin_sweep("s")
        hub.emit(T.make_event(
            "sweep_end", executed=0, cache_hits=0, failed=0, wall_s=0.0
        ))
        hub.close()
        assert len(hub.errors) == 1

    def test_close_is_idempotent(self, tmp_path):
        hub = T.TelemetryHub([T.JsonlSink(str(tmp_path / "x.jsonl"))])
        hub.close()
        hub.close()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCli:
    def test_experiment_log_and_report(self, tmp_path, capsys):
        from repro.harness import cli

        log = str(tmp_path / "cli.jsonl")
        assert cli.main(["figure2", "--json", "--jobs", "1", "--log", log]) == 0
        capsys.readouterr()
        events = T.load_log(log)
        assert _types(events).count("sweep_begin") >= 1
        assert cli.main(["report", log]) == 0
        out = capsys.readouterr().out
        assert "worker utilization" in out
        trace_path = str(tmp_path / "harness-trace.json")
        assert cli.main(["report", log, "--json", "--perfetto", trace_path]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["runs"] >= 1
        assert os.path.exists(trace_path)

    def test_run_verb_telemetry_and_profile(self, tmp_path, capsys):
        from repro.harness import cli

        log = str(tmp_path / "run.jsonl")
        profile_dir = str(tmp_path / "prof")
        assert cli.main([
            "run", "--workload", "producer_consumer", "--procs", "4", "--quick",
            "--json", "--log", log, "--profile", "cprofile",
            "--profile-dir", profile_dir,
        ]) == 0
        capsys.readouterr()
        events = T.load_log(log)
        types = _types(events)
        for expected in ("sweep_begin", "run_queued", "run_started",
                         "run_finished", "sweep_end"):
            assert types.count(expected) == 1, expected
        finished = next(e for e in events if e["type"] == "run_finished")
        assert finished["profile"] and os.path.exists(finished["profile"])
        assert finished["workload"] == "producer_consumer"

    def test_report_rejects_missing_and_empty_logs(self, tmp_path, capsys):
        from repro.harness import cli

        assert cli.main(["report", str(tmp_path / "absent.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert cli.main(["report", str(empty)]) == 1
        err = capsys.readouterr().err
        assert "no telemetry events" in err
        assert cli.main(["report"]) == 2
        capsys.readouterr()

    def test_report_survives_truncated_log(self, tmp_path, capsys):
        """A log whose final line was cut mid-write (crashed sweep) still
        reports the valid prefix — with a warning and exit 1."""
        from repro.harness import cli

        hub = T.TelemetryHub([T.JsonlSink(str(tmp_path / "cut.jsonl"))])
        hub.begin_sweep("s1")
        hub.emit(T.make_event(
            "sweep_begin", specs=1, pending=1, jobs=1, fingerprint="f" * 16
        ))
        hub.emit(T.make_event(
            "run_queued", spec_key="k" * 64, workload="ocean", label="SC"
        ))
        hub.close()
        log = tmp_path / "cut.jsonl"
        log.write_text(log.read_text() + '{"type": "run_fini')  # torn write
        assert cli.main(["report", str(log)]) == 1
        captured = capsys.readouterr()
        assert "not JSON" in captured.err
        assert "valid events" in captured.err
        assert "runs: 1" in captured.out  # the prefix was analyzed

    def test_report_all_lines_invalid_exits_clearly(self, tmp_path, capsys):
        from repro.harness import cli

        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n{\n")
        assert cli.main(["report", str(bad)]) == 1
        err = capsys.readouterr().err
        assert "no valid telemetry events" in err
        assert "bad line" in err

    def test_bench_with_telemetry(self, tmp_path, capsys, monkeypatch):
        from repro.harness import cli

        monkeypatch.chdir(tmp_path)
        log = str(tmp_path / "bench.jsonl")
        out = str(tmp_path / "bench-snap.json")
        assert cli.main([
            "bench", "--suite", "smoke", "--json", "-o", out,
            "--log", log, "--profile", "cprofile",
            "--profile-dir", str(tmp_path / "prof"),
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["profiles"]["sidecars"]
        events = T.load_log(log)
        assert _types(events).count("run_finished") == len(payload["runs"])


class TestEquivalenceSweep:
    def test_sweep_telemetry_proof_holds(self):
        from repro.harness.equivalence import sweep_telemetry

        assert sweep_telemetry(jobs=2) == []

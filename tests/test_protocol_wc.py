"""Full-machine integration tests: the weakly consistent protocol.

Covers the 16-entry coalescing write buffer, the parallel grant with a
single forwarded acknowledgment, and the paper's WC stall categories
(synch wb, read wb, wb full).
"""


from conftest import seg_addr, tiny_config, two_proc_program
from repro.config import Consistency
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program


def wc_config(**over):
    return tiny_config(consistency=Consistency.WC, **over)


def single_proc(build):
    builder = TraceBuilder()
    build(builder)
    return Program("single", [builder.build()])


class TestWriteBuffering:
    def test_write_miss_does_not_stall(self):
        program = single_proc(lambda b: b.write(seg_addr(1)).compute(5))
        result = Machine(wc_config(n_procs=2), program.__class__(
            "p", [program.traces[0], TraceBuilder().build()])).run()
        breakdown = result.breakdowns[0]
        assert breakdown.write_other == 0
        assert breakdown.write_inval == 0

    def test_drain_at_end_counts_synch_wb(self):
        program = Program(
            "p", [TraceBuilder().write(seg_addr(1)).build(), TraceBuilder().build()]
        )
        result = Machine(wc_config(), program).run()
        breakdown = result.breakdowns[0]
        # The final implicit drain waits for the remote write to complete.
        assert breakdown.synch_wb > 0

    def test_coalescing_same_block(self):
        def build(b):
            for word in range(8):
                b.write(seg_addr(1, word * 4))  # same 32-byte block

        program = Program("p", [TraceBuilder().build(), TraceBuilder().build()])
        builder = TraceBuilder()
        build(builder)
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc_config(), program).run()
        # One GETX for eight writes.
        assert result.messages.network["GETX"] == 1
        assert result.misses.write_misses == 1
        assert result.misses.write_hits == 7

    def test_wb_full_stalls(self):
        config = wc_config(write_buffer_entries=2)
        builder = TraceBuilder()
        for i in range(6):  # six distinct blocks, buffer of two
            builder.write(seg_addr(1, i * 32))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(config, program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.wb_full > 0
        assert result.misses.write_misses == 6

    def test_read_wb_stall(self):
        """A read to a block with an outstanding write miss waits for the
        data and is classified read_wb."""
        builder = TraceBuilder()
        builder.write(seg_addr(1)).read(seg_addr(1))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc_config(), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.read_wb > 0
        assert breakdown.read_other == 0

    def test_read_after_data_arrival_hits(self):
        builder = TraceBuilder()
        builder.write(seg_addr(1)).compute(500).read(seg_addr(1))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc_config(), program).run()
        assert result.breakdowns[0].read_wb == 0
        assert result.misses.read_hits == 1

    def test_write_while_read_outstanding_upgrades_after_fill(self):
        """A write issued while a read miss for the same block is in
        flight coalesces and upgrades once the shared copy arrives."""
        builder = TraceBuilder()
        builder.read(seg_addr(1)).write(seg_addr(1))
        program = Program("p", [builder.build(), TraceBuilder().build()])
        result = Machine(wc_config(), program).run()
        assert result.messages.network["GETS"] == 1
        assert result.messages.network["UPGRADE"] == 1


class TestParallelGrant:
    def test_writer_proceeds_before_acks(self):
        """P0 writes a block P1 holds shared: under WC the write itself
        does not stall (the grant is parallel with the invalidation)."""

        def build(b0, b1, ctx):
            ctx.barrier_all()
            b1.read(seg_addr(0))
            ctx.barrier_all()
            b0.write(seg_addr(0))
            b0.compute(5)
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(wc_config(), program).run()
        breakdown = result.breakdowns[0]
        assert breakdown.write_inval == 0
        assert breakdown.write_other == 0
        # The block is homed on the writer's node, so the forwarded
        # acknowledgment travels the local path.
        assert result.messages.local.get("ACK_DONE", 0) == 1

    def test_sync_waits_for_acks(self):
        """The barrier right after the conflicting write must wait for the
        ACK_DONE — that wait is the synch_wb category."""

        def build(b0, b1, ctx):
            ctx.barrier_all()
            b1.read(seg_addr(0))
            ctx.barrier_all()
            b0.write(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(wc_config(), program).run()
        assert result.breakdowns[0].synch_wb > 0

    def test_reads_still_stall(self):
        def build(b0, b1, ctx):
            ctx.barrier_all()
            b1.write(seg_addr(0))
            ctx.barrier_all()
            b0.read(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(wc_config(), program).run()
        breakdown = result.breakdowns[0]
        # Read of an exclusive block: still pays the owner invalidation.
        assert breakdown.read_inval > 0

    def test_exclusive_transfer_not_parallel(self):
        """GETX on an exclusive block must wait for the owner's data, even
        under WC; the wb entry simply retires later."""

        def build(b0, b1, ctx):
            ctx.barrier_all()
            b1.write(seg_addr(0))
            ctx.barrier_all()
            b0.write(seg_addr(0))
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(wc_config(), program).run()
        # No parallel-grant ack pattern: the grant came complete.
        assert result.messages.network.get("ACK_DONE", 0) == 0


class TestSemantics:
    def test_sc_and_wc_same_final_state(self):
        """For a race-free (barrier-separated) program WC must produce the
        same final memory as SC."""

        def build(b0, b1, ctx):
            for i in range(3):
                ctx.barrier_all()
                b0.write(seg_addr(0, 32 * i))
                ctx.barrier_all()
                b1.read(seg_addr(0, 32 * i))
                b1.write(seg_addr(1, 32 * i))
                ctx.barrier_all()

        program = two_proc_program(build)
        machines = {}
        for label, config in (("sc", tiny_config()), ("wc", wc_config())):
            machine = Machine(config, program)
            machine.run()
            machines[label] = machine

        def final_stamps(machine):
            stamps = {}
            for directory in machine.directories:
                for block, entry in directory.entries.items():
                    stamps[block] = entry.data
            # fold in dirty cached copies
            for controller in machine.controllers:
                for block, frame in controller.cache.valid_blocks().items():
                    if frame.dirty:
                        stamps[block] = frame.data
            return stamps

        sc_stamps = final_stamps(machines["sc"])
        wc_stamps = final_stamps(machines["wc"])
        # Stamps are allocation-order dependent, so compare which blocks
        # were written rather than raw values.
        assert set(sc_stamps) == set(wc_stamps)
        written_sc = {b for b, s in sc_stamps.items() if s}
        written_wc = {b for b, s in wc_stamps.items() if s}
        assert written_sc == written_wc

    def test_wc_faster_on_write_bursts(self):
        builder0 = TraceBuilder()
        builder1 = TraceBuilder()
        for i in range(8):
            builder0.write(seg_addr(1, i * 32)).compute(10)
        builder0.barrier(0)
        builder1.barrier(0)
        program = Program("burst", [builder0.build(), builder1.build()])
        sc = Machine(tiny_config(), program).run()
        wc = Machine(wc_config(), program).run()
        assert wc.exec_time < sc.exec_time

    def test_deterministic(self):
        def build(b0, b1, ctx):
            for i in range(4):
                b0.write(seg_addr(0, 32 * i)).read(seg_addr(1, 32 * i))
                b1.write(seg_addr(1, 32 * i)).read(seg_addr(0, 32 * i))
                ctx.barrier_all()

        program = two_proc_program(build)
        first = Machine(wc_config(), program).run()
        second = Machine(wc_config(), program).run()
        assert first.exec_time == second.exec_time
        assert first.messages.network == second.messages.network

"""Directory controller unit tests, driven through a fake network.

Each test pushes messages into the controller and inspects the messages it
emits and the entry state it leaves behind — including the §4.1 state
flavors and the race-handling rules (deferral, late writebacks,
notifications consumed as acknowledgments, stale acks dropped).
"""


from repro.config import Consistency, IdentifyScheme, SystemConfig
from repro.core.identify import make_policy
from repro.directory.controller import DirectoryController
from repro.directory.state import (
    DIR_EXCLUSIVE,
    DIR_IDLE,
    DIR_SHARED,
    FLAVOR_PLAIN,
    FLAVOR_S,
    FLAVOR_SI,
    FLAVOR_X,
)
from repro.engine.simulator import Simulator
from repro.network.message import Message, MsgKind


class FakeNetwork:
    def __init__(self):
        self.sent = []

    def send(self, msg, on_injected=None):
        self.sent.append(msg)
        if on_injected is not None:
            on_injected()

    def of_kind(self, kind):
        return [m for m in self.sent if m.kind is kind]

    def last(self):
        return self.sent[-1]


def make_dir(consistency=Consistency.SC, identify=IdentifyScheme.NONE, node=0, **over):
    sim = Simulator()
    config = SystemConfig(n_processors=4, consistency=consistency, identify=identify, **over)
    network = FakeNetwork()
    controller = DirectoryController(sim, config, node, network, make_policy(config))
    return sim, controller, network


def deliver(sim, controller, msg):
    controller.receive(msg)
    sim.run()


def gets(block, src, version=None):
    return Message(MsgKind.GETS, block, src=src, dst=0, version=version)


def getx(block, src, version=None):
    return Message(MsgKind.GETX, block, src=src, dst=0, version=version)


def upgrade(block, src, version=None):
    return Message(MsgKind.UPGRADE, block, src=src, dst=0, version=version)


def inv_ack(block, src, data=None):
    if data is None:
        return Message(MsgKind.INV_ACK, block, src=src, dst=0)
    return Message(MsgKind.INV_ACK_DATA, block, src=src, dst=0, data=data, dirty=True, carries_data=True)


class TestReads:
    def test_idle_read_responds_immediately(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, gets(7, src=1))
        (msg,) = net.sent
        assert msg.kind is MsgKind.DATA and msg.dst == 1
        entry = ctrl.entries[7]
        assert entry.state == DIR_SHARED and entry.has_sharer(1)

    def test_dir_occupancy_charged(self):
        sim, ctrl, net = make_dir()
        ctrl.receive(gets(7, src=1))
        sim.run()
        assert sim.now == 10  # dir_ctrl_cycles

    def test_shared_read_adds_sharer(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        entry = ctrl.entries[7]
        assert entry.sharer_list() == [1, 2]

    def test_exclusive_read_invalidates_owner_first(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        net.sent.clear()
        deliver(sim, ctrl, gets(7, src=2))
        (inv,) = net.sent
        assert inv.kind is MsgKind.INV and inv.dst == 1
        assert ctrl.entries[7].busy
        deliver(sim, ctrl, inv_ack(7, src=1, data=55))
        data = net.last()
        assert data.kind is MsgKind.DATA and data.dst == 2
        assert data.data == 55  # modified data forwarded
        entry = ctrl.entries[7]
        assert entry.state == DIR_SHARED and not entry.busy

    def test_inval_wait_reported(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        net.sent.clear()
        ctrl.receive(gets(7, src=2))
        sim.run()
        inv_sent_at = sim.now
        sim.schedule(200, lambda: None)
        sim.run()
        deliver(sim, ctrl, inv_ack(7, src=1, data=0))
        data = net.last()
        assert data.inval_wait == sim.now - inv_sent_at


class TestWrites:
    def test_idle_write_grants_exclusive(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        (msg,) = net.sent
        assert msg.kind is MsgKind.DATA_EX
        entry = ctrl.entries[7]
        assert entry.state == DIR_EXCLUSIVE and entry.owner == 1

    def test_sc_shared_write_collects_acks_before_grant(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        net.sent.clear()
        deliver(sim, ctrl, getx(7, src=3))
        invs = net.of_kind(MsgKind.INV)
        assert {m.dst for m in invs} == {1, 2}
        assert not net.of_kind(MsgKind.DATA_EX)  # not granted yet
        deliver(sim, ctrl, inv_ack(7, src=1))
        assert not net.of_kind(MsgKind.DATA_EX)
        deliver(sim, ctrl, inv_ack(7, src=2))
        assert net.of_kind(MsgKind.DATA_EX)

    def test_wc_shared_write_grants_in_parallel(self):
        sim, ctrl, net = make_dir(consistency=Consistency.WC)
        deliver(sim, ctrl, gets(7, src=1))
        net.sent.clear()
        deliver(sim, ctrl, getx(7, src=2))
        kinds = [m.kind for m in net.sent]
        assert MsgKind.DATA_EX in kinds and MsgKind.INV in kinds
        grant = net.of_kind(MsgKind.DATA_EX)[0]
        assert grant.acks_pending
        deliver(sim, ctrl, inv_ack(7, src=1))
        done = net.last()
        assert done.kind is MsgKind.ACK_DONE and done.dst == 2

    def test_upgrade_of_sole_sharer_grants_without_data(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, gets(7, src=1))
        net.sent.clear()
        deliver(sim, ctrl, upgrade(7, src=1))
        (msg,) = net.sent
        assert msg.kind is MsgKind.UPGRADE_ACK
        assert ctrl.entries[7].owner == 1

    def test_upgrade_from_non_sharer_gets_data(self):
        """The upgrade-invalidation race: the requester lost its copy in
        flight, so the directory answers with a full exclusive block."""
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=2))
        net.sent.clear()
        deliver(sim, ctrl, upgrade(7, src=1))
        deliver(sim, ctrl, inv_ack(7, src=2, data=9))
        grant = net.last()
        assert grant.kind is MsgKind.DATA_EX and grant.dst == 1

    def test_exclusive_write_fetches_data_from_owner(self):
        sim, ctrl, net = make_dir(consistency=Consistency.WC)
        deliver(sim, ctrl, getx(7, src=1))
        net.sent.clear()
        deliver(sim, ctrl, getx(7, src=2))
        (inv,) = net.sent
        assert inv.kind is MsgKind.INV and inv.dst == 1
        deliver(sim, ctrl, inv_ack(7, src=1, data=31))
        grant = net.last()
        assert grant.kind is MsgKind.DATA_EX and grant.data == 31 and not grant.acks_pending


class TestDeferral:
    def test_requests_deferred_while_busy(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))  # starts inval of owner 1
        net.sent.clear()
        deliver(sim, ctrl, gets(7, src=3))  # deferred
        assert not net.sent
        deliver(sim, ctrl, inv_ack(7, src=1, data=0))
        responses = net.of_kind(MsgKind.DATA)
        assert {m.dst for m in responses} == {2, 3}

    def test_deferred_write_runs_after_completion(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        deliver(sim, ctrl, getx(7, src=3))  # deferred behind the read
        deliver(sim, ctrl, inv_ack(7, src=1, data=0))
        # read granted to 2, then the deferred write invalidates 2.
        invs = net.of_kind(MsgKind.INV)
        assert invs[-1].dst == 2
        deliver(sim, ctrl, inv_ack(7, src=2))
        assert ctrl.entries[7].owner == 3


class TestRaces:
    def test_late_writeback_read(self):
        """GETS from the current owner means its WB is in flight; the
        directory waits for it, then serves the read from memory."""
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        net.sent.clear()
        deliver(sim, ctrl, gets(7, src=1))
        assert not net.sent  # waiting for the writeback
        deliver(sim, ctrl, Message(MsgKind.WB, 7, src=1, dst=0, data=77, dirty=True, carries_data=True))
        (data,) = net.of_kind(MsgKind.DATA)
        assert data.dst == 1 and data.data == 77

    def test_replacement_crossing_invalidation(self):
        """A replacement racing with an invalidation is applied but never
        consumed as the acknowledgment: the transaction waits for the real
        INV_ACK (which the cache sends even for the absent copy), so acks
        pair 1:1 with INVs and can never alias across transactions."""
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, getx(7, src=2))  # INV sent to 1
        deliver(sim, ctrl, Message(MsgKind.REPL, 7, src=1, dst=0))  # replacement in flight
        assert not net.of_kind(MsgKind.DATA_EX)  # still waiting for the ack
        assert ctrl.entries[7].busy
        deliver(sim, ctrl, inv_ack(7, src=1))  # cache acks the absent copy
        assert net.of_kind(MsgKind.DATA_EX)
        assert not ctrl.entries[7].busy

    def test_self_invalidation_crossing_invalidation(self):
        """Regression for the ack-aliasing race: node 1's self-invalidation
        crosses an INV in flight to it.  The SI_NOTIFY is applied but the
        transaction must wait for node 1's (data-less) INV_ACK; a
        subsequent transaction's data-carrying ack then pairs with its own
        INV and nothing aliases."""
        sim, ctrl, net = make_dir(identify=IdentifyScheme.VERSION)
        deliver(sim, ctrl, getx(7, src=1))  # node 1 owns, dirty
        net.sent.clear()
        deliver(sim, ctrl, getx(7, src=2))  # txn A: INV -> 1
        assert [m.dst for m in net.of_kind(MsgKind.INV)] == [1]
        # Node 1 self-invalidates before the INV reaches it.
        deliver(
            sim, ctrl,
            Message(MsgKind.SI_NOTIFY, 7, src=1, dst=0, data=5, dirty=True,
                    si_marked=True, carries_data=True),
        )
        assert ctrl.entries[7].busy  # still waiting for node 1's ack
        assert not net.of_kind(MsgKind.DATA_EX)
        # Node 1 wants the block back; deferred behind txn A.
        deliver(sim, ctrl, getx(7, src=1))
        # The INV reaches node 1's (empty) cache: plain acknowledgment.
        deliver(sim, ctrl, inv_ack(7, src=1))
        # txn A completes with node 1's written-back data; txn B (deferred
        # GETX from 1) starts and invalidates node 2.
        (grant_a,) = net.of_kind(MsgKind.DATA_EX)
        assert grant_a.dst == 2 and grant_a.data == 5
        assert [m.dst for m in net.of_kind(MsgKind.INV)] == [1, 2]
        deliver(sim, ctrl, inv_ack(7, src=2, data=9))
        grants = net.of_kind(MsgKind.DATA_EX)
        assert grants[-1].dst == 1 and grants[-1].data == 9
        entry = ctrl.entries[7]
        assert entry.owner == 1 and not entry.busy

    def test_wb_from_new_owner_mid_collection(self):
        """Under WC the grantee may write back before the old sharers'
        acks arrive; the entry must not corrupt."""
        sim, ctrl, net = make_dir(consistency=Consistency.WC)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, getx(7, src=2))  # parallel grant to 2; INV to 1
        deliver(sim, ctrl, Message(MsgKind.WB, 7, src=2, dst=0, data=88, dirty=True, carries_data=True))
        entry = ctrl.entries[7]
        assert entry.owner is None and entry.data == 88
        deliver(sim, ctrl, inv_ack(7, src=1))
        assert net.of_kind(MsgKind.ACK_DONE)
        assert not entry.busy


class TestNotificationFlavors:
    def test_wb_leaves_plain_idle(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.WB, 7, src=1, dst=0, data=1, dirty=True, carries_data=True))
        entry = ctrl.entries[7]
        assert entry.state == DIR_IDLE and entry.idle_flavor == FLAVOR_PLAIN

    def test_si_notify_from_owner_leaves_idle_x(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, getx(7, src=1))
        deliver(
            sim, ctrl,
            Message(MsgKind.SI_NOTIFY, 7, src=1, dst=0, data=1, dirty=True, si_marked=True, carries_data=True),
        )
        entry = ctrl.entries[7]
        assert entry.state == DIR_IDLE and entry.idle_flavor == FLAVOR_X

    def test_si_notify_from_last_sharer_leaves_idle_s(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.SI_NOTIFY, 7, src=1, dst=0, si_marked=True))
        entry = ctrl.entries[7]
        assert entry.state == DIR_IDLE and entry.idle_flavor == FLAVOR_S

    def test_replacement_of_marked_block_leaves_idle_si(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.REPL, 7, src=1, dst=0, si_marked=True))
        entry = ctrl.entries[7]
        assert entry.state == DIR_IDLE and entry.idle_flavor == FLAVOR_SI

    def test_replacement_of_normal_block_leaves_plain_idle(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.REPL, 7, src=1, dst=0))
        assert ctrl.entries[7].idle_flavor == FLAVOR_PLAIN

    def test_partial_replacement_keeps_shared(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        deliver(sim, ctrl, Message(MsgKind.REPL, 7, src=1, dst=0))
        entry = ctrl.entries[7]
        assert entry.state == DIR_SHARED and entry.sharer_list() == [2]

    def test_unknown_notification_counted_stale(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, Message(MsgKind.REPL, 7, src=3, dst=0))
        assert ctrl.stale_messages == 1


class TestDSIResponses:
    def test_read_from_exclusive_marks_and_enters_shared_si(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        deliver(sim, ctrl, inv_ack(7, src=1, data=0))
        data = net.of_kind(MsgKind.DATA)[0]
        assert data.si
        entry = ctrl.entries[7]
        assert entry.state == DIR_SHARED and entry.shared_si
        # subsequent readers also get marked blocks
        deliver(sim, ctrl, gets(7, src=3))
        assert net.of_kind(MsgKind.DATA)[-1].si

    def test_home_node_never_marked(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES, node=0)
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, gets(7, src=0))  # the home node itself
        deliver(sim, ctrl, inv_ack(7, src=1, data=0))
        data = net.of_kind(MsgKind.DATA)[0]
        assert not data.si

    def test_sc_sole_sharer_upgrade_not_marked(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, upgrade(7, src=1))
        grant = net.of_kind(MsgKind.UPGRADE_ACK)[0]
        assert not grant.si

    def test_wc_sole_sharer_upgrade_marked(self):
        """§4.1: the special case is not needed under weak consistency."""
        sim, ctrl, net = make_dir(consistency=Consistency.WC, identify=IdentifyScheme.STATES)
        deliver(sim, ctrl, gets(7, src=1))
        deliver(sim, ctrl, upgrade(7, src=1))
        grant = net.of_kind(MsgKind.UPGRADE_ACK)[0]
        assert grant.si  # state was Shared -> marked

    def test_version_attached_to_responses(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.VERSION)
        deliver(sim, ctrl, getx(7, src=1))
        grant = net.last()
        assert grant.version == 1  # bumped by the exclusive grant

    def test_version_mismatch_marks_read(self):
        sim, ctrl, net = make_dir(identify=IdentifyScheme.VERSION)
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.WB, 7, src=1, dst=0, data=0, dirty=True, carries_data=True))
        deliver(sim, ctrl, gets(7, src=2, version=0))  # dir version is now 1
        data = net.of_kind(MsgKind.DATA)[0]
        assert data.si

    def test_tearoff_grant_not_tracked(self):
        sim, ctrl, net = make_dir(
            consistency=Consistency.WC, identify=IdentifyScheme.VERSION, tearoff=True
        )
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.WB, 7, src=1, dst=0, data=0, dirty=True, carries_data=True))
        deliver(sim, ctrl, gets(7, src=2, version=0))
        data = net.of_kind(MsgKind.DATA)[0]
        assert data.si and data.tearoff
        entry = ctrl.entries[7]
        assert not entry.has_sharer(2)

    def test_tearoff_write_needs_no_invalidation(self):
        sim, ctrl, net = make_dir(
            consistency=Consistency.WC, identify=IdentifyScheme.VERSION, tearoff=True
        )
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, Message(MsgKind.WB, 7, src=1, dst=0, data=0, dirty=True, carries_data=True))
        deliver(sim, ctrl, gets(7, src=2, version=0))  # tear-off copy to 2
        net.sent.clear()
        deliver(sim, ctrl, getx(7, src=3))
        assert not net.of_kind(MsgKind.INV)
        (grant,) = net.of_kind(MsgKind.DATA_EX)
        assert not grant.acks_pending


class TestDiagnostics:
    def test_busy_entries_reported(self):
        sim, ctrl, net = make_dir()
        deliver(sim, ctrl, getx(7, src=1))
        deliver(sim, ctrl, gets(7, src=2))
        assert "busy" in ctrl.deadlock_diagnostic()
        deliver(sim, ctrl, inv_ack(7, src=1, data=0))
        assert ctrl.deadlock_diagnostic() is None

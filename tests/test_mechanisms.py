"""Unit tests for the cache-side self-invalidation mechanisms (§4.2)."""

import pytest

from repro.config import SIMechanism, SystemConfig
from repro.core.mechanisms import FifoMechanism, SyncFlushMechanism, make_mechanism
from repro.errors import ConfigError
from repro.memory.cache import Cache, SHARED

KB = 1024


def make_cache():
    return Cache(SystemConfig(cache_size=8 * KB), node=0)


def si_fill(cache, block):
    frame, _ = cache.fill(block, SHARED, data=0, s_bit=True)
    return frame


class TestSyncFlush:
    def test_never_invalidates_early(self):
        cache = make_cache()
        mech = SyncFlushMechanism(cache)
        for block in range(100):
            assert mech.on_si_fill(si_fill(cache, block)) is None

    def test_sync_frames_returns_all_marked(self):
        cache = make_cache()
        mech = SyncFlushMechanism(cache)
        frames = [si_fill(cache, block) for block in range(10)]
        assert set(mech.sync_frames()) == set(frames)

    def test_unmarked_blocks_not_flushed(self):
        cache = make_cache()
        mech = SyncFlushMechanism(cache)
        si_fill(cache, 1)
        cache.fill(2, SHARED, data=0)  # normal block
        assert {f.tag for f in mech.sync_frames()} == {1}

    def test_invalidated_block_not_flushed(self):
        cache = make_cache()
        mech = SyncFlushMechanism(cache)
        frame = si_fill(cache, 1)
        cache.invalidate(frame)
        assert mech.sync_frames() == []


class TestFifo:
    def test_no_overflow_below_capacity(self):
        cache = make_cache()
        mech = FifoMechanism(cache, capacity=4)
        for block in range(4):
            assert mech.on_si_fill(si_fill(cache, block)) is None
        assert mech.overflows == 0

    def test_overflow_returns_oldest(self):
        cache = make_cache()
        mech = FifoMechanism(cache, capacity=2)
        si_fill(cache, 0)
        mech.on_si_fill(cache.lookup(0, touch=False))
        si_fill(cache, 1)
        mech.on_si_fill(cache.lookup(1, touch=False))
        victim = mech.on_si_fill(si_fill(cache, 2))
        assert victim is not None and victim.tag == 0
        assert mech.overflows == 1

    def test_stale_entry_skipped(self):
        cache = make_cache()
        mech = FifoMechanism(cache, capacity=1)
        frame0 = si_fill(cache, 0)
        mech.on_si_fill(frame0)
        cache.invalidate(frame0)  # block 0 left the cache already
        victim = mech.on_si_fill(si_fill(cache, 1))
        assert victim is None

    def test_sync_flush_drains_fifo(self):
        cache = make_cache()
        mech = FifoMechanism(cache, capacity=8)
        frames = []
        for block in range(4):
            frame = si_fill(cache, block)
            mech.on_si_fill(frame)
            frames.append(frame)
        flushed = mech.sync_frames()
        assert set(flushed) == set(frames)
        assert not mech.fifo

    def test_sync_flush_sweeps_marked_blocks_missing_from_fifo(self):
        cache = make_cache()
        mech = FifoMechanism(cache, capacity=8)
        frame = si_fill(cache, 42)  # marked but never recorded
        assert frame in set(mech.sync_frames())

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            FifoMechanism(make_cache(), capacity=0)


class TestFactory:
    def test_dispatch(self):
        cache = make_cache()
        sync = make_mechanism(SystemConfig(), cache)
        assert isinstance(sync, SyncFlushMechanism)
        fifo = make_mechanism(SystemConfig(si_mechanism=SIMechanism.FIFO, fifo_entries=7), cache)
        assert isinstance(fifo, FifoMechanism)
        assert fifo.capacity == 7

"""End-to-end races exercised through whole machines.

The directory unit tests (test_directory.py) inject crafted message
sequences; these tests instead construct *programs* whose natural timing
produces the races, so the cache-controller side participates too.
"""


from conftest import seg_addr, tiny_config, two_proc_program
from repro.config import Consistency, IdentifyScheme, SIMechanism
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program

KB = 1024


class TestWritebackRaces:
    def evict_config(self, **over):
        # Tiny direct-mapped cache so replacements happen constantly.
        return tiny_config(cache_size=256, cache_assoc=1, **over)

    def test_late_writeback_then_reread(self):
        """Write a block, evict it with conflicting fills, re-read it —
        the GETS chases the WB through the directory."""
        builder = TraceBuilder()
        target = seg_addr(1)  # remote home: real network timing
        builder.write(target)
        for i in range(1, 9):
            builder.read(seg_addr(1, i * 256))  # march over all 8 sets
        builder.read(target)
        program = Program("chase", [builder.build(), TraceBuilder().build()])
        machine = Machine(self.evict_config(), program)
        result = machine.run()
        entry = machine.directories[1].entries[target >> 5]
        assert entry.has_sharer(0)
        assert result.messages.network["WB"] >= 1

    def test_eviction_storm_under_contention(self):
        """Two processors thrash a direct-mapped cache over shared blocks
        while invalidations fly; the protocol must stay consistent."""

        def build(b0, b1, ctx):
            for round_id in range(6):
                for i in range(6):
                    b0.write(seg_addr(0, i * 256))
                    b1.read(seg_addr(0, i * 256))
                ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(self.evict_config(), program).run()
        assert result.misses.replacements > 0
        assert result.misses.explicit_invalidations > 0

    def test_dsi_flush_racing_invalidation(self):
        """Self-invalidations crossing in-flight INVs (the fixed
        ack-aliasing race) exercised end-to-end: heavy write sharing with
        frequent sync flushes under DSI."""

        def build(b0, b1, ctx):
            lock = seg_addr(0, 4096)
            for round_id in range(8):
                for i in range(4):
                    b0.write(seg_addr(1, i * 32))
                    b1.write(seg_addr(1, i * 32))
                b0.lock(lock)
                b0.unlock(lock)
                b1.lock(lock)
                b1.unlock(lock)
                ctx.barrier_all()

        program = two_proc_program(build)
        for scheme in (IdentifyScheme.STATES, IdentifyScheme.VERSION):
            result = Machine(tiny_config(identify=scheme), program).run()
            assert result.misses.self_invalidations > 0


class TestPinnedSetExhaustion:
    def test_deferred_fill_when_all_ways_pinned(self):
        """Four outstanding upgrades in one set pin every frame; a
        concurrent read fill must defer and complete once a pin drops."""
        config = tiny_config(
            n_procs=2,
            cache_size=4 * 32 * 2,  # 2 sets, 4-way
            cache_assoc=4,
            consistency=Consistency.WC,
        )
        n_sets = 2
        builders = [TraceBuilder(), TraceBuilder()]
        same_set = [seg_addr(1, i * 32 * n_sets) for i in range(5)]
        # Read everything shared first (so writes become upgrades), then
        # upgrade four blocks at once and read a fifth mapping to the set.
        for addr in same_set:
            builders[0].read(addr)
        builders[0].compute(2000)
        for addr in same_set[:4]:
            builders[0].write(addr)
        builders[0].read(same_set[4])
        for builder in builders:
            builder.barrier(0)
        program = Program("pins", [b.build() for b in builders])
        result = Machine(config, program).run()
        # Liveness is the point: the run completes and the read finished.
        assert result.exec_time > 0


class TestVersionWraparound:
    def test_wraparound_is_harmless(self):
        """With a 1-bit version, every second write aliases back to the
        reader's stored version: DSI mis-predicts but stays correct."""

        def build(b0, b1, ctx):
            addr = seg_addr(0)
            for round_id in range(9):
                ctx.barrier_all()
                b0.write(addr)
                ctx.barrier_all()
                b1.read(addr)
            ctx.barrier_all()

        program = two_proc_program(build)
        narrow = Machine(
            tiny_config(identify=IdentifyScheme.VERSION, version_bits=1), program
        ).run()
        wide = Machine(
            tiny_config(identify=IdentifyScheme.VERSION, version_bits=8), program
        ).run()
        # Both finish correctly (monitor on); the narrow version merely
        # marks less (aliased reads look unchanged).
        assert narrow.misses.si_marked_fills <= wide.misses.si_marked_fills

    def test_wide_version_marks_every_round(self):
        def build(b0, b1, ctx):
            addr = seg_addr(0)
            for round_id in range(6):
                ctx.barrier_all()
                b0.write(addr)
                ctx.barrier_all()
                b1.read(addr)
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(
            tiny_config(identify=IdentifyScheme.VERSION, version_bits=8), program
        ).run()
        # Rounds 2.. all mismatch: five marked fills.
        assert result.misses.si_marked_fills == 5


class TestMeshThroughMachine:
    def test_machine_on_mesh(self):
        from repro.network.topology import MeshNetwork

        def build(b0, b1, ctx):
            for i in range(4):
                b0.write(seg_addr(1, 32 * i))
                b1.read(seg_addr(0, 32 * i))
                ctx.barrier_all()

        program = two_proc_program(build)
        mesh = Machine(tiny_config(), program, network_cls=MeshNetwork).run()
        flat = Machine(tiny_config(), program).run()
        assert mesh.exec_time > 0
        assert mesh.messages.total_network() == flat.messages.total_network()


class TestUpgradeRaceEndToEnd:
    def test_competing_upgrades(self):
        """Both processors hold the block shared and upgrade at once: one
        wins, the other is invalidated mid-upgrade and receives data."""

        def build(b0, b1, ctx):
            addr = seg_addr(0)
            ctx.barrier_all()
            b0.read(addr)
            b1.read(addr)
            ctx.barrier_all()
            b0.write(addr)
            b1.write(addr)
            ctx.barrier_all()

        program = two_proc_program(build)
        machine = Machine(tiny_config(), program)
        result = machine.run()
        # Exactly one exclusive holder at the end.
        block = seg_addr(0) >> 5
        holders = [
            node
            for node, controller in enumerate(machine.controllers)
            if (frame := controller.cache.lookup(block, touch=False)) is not None
            and frame.state == 2
        ]
        assert len(holders) == 1

    def test_upgrade_then_eviction_of_other_sharer(self):
        def build(b0, b1, ctx):
            addr = seg_addr(0)
            ctx.barrier_all()
            b0.read(addr)
            b1.read(addr)
            ctx.barrier_all()
            b0.write(addr)  # upgrade with one remote sharer
            ctx.barrier_all()

        program = two_proc_program(build)
        result = Machine(tiny_config(), program).run()
        assert result.misses.upgrades == 1
        # P0's upgrade waited for P1's invalidation.
        assert result.breakdowns[0].write_inval > 0


class TestFifoOverflowVsWriteGrant:
    """Regression: a stale FIFO entry must not self-invalidate a block whose
    write grant is in flight (hypothesis shrink of overrides4 in
    test_properties.py)."""

    def _program(self):
        a, b, lock = seg_addr(1), seg_addr(2), seg_addr(0, 4096)
        b0 = TraceBuilder()
        b0.read(a).read(b).barrier(0).barrier(1).write(b).read(a).write(b).barrier(2)
        b1 = TraceBuilder()
        b1.barrier(0).lock(lock).unlock(lock).barrier(1).write(b).barrier(2)
        b2 = TraceBuilder()
        b2.read(b).barrier(0).barrier(1).write(a).barrier(2)
        return Program("fifo-race", [b0.build(), b1.build(), b2.build()])

    def test_fifo_overflow_skips_in_flight_write(self):
        """Block B is s-marked and re-requested for writing; the DATA_EX
        fill re-enters B into the 2-entry FIFO, whose overflow pops a stale
        entry for B itself.  The just-granted exclusive copy must survive
        until the write is performed."""
        config = tiny_config(
            n_procs=3,
            identify=IdentifyScheme.VERSION,
            si_mechanism=SIMechanism.FIFO,
            fifo_entries=2,
        )
        result = Machine(config, self._program()).run()
        assert result.exec_time > 0
        # The overflow happened (the FIFO is genuinely too small) ...
        assert result.misses.fifo_overflows > 0
        # ... and every processor's cycles are still fully accounted for.
        for proc, finish in enumerate(result.per_proc_time):
            assert result.breakdowns[proc].total() == finish

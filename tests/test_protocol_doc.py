"""docs/PROTOCOL.md drift check: the generated transition tables in the
document must match a fresh render of the spec.  Fails with the
regeneration command whenever a table edit isn't propagated."""

from repro.coherence import docgen


def test_generated_tables_match_spec():
    path = docgen.default_path()
    document = path.read_text(encoding="utf-8")
    assert docgen.BEGIN in document and docgen.END in document
    assert docgen.inject(document) == document, (
        "docs/PROTOCOL.md is stale - run: python -m repro.coherence.docgen"
    )


def test_inject_replaces_only_the_generated_block():
    before = "prose above\n" + docgen.BEGIN + "\nold\n" + docgen.END + "\nprose below\n"
    after = docgen.inject(before)
    assert after.startswith("prose above\n")
    assert after.endswith("\nprose below\n")
    assert "\nold\n" not in after
    assert docgen.render() in after


def test_render_is_deterministic():
    assert docgen.render() == docgen.render()


def test_rendered_block_states_single_source_of_truth():
    """The generated block must tell readers that the tables drive both
    the interpreted controllers and the compiled dispatch layer — the
    note that keeps table edits from being applied to one path only."""
    text = docgen.render()
    assert "single source" in text
    assert "repro/coherence/compile.py" in text
    assert "repro.harness.equivalence" in text
    document = docgen.default_path().read_text(encoding="utf-8")
    assert "single source" in document


def test_render_covers_tardis_tables():
    """The Tardis family renders alongside the DSI reference variants,
    and its tables are invalidation-free: every INV/INV_ACK row is an
    **error** assertion (the home never invalidates) — WB_REQ is the
    only reclaim traffic."""
    text = docgen.render()
    for label in ("SC+TARDIS", "WC+TARDIS"):
        assert f"Cache controller — {label}" in text
        assert f"Directory controller — {label}" in text
        assert f"| {label} |" in text  # variant summary row
    start = text.index("Cache controller — SC+TARDIS")
    end = text.index("#### Variant summary")
    tardis_block = text[start:end]
    assert "WB_REQ" in tardis_block
    inv_rows = [
        line
        for line in tardis_block.splitlines()
        if "| INV |" in line or "| INV_ACK" in line
    ]
    assert inv_rows, "INV inputs must be asserted impossible, not absent"
    assert all("**error**" in line for line in inv_rows)

"""Migratory-data optimization (§2's complementary technique) and its
composition with DSI."""


from conftest import seg_addr, tiny_config
from repro.config import Consistency, IdentifyScheme
from repro.memory.cache import EXCLUSIVE
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.trace.ops import Program
from repro.workloads import migratory as migratory_workload
from repro.workloads import producer_consumer


def migratory_config(**over):
    return tiny_config(migratory=True, **over)


def read_modify_write_chain(rounds=4, n_procs=3):
    """Each processor in turn reads then writes the same block."""
    builders = [TraceBuilder() for _ in range(n_procs)]
    addr = seg_addr(0)
    barrier_id = 0
    for _round in range(rounds):
        for proc in range(n_procs):
            builders[proc].read(addr)
            builders[proc].write(addr)
            for builder in builders:
                builder.barrier(barrier_id)
            barrier_id += 1
    return Program("rmw", [b.build() for b in builders])


class TestDetection:
    def test_upgrades_vanish_after_detection(self):
        program = read_modify_write_chain()
        base = Machine(tiny_config(n_procs=3), program).run()
        optimized = Machine(migratory_config(n_procs=3), program).run()
        assert base.misses.upgrades > optimized.misses.upgrades
        assert optimized.exec_time < base.exec_time

    def test_read_receives_exclusive_copy(self):
        program = read_modify_write_chain(rounds=3)
        machine = Machine(migratory_config(n_procs=3), program)
        machine.run()
        block = seg_addr(0) >> 5
        entry = machine.directories[0].entries[block]
        assert entry.migratory
        # The last reader-writer holds it exclusive.
        frame = machine.controllers[entry.owner].cache.lookup(block, touch=False)
        assert frame is not None and frame.state == EXCLUSIVE

    def test_not_detected_for_plain_producer_consumer(self):
        """Consumers never write, so the pattern must not trigger."""
        program = producer_consumer(n_procs=3, blocks=4, iterations=4)
        machine = Machine(migratory_config(n_procs=3), program)
        machine.run()
        migratory_entries = [
            entry
            for directory in machine.directories
            for entry in directory.entries.values()
            if entry.migratory
        ]
        assert not migratory_entries

    def test_de_detection_when_reader_does_not_write(self):
        """After detection, a reader that never writes produces a clean
        invalidation acknowledgment, which resets the prediction."""
        builders = [TraceBuilder() for _ in range(3)]
        addr = seg_addr(0)
        barrier_id = 0

        def barrier():
            nonlocal barrier_id
            for builder in builders:
                builder.barrier(barrier_id)
            barrier_id += 1

        # Build the migratory pattern: P0 rmw, P1 rmw.
        builders[0].read(addr).write(addr)
        barrier()
        builders[1].read(addr).write(addr)
        barrier()
        # P2 only READS (gets an exclusive copy but never writes it)...
        builders[2].read(addr)
        barrier()
        # ... then P0 reads: the clean ack from P2 should clear the flag.
        builders[0].read(addr)
        barrier()
        program = Program("dedetect", [b.build() for b in builders])
        machine = Machine(migratory_config(n_procs=3), program)
        machine.run()
        entry = machine.directories[0].entries[addr >> 5]
        assert not entry.migratory

    def test_monitor_clean_with_migratory(self):
        program = migratory_workload(n_procs=3)
        Machine(migratory_config(n_procs=3), program).run()  # raises on violation


class TestComposition:
    def test_migratory_plus_dsi(self):
        """The paper's §2 claim: self-invalidation composes with the
        migratory optimization."""
        program = migratory_workload(n_procs=4, blocks=4, rounds=6)
        base = Machine(tiny_config(n_procs=4), program).run()
        combo = Machine(
            migratory_config(n_procs=4, identify=IdentifyScheme.VERSION), program
        ).run()
        assert combo.misses.upgrades < base.misses.upgrades
        assert combo.misses.self_invalidations > 0
        assert combo.exec_time < base.exec_time

    def test_migratory_under_wc(self):
        program = migratory_workload(n_procs=3)
        result = Machine(
            migratory_config(n_procs=3, consistency=Consistency.WC), program
        ).run()
        assert result.exec_time > 0

    def test_clean_exclusive_eviction_sends_repl(self):
        """A never-written migratory copy is clean: replacement must not
        pretend to write back data."""
        config = migratory_config(n_procs=3, cache_size=256, cache_assoc=1)
        builders = [TraceBuilder() for _ in range(3)]
        addr = seg_addr(0)
        builders[0].read(addr).write(addr)
        for builder in builders:
            builder.barrier(0)
        builders[1].read(addr).write(addr)
        for builder in builders:
            builder.barrier(1)
        builders[2].read(addr)  # exclusive clean copy via migratory grant
        for i in range(1, 9):  # evict it
            builders[2].read(seg_addr(2, i * 256))
        for builder in builders:
            builder.barrier(2)
        program = Program("cleanevict", [b.build() for b in builders])
        machine = Machine(config, program)
        result = machine.run()
        entry = machine.directories[0].entries[addr >> 5]
        assert entry.owner is None  # the clean REPL cleared ownership

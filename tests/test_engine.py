"""Unit tests for the discrete-event kernel."""

import pytest

from repro.engine.event_queue import EventQueue
from repro.engine.process import Process, Timeout, Waiter
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator
from repro.errors import DeadlockError, SimulationError


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        fired = []
        queue.push(30, fired.append, (30,))
        queue.push(10, fired.append, (10,))
        queue.push(20, fired.append, (20,))
        times = [queue.pop()[0] for _ in range(3)]
        assert times == [10, 20, 30]

    def test_fifo_within_same_time(self):
        queue = EventQueue()
        queue.push(5, "first", ())
        queue.push(5, "second", ())
        queue.push(5, "third", ())
        order = [queue.pop()[1] for _ in range(3)]
        assert order == ["first", "second", "third"]

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        assert len(queue) == 0
        queue.push(1, None, ())
        assert queue
        assert len(queue) == 1

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(42, None, ())
        queue.push(7, None, ())
        assert queue.peek_time() == 7

    def test_negative_time_rejected(self):
        queue = EventQueue()
        with pytest.raises(SimulationError):
            queue.push(-1, None, ())

    def test_clear(self):
        queue = EventQueue()
        queue.push(1, None, ())
        queue.clear()
        assert not queue


class TestSimulator:
    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(10, lambda: seen.append(sim.now))
        sim.schedule(25, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [10, 25]
        assert sim.now == 25

    def test_schedule_relative(self):
        sim = Simulator()
        seen = []

        def chain():
            seen.append(sim.now)
            if sim.now < 30:
                sim.schedule(10, chain)

        sim.schedule(10, chain)
        sim.run()
        assert seen == [10, 20, 30]

    def test_at_absolute(self):
        sim = Simulator()
        sim.schedule(5, lambda: sim.at(50, lambda: None))
        sim.run()
        assert sim.now == 50

    def test_at_in_past_rejected(self):
        sim = Simulator()

        def bad():
            sim.at(1, lambda: None)

        sim.schedule(10, bad)
        with pytest.raises(SimulationError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-5, lambda: None)

    def test_run_until(self):
        sim = Simulator()
        fired = []
        for t in (10, 20, 30):
            sim.schedule(t, fired.append, t)
        sim.run(until=20)
        assert fired == [10, 20]
        assert sim.now == 20
        sim.run()
        assert fired == [10, 20, 30]

    def test_step(self):
        sim = Simulator()
        fired = []
        sim.schedule(3, fired.append, "a")
        assert sim.step()
        assert fired == ["a"]
        assert not sim.step()

    def test_events_fired_counter(self):
        sim = Simulator()
        for t in range(5):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_fired == 5

    def test_max_events_guard(self):
        sim = Simulator(max_events=10)

        def forever():
            sim.schedule(1, forever)

        sim.schedule(1, forever)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run()

    def test_deadlock_hook_fires(self):
        sim = Simulator()
        sim.add_deadlock_hook(lambda: "stuck widget")
        sim.schedule(1, lambda: None)
        with pytest.raises(DeadlockError, match="stuck widget"):
            sim.run()

    def test_deadlock_hook_quiet_when_done(self):
        sim = Simulator()
        sim.add_deadlock_hook(lambda: None)
        sim.schedule(1, lambda: None)
        sim.run()  # no exception

    def test_run_not_reentrant(self):
        sim = Simulator()
        caught = []

        def inner():
            try:
                sim.run()
            except SimulationError as err:
                caught.append(err)

        sim.schedule(1, inner)
        sim.run()
        assert caught


class TestProcess:
    def test_timeout_resumes(self):
        sim = Simulator()
        log = []

        def proc():
            log.append(("start", sim.now))
            yield Timeout(5)
            log.append(("after", sim.now))

        Process(sim, proc())
        sim.run()
        assert log == [("start", 0), ("after", 5)]

    def test_waiter_passes_value(self):
        sim = Simulator()
        waiter = Waiter()
        got = []

        def proc():
            value = yield waiter
            got.append(value)

        Process(sim, proc())
        sim.schedule(10, waiter.trigger, "payload")
        sim.run()
        assert got == ["payload"]

    def test_waiter_already_fired(self):
        sim = Simulator()
        waiter = Waiter()
        waiter.trigger(99)
        got = []

        def proc():
            got.append((yield waiter))

        Process(sim, proc())
        sim.run()
        assert got == [99]

    def test_waiter_double_trigger_rejected(self):
        waiter = Waiter()
        waiter.trigger()
        with pytest.raises(SimulationError):
            waiter.trigger()

    def test_join(self):
        sim = Simulator()
        results = []

        def worker():
            yield Timeout(7)
            return "done"

        def watcher(process):
            result = yield process.join()
            results.append((sim.now, result))

        process = Process(sim, worker())
        Process(sim, watcher(process))
        sim.run()
        assert results == [(7, "done")]

    def test_join_after_completion(self):
        sim = Simulator()

        def empty():
            return
            yield  # pragma: no cover

        process = Process(sim, empty())
        sim.run()
        assert process.done
        waiter = process.join()
        assert waiter.fired

    def test_bad_yield_raises(self):
        sim = Simulator()

        def proc():
            yield 42

        Process(sim, proc())
        with pytest.raises(SimulationError):
            sim.run()


class TestResource:
    def test_serialises_jobs(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        done = []
        resource.submit(10, lambda: done.append(sim.now))
        resource.submit(10, lambda: done.append(sim.now))
        resource.submit(5, lambda: done.append(sim.now))
        sim.run()
        assert done == [10, 20, 25]

    def test_fifo_order(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        order = []
        for name in "abc":
            resource.submit(1, order.append, name)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_idle_then_busy_again(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        done = []
        resource.submit(5, lambda: done.append(sim.now))
        sim.run()
        resource.submit(5, lambda: done.append(sim.now))
        sim.run()
        assert done == [5, 10]

    def test_queue_length(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        for _ in range(3):
            resource.submit(10, lambda: None)
        assert resource.queue_length == 2

    def test_wait_cycles_accumulate(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        resource.submit(10, lambda: None)
        resource.submit(10, lambda: None)  # waits 10
        sim.run()
        assert resource.wait_cycles == 10
        assert resource.busy_cycles == 20
        assert resource.jobs == 2

    def test_utilisation(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        resource.submit(10, lambda: None)
        sim.schedule(40, lambda: None)
        sim.run()
        assert resource.utilisation() == pytest.approx(0.25)

    def test_zero_duration_job(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        done = []
        resource.submit(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0]

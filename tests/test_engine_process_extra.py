"""Additional engine coverage: process composition, resource chains,
and simulator interplay used by examples."""

import pytest

from repro.engine.process import Process, Timeout, Waiter
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator


class TestProcessComposition:
    def test_pipeline_of_processes(self):
        """Producer hands values to a consumer through waiters."""
        sim = Simulator()
        handoffs = [Waiter() for _ in range(3)]
        log = []

        def producer():
            for index, waiter in enumerate(handoffs):
                yield Timeout(10)
                waiter.trigger(index)

        def consumer():
            for waiter in handoffs:
                value = yield waiter
                log.append((sim.now, value))

        Process(sim, producer())
        Process(sim, consumer())
        sim.run()
        assert log == [(10, 0), (20, 1), (30, 2)]

    def test_fork_join(self):
        sim = Simulator()
        results = []

        def worker(delay, tag):
            yield Timeout(delay)
            return tag

        def coordinator():
            workers = [Process(sim, worker(d, t)) for d, t in ((30, "slow"), (10, "fast"))]
            for process in workers:
                value = yield process.join()
                results.append((sim.now, value))

        Process(sim, coordinator())
        sim.run()
        # Joins in order: waits for slow (30) first, fast already done.
        assert results == [(30, "slow"), (30, "fast")]

    def test_zero_timeout(self):
        sim = Simulator()
        log = []

        def proc():
            yield Timeout(0)
            log.append(sim.now)

        Process(sim, proc())
        sim.run()
        assert log == [0]

    def test_many_processes_deterministic(self):
        def run_once():
            sim = Simulator()
            order = []

            def proc(tag, delay):
                yield Timeout(delay)
                order.append(tag)

            for i in range(20):
                Process(sim, proc(i, (i * 7) % 5))
            sim.run()
            return order

        assert run_once() == run_once()


class TestResourceChains:
    def test_resource_feeding_resource(self):
        """Two stages in series: completion of stage 1 submits stage 2."""
        sim = Simulator()
        stage1 = Resource(sim, "s1")
        stage2 = Resource(sim, "s2")
        finished = []

        def into_stage2(tag):
            stage2.submit(5, lambda: finished.append((tag, sim.now)))

        for tag in range(3):
            stage1.submit(10, into_stage2, tag)
        sim.run()
        # stage1 completes at 10/20/30; stage2 5 cycles later each (no
        # overlap conflicts since stage2 jobs are shorter).
        assert [t for (_tag, t) in sorted(finished, key=lambda x: x[1])] == [15, 25, 35]

    def test_resource_stats_after_chain(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        for _ in range(4):
            resource.submit(5, lambda: None)
        sim.run()
        assert resource.busy_cycles == 20
        assert not resource.busy

    def test_submit_during_service(self):
        sim = Simulator()
        resource = Resource(sim, "r")
        done = []

        def first():
            resource.submit(5, lambda: done.append(("second", sim.now)))
            done.append(("first", sim.now))

        resource.submit(10, first)
        sim.run()
        assert done == [("first", 10), ("second", 15)]


class TestSimulatorEdges:
    def test_callback_exception_propagates(self):
        sim = Simulator()

        def boom():
            raise ValueError("bang")

        sim.schedule(1, boom)
        with pytest.raises(ValueError, match="bang"):
            sim.run()

    def test_run_after_exception_possible(self):
        sim = Simulator()
        sim.schedule(1, lambda: (_ for _ in ()).throw(ValueError()))
        with pytest.raises(ValueError):
            sim.run()
        fired = []
        sim.schedule(1, lambda: fired.append(sim.now))
        sim.run()
        assert fired  # the simulator is reusable after a callback error

    def test_until_boundary_inclusive(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 10)
        sim.run(until=10)
        assert fired == [10]

    def test_until_does_not_drop_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, fired.append, 10)
        sim.schedule(20, fired.append, 20)
        sim.run(until=15)
        assert fired == [10]
        sim.run(until=25)
        assert fired == [10, 20]

"""Trace encoding, builder, validation and IO."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.builder import TraceBuilder
from repro.trace.io import load_program, save_program
from repro.trace.ops import (
    OP_BARRIER,
    OP_LOCK,
    OP_READ,
    OP_UNLOCK,
    OP_WRITE,
    Program,
    Trace,
)


class TestBuilder:
    def test_compute_accumulates_into_gap(self):
        trace = TraceBuilder().compute(5).compute(7).read(0x40).build()
        assert trace.op(0) == (12, OP_READ, 0x40)

    def test_sequence(self):
        trace = (
            TraceBuilder()
            .read(0x40)
            .compute(3)
            .write(0x80)
            .lock(0x100)
            .unlock(0x100)
            .barrier(2)
            .build()
        )
        assert list(trace.kinds) == [OP_READ, OP_WRITE, OP_LOCK, OP_UNLOCK, OP_BARRIER]
        assert trace.op(1) == (3, OP_WRITE, 0x80)
        assert trace.op(4) == (0, OP_BARRIER, 2)

    def test_ranges(self):
        trace = TraceBuilder().read_range(0, 128, 32).write_range(0, 64, 32).build()
        counts = trace.counts()
        assert counts == {"read": 4, "write": 2}

    def test_negative_compute_rejected(self):
        with pytest.raises(TraceError):
            TraceBuilder().compute(-1)

    def test_len(self):
        builder = TraceBuilder().read(0).write(0)
        assert len(builder) == 2


class TestTrace:
    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            Trace([0], [OP_READ, OP_READ], [0, 0])

    def test_negative_gap_rejected(self):
        with pytest.raises(TraceError):
            Trace([-1], [OP_READ], [0])

    def test_counts_and_totals(self):
        trace = TraceBuilder().compute(10).read(0).compute(5).barrier(0).build()
        assert trace.total_compute() == 15
        assert trace.barrier_count() == 1

    def test_empty_trace(self):
        trace = TraceBuilder().build()
        assert len(trace) == 0
        assert trace.counts() == {}


class TestProgramValidation:
    def test_unbalanced_barriers_rejected(self):
        t0 = TraceBuilder().barrier(0).build()
        t1 = TraceBuilder().build()
        with pytest.raises(TraceError, match="unbalanced barriers"):
            Program("bad", [t0, t1])

    def test_double_lock_rejected(self):
        trace = TraceBuilder().lock(64).lock(64).build()
        with pytest.raises(TraceError, match="acquired twice"):
            Program("bad", [trace])

    def test_unlock_without_lock_rejected(self):
        trace = TraceBuilder().unlock(64).build()
        with pytest.raises(TraceError, match="not held"):
            Program("bad", [trace])

    def test_lock_held_at_end_rejected(self):
        trace = TraceBuilder().lock(64).build()
        with pytest.raises(TraceError, match="still held"):
            Program("bad", [trace])

    def test_lock_reacquire_ok(self):
        trace = TraceBuilder().lock(64).unlock(64).lock(64).unlock(64).build()
        Program("ok", [trace])

    def test_empty_program_rejected(self):
        with pytest.raises(TraceError):
            Program("bad", [])

    def test_describe(self):
        trace = TraceBuilder().read(0).barrier(0).build()
        program = Program("p", [trace], meta={"x": 1})
        description = program.describe()
        assert description["name"] == "p"
        assert description["n_procs"] == 1
        assert description["total_ops"] == 2
        assert description["x"] == 1


class TestIO:
    def test_roundtrip(self, tmp_path):
        traces = [
            TraceBuilder().compute(5).read(64).write(64).barrier(0).build(),
            TraceBuilder().read(128).barrier(0).build(),
        ]
        program = Program("roundtrip", traces, home="round-robin", meta={"seed": 3})
        path = tmp_path / "program.npz"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.name == "roundtrip"
        assert loaded.home == "round-robin"
        assert loaded.meta == {"seed": 3}
        assert loaded.n_procs == 2
        for original, restored in zip(program.traces, loaded.traces):
            assert np.array_equal(original.gaps, restored.gaps)
            assert np.array_equal(original.kinds, restored.kinds)
            assert np.array_equal(original.addrs, restored.addrs)

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(TraceError):
            load_program(path)

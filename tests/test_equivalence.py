"""Interpreted-vs-compiled equivalence (tier-1 slice of the proof).

The full proof — every variant of
:func:`repro.harness.equivalence.all_variants` on every paper workload —
runs via ``python -m repro.harness.equivalence`` (CI's bench job and the
``DSI_EQUIV_FULL=1`` gate below).  Here a representative spine of the
variant space runs on two workloads at small scale so the tier-1 suite
catches a divergence in seconds.
"""

import os

import pytest

from repro.coherence.variants import ProtocolVariant, TearoffMode
from repro.config import IdentifyScheme, SIMechanism
from repro.harness import equivalence
from repro.harness.configs import WORKLOADS, workload_args

#: Spine of the variant space: base protocols, both identification
#: schemes the paper evaluates, both SI mechanisms, both tear-off modes,
#: migratory, and Tardis.
SPINE = [
    ProtocolVariant(),  # SC base
    ProtocolVariant(wc=True),  # WC base
    ProtocolVariant(identify=IdentifyScheme.VERSION, mechanism=SIMechanism.SYNC_FLUSH),
    ProtocolVariant(identify=IdentifyScheme.VERSION, mechanism=SIMechanism.FIFO),
    ProtocolVariant(
        identify=IdentifyScheme.STATES,
        mechanism=SIMechanism.SYNC_FLUSH,
        tearoff=TearoffMode.SC,
    ),
    ProtocolVariant(
        wc=True,
        identify=IdentifyScheme.VERSION,
        mechanism=SIMechanism.SYNC_FLUSH,
        tearoff=TearoffMode.WC,
    ),
    ProtocolVariant(
        identify=IdentifyScheme.VERSION,
        mechanism=SIMechanism.SYNC_FLUSH,
        migratory=True,
    ),
    ProtocolVariant(tardis=True),
]

WORKLOAD_SLICE = ("em3d", "sparse")
PROCS = 4


@pytest.mark.parametrize("variant", SPINE, ids=lambda v: v.describe())
@pytest.mark.parametrize("workload", WORKLOAD_SLICE)
def test_compiled_paths_bit_identical(variant, workload):
    config = equivalence.config_for_variant(variant, n_procs=PROCS)
    wl_args = workload_args(workload, quick=True, n_procs=PROCS)
    equal, diffs = equivalence.check_pair(workload, config, wl_args)
    assert equal, f"{variant.describe()}/{workload} diverged on: {', '.join(diffs)}"


def test_config_for_variant_roundtrips_every_variant():
    variants = equivalence.all_variants()
    # 22 structural combinations per migratory setting + SC/WC Tardis.
    assert len(variants) == 46
    for variant in variants:
        config = equivalence.config_for_variant(variant)
        assert ProtocolVariant.from_config(config) == variant


def test_reference_config_flips_both_layers():
    config = equivalence.config_for_variant(ProtocolVariant())
    ref = equivalence.reference_config(config)
    assert config.compiled_dispatch and config.direct_execution
    assert not ref.compiled_dispatch and not ref.direct_execution
    # Everything else is untouched — same machine, different engine.
    assert ref.with_(compiled_dispatch=True, direct_execution=True) == config


@pytest.mark.skipif(
    not os.environ.get("DSI_EQUIV_FULL"),
    reason="full 46-variant x 5-workload sweep; set DSI_EQUIV_FULL=1",
)
def test_full_equivalence_sweep():
    failures = equivalence.sweep(workloads=WORKLOADS)
    assert not failures, failures

"""RunPool: parallel fan-out, persistent cache, runner integration."""

import os

import pytest

from repro.config import IdentifyScheme, SystemConfig
from repro.harness.experiment import ExperimentRunner
from repro.harness.runpool import ResultCache, RunPool, code_fingerprint
from repro.harness.runspec import RunSpec


def _specs():
    """A small batch: the write_conflict micro-program under four configs."""
    out = []
    for identify in (IdentifyScheme.NONE, IdentifyScheme.VERSION):
        for rounds in (1, 2):
            config = SystemConfig(n_processors=3, identify=identify, quantum=1)
            out.append(
                RunSpec.create("write_conflict", config, n_procs=3, conflict=True, rounds=rounds)
            )
    return out


def _dicts(records):
    """Measured quantities per spec (wall-time telemetry is volatile and
    excluded, matching RunRecord equality)."""
    return {spec.key(): record._measured_dict() for spec, record in records.items()}


class TestParallelEquivalence:
    def test_jobs_4_matches_serial(self):
        specs = _specs()
        serial = RunPool(jobs=1).run_batch(specs)
        parallel = RunPool(jobs=4).run_batch(specs)
        assert _dicts(serial) == _dicts(parallel)

    def test_duplicate_specs_execute_once(self):
        spec = _specs()[0]
        pool = RunPool(jobs=1)
        records = pool.run_batch([spec, spec, spec])
        assert pool.executed == 1
        assert len(records) == 1

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            RunPool(jobs=0)


class TestResultCache:
    def test_cold_batch_executes_warm_batch_recalls(self, tmp_path):
        specs = _specs()
        cold = RunPool(jobs=1, cache_dir=str(tmp_path))
        first = cold.run_batch(specs)
        assert cold.executed == len(specs)
        assert cold.cache_hits == 0

        warm = RunPool(jobs=1, cache_dir=str(tmp_path))
        second = warm.run_batch(specs)
        assert warm.executed == 0
        assert warm.cache_hits == len(specs)
        assert _dicts(first) == _dicts(second)

    def test_code_fingerprint_change_invalidates(self, tmp_path):
        spec = _specs()[0]
        RunPool(jobs=1, cache_dir=str(tmp_path)).run(spec)
        edited = RunPool(jobs=1, cache_dir=str(tmp_path), fingerprint="f" * 64)
        edited.run(spec)
        assert edited.executed == 1
        assert edited.cache_hits == 0

    def test_different_config_misses(self, tmp_path):
        base, dsi = _specs()[0], _specs()[2]
        pool = RunPool(jobs=1, cache_dir=str(tmp_path))
        pool.run(base)
        pool.run(dsi)
        assert pool.executed == 2

    def test_no_cache_dir_writes_nothing(self, tmp_path):
        pool = RunPool(jobs=1, cache_dir=str(tmp_path), use_cache=False)
        pool.run(_specs()[0])
        assert pool.executed == 1
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_cache_entry_reexecutes(self, tmp_path):
        spec = _specs()[0]
        pool = RunPool(jobs=1, cache_dir=str(tmp_path))
        pool.run(spec)
        path = pool.cache.path_for(spec)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        retry = RunPool(jobs=1, cache_dir=str(tmp_path))
        retry.run(spec)
        assert retry.executed == 1
        assert retry.cache_hits == 0

    def test_cache_layout_is_content_addressed(self, tmp_path):
        spec = _specs()[0]
        cache = ResultCache(str(tmp_path))
        path = cache.path_for(spec)
        assert code_fingerprint()[:16] in path
        assert os.path.basename(path) == spec.key() + ".json"

    def test_fingerprint_is_stable_and_hex(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 64
        int(code_fingerprint(), 16)

    def test_fingerprint_folds_in_execution_mode(self, monkeypatch):
        from repro.harness import runpool

        monkeypatch.delenv("DSI_NO_FASTPATH", raising=False)
        monkeypatch.delenv("DSI_MODE", raising=False)
        fast = code_fingerprint()
        monkeypatch.setenv("DSI_NO_FASTPATH", "1")
        reference = code_fingerprint()
        assert fast != reference
        assert fast == runpool._FINGERPRINTS[("fast", "default")]
        assert reference == runpool._FINGERPRINTS[("reference", "default")]

    def test_fingerprint_folds_in_engine_mode(self, monkeypatch):
        # DSI_MODE selects the transaction-retirement engine after spec
        # construction, so each engine must cache separately.
        monkeypatch.delenv("DSI_NO_FASTPATH", raising=False)
        monkeypatch.delenv("DSI_MODE", raising=False)
        default = code_fingerprint()
        monkeypatch.setenv("DSI_MODE", "relaxed")
        relaxed = code_fingerprint()
        monkeypatch.setenv("DSI_MODE", "reference")
        reference = code_fingerprint()
        assert len({default, relaxed, reference}) == 3

    def test_fingerprint_ignores_telemetry_env(self, monkeypatch):
        # Unlike the execution-mode knobs above, observability settings
        # never change simulation results — they must not bust the cache.
        from repro.harness import runpool

        monkeypatch.delenv("DSI_NO_FASTPATH", raising=False)
        monkeypatch.delenv("DSI_MODE", raising=False)
        monkeypatch.delenv("DSI_LOG", raising=False)
        monkeypatch.delenv("DSI_PROFILE", raising=False)
        base = code_fingerprint()
        monkeypatch.setenv("DSI_LOG", "/tmp/x.jsonl")
        monkeypatch.setenv("DSI_PROFILE", "cprofile")
        runpool._FINGERPRINTS.clear()
        try:
            assert code_fingerprint() == base
        finally:
            runpool._FINGERPRINTS.clear()


class TestRunnerIntegration:
    def test_prefetch_then_collect_no_extra_runs(self):
        runner = ExperimentRunner(n_procs=3, quick=True)
        base = SystemConfig(n_processors=3, quantum=1)
        specs = [
            runner.spec("write_conflict", base, n_procs=3, conflict=True, rounds=r)
            for r in (1, 2)
        ]
        runner.prefetch(specs)
        executed = runner.total_sim_runs
        assert executed == 2
        for spec in specs:
            runner.run_spec(spec)
        assert runner.total_sim_runs == executed  # collection is pure lookup

    def test_run_spec_memoizes_identity(self):
        runner = ExperimentRunner(n_procs=3, quick=True)
        spec = runner.spec(
            "write_conflict", SystemConfig(n_processors=3, quantum=1),
            n_procs=3, conflict=True, rounds=1,
        )
        first = runner.run_spec(spec)
        again = runner.run_spec(spec)
        assert first is again

    def test_runner_cache_round_trip(self, tmp_path):
        config = SystemConfig(n_processors=3, quantum=1)

        def sweep(**kwargs):
            runner = ExperimentRunner(n_procs=3, quick=True, **kwargs)
            record = runner.run("write_conflict", config, n_procs=3, conflict=True, rounds=1)
            return runner, record

        cold_runner, cold = sweep(cache_dir=str(tmp_path))
        warm_runner, warm = sweep(cache_dir=str(tmp_path))
        assert cold_runner.total_sim_runs == 1
        assert warm_runner.total_sim_runs == 0
        assert warm_runner.cache_hits == 1
        assert warm == cold


class TestRunTelemetry:
    def test_executed_records_carry_timing(self):
        pool = RunPool(jobs=1)
        record = pool.run(_specs()[0])
        assert record.wall_time_s is not None and record.wall_time_s > 0
        assert record.sim_cycles_per_s == pytest.approx(
            record.exec_time / record.wall_time_s
        )

    def test_timing_survives_parallel_workers(self):
        records = RunPool(jobs=4).run_batch(_specs())
        assert all(r.wall_time_s is not None for r in records.values())

    def test_timing_excluded_from_equality(self):
        pool = RunPool(jobs=1)
        spec = _specs()[0]
        first = pool.run(spec)
        second = RunPool(jobs=1).run(spec)
        second.wall_time_s = (first.wall_time_s or 0) + 100.0
        assert first == second

    def test_degenerate_wall_times_yield_none_rate(self):
        # A sub-resolution timer can hand set_timing zero (or garbage);
        # the rate must come out None — never a raise, never inf/nan in
        # the BENCH JSON.
        record = RunPool(jobs=1).run(_specs()[0])
        for wall in (0.0, -1.0, None, float("inf"), float("nan")):
            record.set_timing(wall)
            assert record.sim_cycles_per_s is None
            assert record.wall_time_s is wall or record.wall_time_s == wall
        # And a sane wall time restores a finite rate.
        record.set_timing(2.0)
        assert record.sim_cycles_per_s == pytest.approx(record.exec_time / 2.0)

    def test_zero_exec_time_rate_is_finite_or_none(self):
        record = RunPool(jobs=1).run(_specs()[0])
        record.exec_time = 0
        record.set_timing(0.5)
        assert record.sim_cycles_per_s == 0

    def test_cached_records_keep_original_timing(self, tmp_path):
        spec = _specs()[0]
        cold = RunPool(jobs=1, cache_dir=str(tmp_path)).run(spec)
        warm = RunPool(jobs=1, cache_dir=str(tmp_path)).run(spec)
        assert warm.wall_time_s == pytest.approx(cold.wall_time_s)

    def test_manifest_lists_every_run(self, tmp_path):
        specs = _specs()
        cold = RunPool(jobs=1, cache_dir=str(tmp_path))
        cold.run_batch(specs)
        manifest = cold.manifest()
        assert manifest["executed"] == len(specs)
        assert manifest["cache_hits"] == 0
        assert len(manifest["runs"]) == len(specs)
        entry = manifest["runs"][0]
        assert entry["workload"] == "write_conflict"
        assert entry["cached"] is False
        assert entry["wall_time_s"] > 0
        assert entry["sim_cycles_per_s"] > 0

        warm = RunPool(jobs=1, cache_dir=str(tmp_path))
        warm.run_batch(specs)
        warm_manifest = warm.manifest()
        assert warm_manifest["cache_hits"] == len(specs)
        assert all(entry["cached"] for entry in warm_manifest["runs"])


class TestCliJson:
    def test_experiment_json(self, capsys):
        import json

        from repro.harness import cli

        assert cli.main(["figure2", "--json", "--jobs", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiments"][0]["experiment_id"] == "figure2"
        assert payload["experiments"][0]["row_dicts"]
        assert payload["meta"]["simulation_runs"] > 0
        assert payload["meta"]["jobs"] == 1
        manifest = payload["run_manifest"]
        assert manifest["executed"] + manifest["cache_hits"] == len(manifest["runs"])
        assert all("wall_time_s" in entry for entry in manifest["runs"])

    def test_run_json(self, capsys):
        import json

        from repro.harness import cli

        assert cli.main(
            ["run", "--workload", "em3d", "--protocol", "V",
             "--procs", "4", "--quick", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["record"]["exec_time"] > 0
        assert payload["protocol"] == "SC+DSI(V)"
        assert payload["record"]["wall_time_s"] > 0
        assert payload["record"]["sim_cycles_per_s"] > 0

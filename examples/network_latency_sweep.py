#!/usr/bin/env python
"""The paper's closing claim: slower networks make DSI more valuable.

Sweeps the constant network latency from 50 to 2000 cycles on the Sparse
workload and reports the normalized execution time of weak consistency
and DSI at each point (cf. §5.2 "Impact of Network Latency" and the
conclusion's networks-of-workstations argument).

Run:  python examples/network_latency_sweep.py
"""

from repro import format_table
from repro.harness.configs import LARGE_CACHE, paper_config, workload_args
from repro.system import Machine
from repro.workloads import by_name

LATENCIES = (50, 100, 250, 500, 1000, 2000)


def main(workload="sparse", n_procs=8):
    program = by_name(workload, **workload_args(workload, quick=True, n_procs=n_procs))
    rows = []
    for latency in LATENCIES:
        base = Machine(
            paper_config("SC", cache=LARGE_CACHE, latency=latency, n_procs=n_procs), program
        ).run()
        weak = Machine(
            paper_config("W", cache=LARGE_CACHE, latency=latency, n_procs=n_procs), program
        ).run()
        dsi = Machine(
            paper_config("V", cache=LARGE_CACHE, latency=latency, n_procs=n_procs), program
        ).run()
        rows.append(
            [
                latency,
                f"{weak.exec_time / base.exec_time:.3f}",
                f"{dsi.exec_time / base.exec_time:.3f}",
                f"{(1 - dsi.exec_time / base.exec_time) * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["net latency", "W / SC", "DSI-V / SC", "DSI saving"],
            rows,
            title=f"{workload}: protocol benefit vs network latency ({n_procs} processors)",
        )
    )


if __name__ == "__main__":
    main()

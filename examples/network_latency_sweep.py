#!/usr/bin/env python
"""The paper's closing claim: slower networks make DSI more valuable.

Sweeps the constant network latency from 50 to 2000 cycles on the Sparse
workload and reports the normalized execution time of weak consistency
and DSI at each point (cf. §5.2 "Impact of Network Latency" and the
conclusion's networks-of-workstations argument).

All 18 simulations (6 latencies x 3 protocols) are declared up front and
executed as one RunPool batch.  Pass a cache directory to make repeated
sweeps instant:  python examples/network_latency_sweep.py [cache_dir]

Run:  python examples/network_latency_sweep.py
"""

import sys

from repro import format_table
from repro.harness.configs import LARGE_CACHE, paper_config, workload_args
from repro.harness.runpool import RunPool
from repro.harness.runspec import RunSpec

LATENCIES = (50, 100, 250, 500, 1000, 2000)
PROTOCOLS = ("SC", "W", "V")


def main(workload="sparse", n_procs=8, cache_dir=None):
    args = workload_args(workload, quick=True, n_procs=n_procs)

    # Plan the full (latency, protocol) grid.
    specs = {
        (latency, protocol): RunSpec.create(
            workload,
            paper_config(protocol, cache=LARGE_CACHE, latency=latency, n_procs=n_procs),
            **args,
        )
        for latency in LATENCIES
        for protocol in PROTOCOLS
    }

    # Execute as one batch; a cache_dir makes re-runs pure cache hits.
    pool = RunPool(cache_dir=cache_dir)
    records = pool.run_batch(specs.values())

    rows = []
    for latency in LATENCIES:
        base = records[specs[(latency, "SC")]]
        weak = records[specs[(latency, "W")]]
        dsi = records[specs[(latency, "V")]]
        rows.append(
            [
                latency,
                f"{weak.normalized_to(base):.3f}",
                f"{dsi.normalized_to(base):.3f}",
                f"{(1 - dsi.normalized_to(base)) * 100:.0f}%",
            ]
        )
    print(
        format_table(
            ["net latency", "W / SC", "DSI-V / SC", "DSI saving"],
            rows,
            title=f"{workload}: protocol benefit vs network latency ({n_procs} processors)",
        )
    )
    if pool.cache_hits:
        print(f"({pool.executed} simulations run, {pool.cache_hits} from cache)")


if __name__ == "__main__":
    main(cache_dir=sys.argv[1] if len(sys.argv) > 1 else None)

#!/usr/bin/env python
"""Quickstart: does dynamic self-invalidation help?

Builds the cleanest sharing pattern DSI targets — a producer/consumer
exchange over barriers — and runs it on a 4-node machine under the base
sequentially consistent protocol and under SC+DSI with version numbers.

Run:  python examples/quickstart.py
"""

from repro import IdentifyScheme, Machine, SystemConfig, format_breakdown_table
from repro.workloads import producer_consumer


def main():
    n_procs = 4
    program = producer_consumer(n_procs=n_procs, blocks=16, iterations=8)
    print(f"program: {program.describe()}\n")

    base_config = SystemConfig(n_processors=n_procs)
    dsi_config = base_config.with_(identify=IdentifyScheme.VERSION)

    base = Machine(base_config, program).run()
    dsi = Machine(dsi_config, program).run()

    print(format_breakdown_table([base, dsi], title="Execution time (normalized to SC)"))
    print()
    print(f"invalidation messages: {base.messages.invalidations()} (SC) "
          f"-> {dsi.messages.invalidations()} (SC+DSI)")
    print(f"self-invalidations performed: {dsi.misses.self_invalidations}")
    speedup = base.exec_time / dsi.exec_time
    print(f"speedup from DSI: {speedup:.2f}x")
    assert dsi.messages.invalidations() < base.messages.invalidations()


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Author your own workload with the TraceBuilder API.

Builds a small pipeline: stage p reads the previous stage's buffer,
transforms it (compute), writes its own buffer, and synchronizes with a
barrier — then shows how tear-off blocks (WC+DSI) change the message
profile, and saves/reloads the program to demonstrate trace IO.

Run:  python examples/custom_workload.py
"""

import tempfile

from repro import Consistency, IdentifyScheme, Machine, SystemConfig, format_table
from repro.trace import load_program, save_program
from repro.workloads.base import BLOCK, WORD, WorkloadContext


def build_pipeline(n_stages=4, buffer_blocks=8, rounds=6):
    """Stage p reads stage p-1's buffer and writes its own."""
    ctx = WorkloadContext("pipeline", n_stages, seed=1)
    buffers = [ctx.alloc_words(p, buffer_blocks * BLOCK // WORD) for p in range(n_stages)]
    ctx.barrier_all()
    for _round in range(rounds):
        for stage in range(n_stages):
            builder = ctx.builders[stage]
            if stage > 0:
                for block in range(buffer_blocks):
                    builder.read(buffers[stage - 1] + block * BLOCK)
            builder.compute(25)
            for block in range(buffer_blocks):
                builder.write(buffers[stage] + block * BLOCK)
        ctx.barrier_all()
    return ctx.program(rounds=rounds)


def profile(label, config, program):
    result = Machine(config, program).run()
    messages = result.messages
    return [
        label,
        result.exec_time,
        messages.total_network(),
        messages.invalidations(),
        messages.acknowledgments(),
        result.misses.tearoff_fills,
    ]


def main():
    program = build_pipeline()
    print(f"program: {program.describe()}\n")

    n = program.n_procs
    base_wc = SystemConfig(n_processors=n, consistency=Consistency.WC)
    rows = [
        profile("SC", SystemConfig(n_processors=n), program),
        profile("WC", base_wc, program),
        profile("WC+DSI", base_wc.with_(identify=IdentifyScheme.VERSION), program),
        profile(
            "WC+DSI+tearoff",
            base_wc.with_(identify=IdentifyScheme.VERSION, tearoff=True),
            program,
        ),
    ]
    print(
        format_table(
            ["protocol", "cycles", "messages", "INVs", "ACKs", "tearoff fills"],
            rows,
            title="Pipeline sharing under each protocol",
        )
    )

    # Trace IO round trip.
    with tempfile.NamedTemporaryFile(suffix=".npz") as handle:
        save_program(program, handle.name)
        reloaded = load_program(handle.name)
    print(f"\nsaved + reloaded: {reloaded.name}, {reloaded.total_ops()} ops — "
          "identical simulation:",
          Machine(SystemConfig(n_processors=n), reloaded).run().exec_time
          == Machine(SystemConfig(n_processors=n), program).run().exec_time)


if __name__ == "__main__":
    main()

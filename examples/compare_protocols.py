#!/usr/bin/env python
"""Compare all four paper protocols on one application.

Reproduces one column group of the paper's Figure 3: the EM3D workload
under SC, weak consistency, and DSI with both identification schemes,
printing the execution-time breakdown the paper stacks into bars.

The four simulations are declared as RunSpecs and executed as one batch
through the RunPool, so they fan out across every core.

Run:  python examples/compare_protocols.py [workload] [n_procs]
e.g.  python examples/compare_protocols.py sparse 16
"""

import sys

from repro import format_breakdown_table, format_table
from repro.harness.configs import SMALL_CACHE, paper_config, workload_args
from repro.harness.runpool import RunPool
from repro.harness.runspec import RunSpec

PROTOCOLS = ("SC", "W", "S", "V")


def main(workload="em3d", n_procs=16):
    args = workload_args(workload, quick=n_procs <= 8, n_procs=n_procs)

    # Plan: one spec per protocol, same workload and generator arguments.
    specs = {
        protocol: RunSpec.create(
            workload, paper_config(protocol, cache=SMALL_CACHE, n_procs=n_procs), **args
        )
        for protocol in PROTOCOLS
    }
    print(f"workload: {next(iter(specs.values())).describe().split('/')[0]}"
          f" ({n_procs} processors)\n")

    # Execute: one parallel batch (jobs defaults to all cores).
    records = RunPool().run_batch(specs.values())

    # Collect.
    results = []
    for protocol, spec in specs.items():
        record = records[spec]
        record.label = protocol
        results.append(record)

    print(
        format_breakdown_table(
            results,
            title=f"{workload} on {n_procs} processors "
            f"(SC = base, W = weak consistency, S/V = DSI states/versions)",
        )
    )
    print()
    rows = [
        [r.label, r.exec_time, r.messages.total_network(), r.messages.invalidations()]
        for r in results
    ]
    print(format_table(["protocol", "cycles", "messages", "invalidations"], rows))


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    n_procs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(workload, n_procs)

#!/usr/bin/env python
"""Compare all four paper protocols on one application.

Reproduces one column group of the paper's Figure 3: the EM3D workload
under SC, weak consistency, and DSI with both identification schemes,
printing the execution-time breakdown the paper stacks into bars.

Run:  python examples/compare_protocols.py [workload] [n_procs]
e.g.  python examples/compare_protocols.py sparse 16
"""

import sys

from repro import format_breakdown_table, format_table
from repro.harness.configs import SMALL_CACHE, paper_config, workload_args
from repro.system import Machine
from repro.workloads import by_name


def main(workload="em3d", n_procs=16):
    args = workload_args(workload, quick=n_procs <= 8, n_procs=n_procs)
    program = by_name(workload, **args)
    print(f"workload: {program.describe()}\n")

    results = []
    for protocol in ("SC", "W", "S", "V"):
        config = paper_config(protocol, cache=SMALL_CACHE, n_procs=n_procs)
        result = Machine(config, program).run()
        result.label = protocol
        results.append(result)

    print(
        format_breakdown_table(
            results,
            title=f"{workload} on {n_procs} processors "
            f"(SC = base, W = weak consistency, S/V = DSI states/versions)",
        )
    )
    print()
    rows = [
        [r.label, r.exec_time, r.messages.total_network(), r.messages.invalidations()]
        for r in results
    ]
    print(format_table(["protocol", "cycles", "messages", "invalidations"], rows))


if __name__ == "__main__":
    workload = sys.argv[1] if len(sys.argv) > 1 else "em3d"
    n_procs = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    main(workload, n_procs)

#!/usr/bin/env python
"""Drive a dsi-sim sweep server programmatically.

Boots an in-process service (the same stack ``dsi-sim serve`` runs),
submits a DSI-vs-baseline sweep twice as two different tenants, follows
the second sweep's live NDJSON event stream, and shows the cross-tenant
cache sharing in ``/v1/stats``.  Point ``ServiceClient`` at a real
server URL to do the same over the network.

Run:  python examples/service_client.py
"""

from repro import IdentifyScheme, SystemConfig
from repro.harness.runspec import RunSpec
from repro.service import DsiService, ServiceClient


def build_specs(n_procs=4):
    """A tiny ablation: base SC vs SC+DSI(version) on producer/consumer."""
    base = SystemConfig(n_processors=n_procs)
    dsi = base.with_(identify=IdentifyScheme.VERSION)
    return [
        RunSpec.create("producer_consumer", config,
                       n_procs=n_procs, blocks=8, iterations=4)
        for config in (base, dsi)
    ]


def main():
    specs = build_specs()
    with DsiService(jobs=2) as service:   # or: url = "http://127.0.0.1:8775"
        print(f"server: {service.url}\n")

        # --- tenant "alice" pays for the simulations -------------------
        alice = ServiceClient(service.url, tenant="alice")
        accepted = alice.submit_specs(specs)
        status = alice.wait(accepted["sweep"])
        print(f"alice:  {status['counts']['executed']} executed, "
              f"{status['counts']['cached']} cache-served")

        # --- tenant "bob" submits the identical specs ------------------
        bob = ServiceClient(service.url, tenant="bob")
        accepted = bob.submit_specs(specs)
        print("bob's event stream:")
        for event in bob.events(accepted["sweep"]):
            line = f"  seq={event['seq']:<4} {event['type']}"
            if "workload" in event:
                line += f"  {event['label']}"
            print(line)
        status = bob.sweep(accepted["sweep"])
        print(f"bob:    {status['counts']['executed']} executed, "
              f"{status['counts']['cached']} cache-served")
        assert status["counts"]["executed"] == 0, "bob must ride alice's results"

        # --- compare the two runs the server now holds -----------------
        records = {
            run["label"]: run["record"]["exec_time"] for run in status["runs"]
        }
        (base_label, base_time), (dsi_label, dsi_time) = sorted(
            records.items(), key=lambda kv: -kv[1]
        )
        print(f"\n{base_label}: {base_time} cycles")
        print(f"{dsi_label}: {dsi_time} cycles "
              f"({base_time / dsi_time:.2f}x speedup from DSI)")

        stats = bob.stats()
        runs = stats["runs"]
        print(f"\nserver stats: {runs['requested']} runs requested, "
              f"{runs['executed']} executed, "
              f"cache hit rate {runs['cache_hit_rate']:.0%}, "
              f"tenants: {sorted(stats['tenants'])}")

        # named sweeps work the same way: bob.submit_name("bench/smoke")
        print(f"registered sweeps: {len(bob.registry()['sweeps'])} "
              f"(try bob.submit_name('bench/smoke'))")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Watch the protocol work, message by message.

Runs the paper's Figure-2 scenario — P1 writes a block P2 cached — under
the base protocol and under DSI, printing every coherence message.  The
base run shows the four-hop GETX / INV / INV_ACK / DATA_EX chain; the DSI
run shows the SI_NOTIFY replacing the invalidation pair on the second
round.

Run:  python examples/protocol_trace.py
"""

from repro import IdentifyScheme, Machine, SystemConfig
from repro.stats.tracer import MessageTracer, attach_tracer
from repro.workloads.base import WorkloadContext


def conflict_program(rounds):
    """P2 reads a block homed on node 0; P1 then writes it; repeat."""
    ctx = WorkloadContext("conflict", 3, seed=3)
    addr = ctx.alloc_words(0, 8)
    ctx.barrier_all()
    for _round in range(rounds):
        ctx.builders[2].read(addr)
        ctx.barrier_all()
        ctx.builders[1].compute(10).write(addr)
        ctx.barrier_all()
    return ctx.program(), addr >> 5


def trace(config, rounds=2):
    program, block = conflict_program(rounds)
    machine = Machine(config, program)
    tracer = attach_tracer(machine, MessageTracer(blocks=[block]))
    machine.run()
    return tracer


def main():
    base = SystemConfig(n_processors=3)
    print("=== base protocol: every conflicting write invalidates ===")
    print(trace(base).format())
    print()
    print("=== with DSI (version numbers): the reader self-invalidates ===")
    print("    (round 1 warms the history; in round 2 the SI_NOTIFY at the")
    print("     barrier replaces the INV/INV_ACK pair on the write path)")
    print(trace(base.with_(identify=IdentifyScheme.VERSION)).format())


if __name__ == "__main__":
    main()

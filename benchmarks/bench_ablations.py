"""Benchmarks for the design-space ablations (DESIGN.md A1-A5)."""

from conftest import run_experiment
from repro.harness import ablations


def test_ablation_version_bits(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.version_bits(r))
    times = {row[0]: float(row[1]) for row in result.rows}
    # The paper's point: a *small* version number suffices — wrap-around
    # aliasing only mis-marks (it cannot break correctness), so all widths
    # land in a narrow band.  (On all-conflicting workloads like sparse,
    # 1-bit over-marking can even win slightly.)
    assert max(times.values()) - min(times.values()) < 0.1
    assert all(value < 1.0 for value in times.values())


def test_ablation_fifo_depth(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.fifo_depth(r))
    overflow_by_depth = {row[0]: int(row[2]) for row in result.rows}
    # Overflows decrease monotonically with depth.
    depths = sorted(overflow_by_depth)
    for small, large in zip(depths, depths[1:]):
        assert overflow_by_depth[small] >= overflow_by_depth[large]
    # A deep-enough FIFO stops overflowing and matches the flush.
    assert overflow_by_depth[depths[-1]] == 0


def test_ablation_upgrade_case(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.upgrade_case(r))
    for row in result.row_dicts():
        # The special case never hurts (it exists to avoid a pathology).
        assert float(row["with_case"]) <= float(row["without_case"]) + 0.05


def test_ablation_home_exclusion(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.home_exclusion(r))
    assert len(result.rows) == 2


def test_ablation_read_counter(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.read_counter(r))
    selfinv = {row[0]: int(row[2]) for row in result.rows}
    # A 1-bit counter marks exclusives more aggressively than 4 bits.
    assert selfinv[1] >= selfinv[4]


def test_ablation_cache_side(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.cache_side(r))
    for row in result.row_dicts():
        if row["workload"] == "em3d":
            # Directory-side identification (the paper's choice) beats the
            # cache-side sketch: the directory sees the sharing pattern.
            assert float(row["states"]) < float(row["cache_side"])


def test_ablation_sc_tearoff(benchmark):
    result = run_experiment(benchmark, lambda r: ablations.sc_tearoff(r))
    rows = {row[0]: row for row in result.rows}
    # EM3D: SC tear-off trades a little time for fewer messages.
    assert float(rows["em3d"][3]) > 0
    # Sparse: the one-copy-at-a-time rule destroys its bulk read set —
    # the reason the paper reserves tear-off for weak consistency.
    assert float(rows["sparse"][2]) > float(rows["sparse"][1])

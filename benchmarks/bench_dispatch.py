"""Execution-path microbenchmark: interpreted vs compiled vs fast path.

One workload, one protocol, three execution modes of the same machine:

``interpreted``
    Both compiled paths off — the reference interpreter (guard-chain
    transition dispatch, every access through the event core).
``compiled``
    Layer 1 only: transition tables lowered to integer-indexed dispatch
    (:mod:`repro.coherence.compile`), accesses still interpreted.
``fastpath``
    Layers 1+2: compiled dispatch plus the direct-execution batcher
    (:mod:`repro.processor.fastpath`) retiring hit runs outside the
    engine.

All three produce bit-identical :class:`~repro.stats.record.RunRecord`
values (proved by :mod:`repro.harness.equivalence`); this module measures
what that invisibility costs/buys.  Runs under pytest-benchmark
(``pytest benchmarks/bench_dispatch.py --benchmark-only``) or standalone
(``python benchmarks/bench_dispatch.py``) — CI uses the standalone form.
"""

import os
import time

import pytest

from repro.harness.configs import paper_config, workload_args
from repro.harness.runspec import RunSpec

WORKLOAD = os.environ.get("DSI_DISPATCH_WORKLOAD", "sparse")
PROTOCOL = os.environ.get("DSI_DISPATCH_PROTOCOL", "V")
PROCS = int(os.environ.get("DSI_DISPATCH_PROCS", "8"))

MODES = {
    "interpreted": {"compiled_dispatch": False, "direct_execution": False},
    "compiled": {"compiled_dispatch": True, "direct_execution": False},
    "fastpath": {"compiled_dispatch": True, "direct_execution": True},
}

_no_fastpath = pytest.mark.skipif(
    bool(os.environ.get("DSI_NO_FASTPATH")),
    reason="DSI_NO_FASTPATH forces every mode to interpreted",
)


def make_spec(mode):
    config = paper_config(PROTOCOL, n_procs=PROCS, **MODES[mode])
    return RunSpec.create(
        WORKLOAD, config, **workload_args(WORKLOAD, quick=True, n_procs=PROCS)
    )


@_no_fastpath
@pytest.mark.parametrize("mode", list(MODES))
def test_dispatch_mode(benchmark, mode):
    spec = make_spec(mode)
    program = spec.build_program()
    record = benchmark.pedantic(lambda: spec.execute(program), rounds=3, iterations=1)
    assert record.exec_time > 0


@_no_fastpath
def test_modes_agree():
    """The timing comparison is only meaningful if the work is identical."""
    specs = {mode: make_spec(mode) for mode in MODES}
    program = specs["interpreted"].build_program()
    records = {mode: spec.execute(program) for mode, spec in specs.items()}
    assert records["compiled"] == records["interpreted"]
    assert records["fastpath"] == records["interpreted"]


def main():
    print(f"# dispatch microbenchmark: {WORKLOAD}/{PROTOCOL}, {PROCS} processors")
    timings = {}
    baseline_record = None
    for mode in MODES:
        spec = make_spec(mode)
        program = spec.build_program()
        best = None
        record = None
        for _ in range(3):
            started = time.perf_counter()
            record = spec.execute(program)
            wall = time.perf_counter() - started
            best = wall if best is None else min(best, wall)
        timings[mode] = best
        if baseline_record is None:
            baseline_record = record
        elif record != baseline_record:
            raise SystemExit(f"mode {mode!r} produced a different RunRecord")
    base = timings["interpreted"]
    for mode, wall in timings.items():
        print(f"{mode:12s} {wall * 1000:8.1f} ms   {base / wall:5.2f}x vs interpreted")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

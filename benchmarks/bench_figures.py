"""Benchmarks regenerating every figure of the paper's evaluation.

Each benchmark runs the corresponding harness module end-to-end, prints
the regenerated table (``-s`` to see it), and asserts the paper's
*qualitative* shape — who wins, roughly by how much, where the collapse
happens.  Absolute numbers differ (scaled machine, synthetic traces); the
shape is the reproduction target.

Full scale: ``DSI_BENCH_FULL=1 DSI_BENCH_PROCS=32 pytest benchmarks/ --benchmark-only -s``
"""

from conftest import norm, rows_by, run_experiment
from repro.harness import figure2, figure3, figure4, figure5, figure6


def test_figure2_coherence_anatomy(benchmark):
    # figure2 pins its own 3-node micro-program; the shared runner only
    # contributes the pool (jobs / cache knobs).
    result = run_experiment(benchmark, figure2.run)
    rows = {row[0]: row[1] for row in result.rows}
    idle = rows["write, no outstanding copy (Idle)"]
    shared = rows["write, outstanding shared copy"]
    dsi = rows["write, copy self-invalidated (DSI)"]
    # The conflicting write costs roughly twice the Idle write (request +
    # invalidation + ack + response), and DSI restores the Idle cost.
    assert 1.5 * idle < shared < 2.5 * idle
    assert dsi == idle


def test_figure3_sc_dsi(benchmark):
    result = run_experiment(benchmark, figure3.run)
    # SC rows are the normalization base.
    for row in rows_by(result, protocol="SC"):
        assert norm(row) == 1.0
    # EM3D: write-invalidation dominated; both W and DSI help clearly.
    for cache in ("small", "large"):
        em3d_w = norm(rows_by(result, workload="em3d", cache=cache, protocol="W")[0])
        em3d_s = norm(rows_by(result, workload="em3d", cache=cache, protocol="S")[0])
        assert em3d_w < 0.9
        assert em3d_s < 0.95
    # Sparse: DSI at least matches weak consistency (the paper's headline).
    for cache in ("small", "large"):
        sparse_w = norm(rows_by(result, workload="sparse", cache=cache, protocol="W")[0])
        sparse_v = norm(rows_by(result, workload="sparse", cache=cache, protocol="V")[0])
        assert sparse_v <= sparse_w + 0.02
        assert sparse_v < 0.95
    # Ocean: weak consistency wins big; DSI does not (unsynchronized accesses).
    ocean_w = norm(rows_by(result, workload="ocean", cache="large", protocol="W")[0])
    ocean_v = norm(rows_by(result, workload="ocean", cache="large", protocol="V")[0])
    assert ocean_w < 0.8
    assert ocean_v > ocean_w + 0.1
    # Barnes: synchronization bound — nothing moves it much.
    for protocol in ("W", "S", "V"):
        barnes = norm(rows_by(result, workload="barnes", cache="small", protocol=protocol)[0])
        assert 0.85 < barnes < 1.1


def test_figure4_slow_network(benchmark):
    result = run_experiment(benchmark, figure4.run)
    # The slow network amplifies coherence overhead: DSI's saving on EM3D
    # should be at least as large as at 100 cycles.
    em3d_s = norm(rows_by(result, workload="em3d", cache="large", protocol="S")[0])
    assert em3d_s < 0.9
    sparse_v = norm(rows_by(result, workload="sparse", cache="large", protocol="V")[0])
    assert sparse_v < 0.95


def test_figure5_fifo_vs_flush(benchmark):
    result = run_experiment(benchmark, figure5.run)
    for row in result.row_dicts():
        flush = float(row["flush_norm"])
        fifo = float(row["fifo_norm"])
        if row["workload"] == "sparse":
            # The FIFO overflows and forfeits the benefit (Figure 5).
            assert int(row["fifo_overflows"]) > 0
            assert fifo > flush + 0.05
        else:
            assert abs(fifo - flush) < 0.05


def test_figure6_wc_breakdown(benchmark):
    result = run_experiment(benchmark, figure6.run)
    for row in rows_by(result, protocol="W"):
        assert norm(row) == 1.0
    sparse = norm(rows_by(result, workload="sparse", protocol="W+V")[0])
    assert sparse < 0.95  # DSI helps WC on sparse
    em3d = norm(rows_by(result, workload="em3d", protocol="W+V")[0])
    assert 0.9 < em3d < 1.1  # ... and not much elsewhere

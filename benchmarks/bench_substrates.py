"""Micro-benchmarks of the simulator substrates.

These time the building blocks everything else stands on — useful for
spotting performance regressions in the kernel rather than for paper
reproduction.
"""

from repro.config import SystemConfig
from repro.engine.event_queue import EventQueue
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator
from repro.memory.cache import Cache, SHARED
from repro.network.message import Message, MsgKind
from repro.network.network import Network
from repro.system import Machine
from repro.trace.builder import TraceBuilder
from repro.workloads import em3d

KB = 1024


def test_event_queue_throughput(benchmark):
    def churn():
        queue = EventQueue()
        for t in range(10_000):
            queue.push((t * 7919) % 100_000, None, ())
        count = 0
        while queue:
            queue.pop()
            count += 1
        return count

    assert benchmark(churn) == 10_000


def test_simulator_event_rate(benchmark):
    def run():
        sim = Simulator()
        remaining = [20_000]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.schedule(1, tick)

        sim.schedule(1, tick)
        sim.run()
        return sim.events_fired

    assert benchmark(run) == 20_000


def test_resource_pipeline(benchmark):
    def run():
        sim = Simulator()
        resource = Resource(sim, "r")
        for _ in range(5_000):
            resource.submit(3, lambda: None)
        sim.run()
        return resource.jobs

    assert benchmark(run) == 5_000


def test_cache_hit_rate(benchmark):
    config = SystemConfig(cache_size=64 * KB)
    cache = Cache(config, node=0)
    for block in range(1024):
        cache.fill(block, SHARED, data=0)

    def probe():
        hits = 0
        for block in range(1024):
            if cache.lookup(block) is not None:
                hits += 1
        return hits

    assert benchmark(probe) == 1024


def test_cache_fill_evict_churn(benchmark):
    config = SystemConfig(cache_size=8 * KB)

    def churn():
        cache = Cache(config, node=0)
        evictions = 0
        for block in range(2_000):
            _frame, victim = cache.fill(block, SHARED, data=0)
            if victim is not None:
                evictions += 1
        return evictions

    assert benchmark(churn) > 0


def test_network_message_rate(benchmark):
    class Sink:
        def receive(self, msg):
            pass

    def run():
        sim = Simulator()
        config = SystemConfig(n_processors=4)
        network = Network(sim, config)
        sink = Sink()
        for node in range(4):
            network.attach(node, sink, sink)
        for i in range(5_000):
            network.send(Message(MsgKind.GETS, i, src=i % 4, dst=(i + 1) % 4))
        sim.run()
        return network.counters.total_network()

    assert benchmark(run) == 5_000


def test_trace_generation_rate(benchmark):
    def build():
        builder = TraceBuilder()
        for i in range(20_000):
            builder.compute(3).read(i * 4)
        return builder.build()

    trace = benchmark(build)
    assert len(trace) == 20_000


def test_end_to_end_simulation_rate(benchmark):
    """Whole-machine throughput: simulated memory operations per second."""
    program = em3d(n_procs=4, nodes_per_proc=32, iterations=2, private_words=128)
    config = SystemConfig(n_processors=4, cache_size=16 * KB)

    def run():
        return Machine(config, program).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.exec_time > 0
    ops = program.total_ops()
    print(f"\nsimulated {ops} memory operations, {result.events_fired} events")

"""Benchmarks regenerating the paper's tables (2 and 3) and Table 1's
workload catalog."""

from conftest import BENCH_PROCS, BENCH_QUICK, run_experiment
from repro.harness import table2, table3
from repro.harness.configs import WORKLOADS, workload_args
from repro.workloads import by_name


def test_table1_workload_generation(benchmark):
    """Table 1: the five applications — benchmark building all of them."""

    def build_all():
        return [
            by_name(name, **workload_args(name, quick=BENCH_QUICK, n_procs=BENCH_PROCS))
            for name in WORKLOADS
        ]

    programs = benchmark.pedantic(build_all, rounds=1, iterations=1)
    print()
    for program in programs:
        print(program.describe())
    assert len(programs) == 5
    for program in programs:
        assert program.total_ops() > 0
        assert program.n_procs == BENCH_PROCS


def test_table2_wc_dsi_exec_time(benchmark):
    result = run_experiment(benchmark, table2.run)
    rows = result.row_dicts()
    # Sparse is the paper's exception: WC+DSI clearly better than WC.
    sparse = [float(r["norm_time"]) for r in rows if r["workload"] == "sparse"]
    assert all(value < 0.97 for value in sparse)
    # Everything else stays near 1.0 (within the paper's observed band).
    for row in rows:
        if row["workload"] in ("barnes", "em3d", "tomcatv"):
            assert 0.9 <= float(row["norm_time"]) <= 1.1


def test_table3_message_reduction(benchmark):
    result = run_experiment(benchmark, table3.run)
    rows = result.row_dicts()
    for row in rows:
        # Tear-off blocks were actually used...
        assert int(row["tearoff_fills"]) > 0
        # ... and eliminate a visible share of explicit invalidations.
        assert float(row["inval_red_%"]) > 0
    em3d = [float(r["inval_red_%"]) for r in rows if r["workload"] == "em3d"]
    assert all(value > 30 for value in em3d)

"""Observability overhead benchmarks.

The equivalence tests prove instrumentation cannot change *what* a run
measures; these benchmarks track what it costs in host time — bare
machine vs the base :class:`~repro.obs.Instrument` vs the full
:class:`~repro.obs.AnalyticsInstrument` (classifier + message ledger +
quiesce audit), plus the classifier and ledger on their own.
"""

from repro.harness.configs import paper_config
from repro.network.message import Message, MsgKind
from repro.obs import AnalyticsInstrument, Instrument, MessageLedger, SharingClassifier
from repro.system import Machine
from repro.workloads import em3d

N_PROCS = 4


def _program():
    return em3d(n_procs=N_PROCS, nodes_per_proc=32, iterations=2, private_words=128)


def _run(instrument=None):
    config = paper_config("V", n_procs=N_PROCS)
    result = Machine(config, _program(), instrument=instrument).run()
    assert result.exec_time > 0
    return result


def test_run_bare(benchmark):
    benchmark.pedantic(_run, rounds=3, iterations=1)


def test_run_instrumented(benchmark):
    benchmark.pedantic(lambda: _run(Instrument()), rounds=3, iterations=1)


def test_run_analytics(benchmark):
    benchmark.pedantic(lambda: _run(AnalyticsInstrument()), rounds=3, iterations=1)


def test_classifier_feed_rate(benchmark):
    def feed():
        classifier = SharingClassifier()
        for i in range(20_000):
            classifier.on_access(i, i % 64, i % 7, "write" if i % 5 == 0 else "read")
        return classifier.report(top=8)

    report = benchmark(feed)
    assert report["blocks"] == 64


def test_ledger_throughput(benchmark):
    def churn():
        ledger = MessageLedger()
        for i in range(20_000):
            msg = Message(MsgKind.GETS, i % 128, src=i % 4, dst=(i + 1) % 4)
            ledger.on_send(msg, i)
            ledger.on_receive(msg, i + 10)
        return ledger.check_quiesced()

    assert benchmark(churn) == {"sends": 20_000, "receives": 20_000}

"""Benchmark configuration.

Each paper experiment gets one benchmark that re-runs its harness module
and prints the regenerated table.  Scale is controlled by environment
variables so CI stays fast while full-scale reproduction is one command:

``DSI_BENCH_PROCS``      machine size (default 8)
``DSI_BENCH_FULL``       set to 1 for full-scale workloads (default quick)
``DSI_BENCH_JOBS``       worker processes per simulation batch (default 1
                         so benchmark timings measure the simulator, not
                         the pool fan-out)
``DSI_BENCH_CACHE_DIR``  persistent result cache directory (default off —
                         a warm cache would make every timing trivial)

Full-scale reproduction of everything:
``DSI_BENCH_FULL=1 DSI_BENCH_PROCS=32 pytest benchmarks/ --benchmark-only``
"""

import os

import pytest

from repro.harness.experiment import ExperimentRunner

BENCH_PROCS = int(os.environ.get("DSI_BENCH_PROCS", "8"))
BENCH_QUICK = os.environ.get("DSI_BENCH_FULL", "0") != "1"
BENCH_JOBS = int(os.environ.get("DSI_BENCH_JOBS", "1"))
BENCH_CACHE_DIR = os.environ.get("DSI_BENCH_CACHE_DIR") or None


def make_runner():
    return ExperimentRunner(
        n_procs=BENCH_PROCS,
        quick=BENCH_QUICK,
        jobs=BENCH_JOBS,
        cache_dir=BENCH_CACHE_DIR,
    )


@pytest.fixture
def runner():
    return make_runner()


def run_experiment(benchmark, experiment_fn):
    """Benchmark one experiment module end-to-end and print its table."""
    result = benchmark.pedantic(
        lambda: experiment_fn(make_runner()), rounds=1, iterations=1
    )
    print()
    print(result.format())
    return result


def rows_by(result, **filters):
    """Select row dicts matching all filter equalities."""
    rows = result.row_dicts()
    for key, value in filters.items():
        rows = [row for row in rows if str(row[key]) == str(value)]
    return rows


def norm(row, column="norm_time"):
    return float(row[column])

"""Discrete-event simulation kernel.

The kernel is deliberately small: a binary-heap event queue
(:mod:`repro.engine.event_queue`), a :class:`~repro.engine.simulator.Simulator`
that owns the clock, generator-based processes for sequential behaviours
(:mod:`repro.engine.process`), and FIFO occupancy :class:`resources
<repro.engine.resource.Resource>` used to model contention at the cache
controller, directory controller and network interfaces.
"""

from repro.engine.event_queue import EventQueue
from repro.engine.process import Process, Timeout, Waiter
from repro.engine.resource import Resource
from repro.engine.simulator import Simulator

__all__ = ["EventQueue", "Process", "Resource", "Simulator", "Timeout", "Waiter"]

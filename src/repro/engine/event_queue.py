"""A deterministic binary-heap event queue.

Events are ``(time, sequence, callback, args)`` tuples.  The sequence number
breaks ties so that two events scheduled for the same cycle fire in the order
they were scheduled, which keeps simulations bit-for-bit reproducible.
"""

from heapq import heappop, heappush

from repro.errors import SimulationError


class EventQueue:
    """A time-ordered queue of callbacks.

    This is the only data structure on the simulator's hot path, so it is a
    thin wrapper around :mod:`heapq` rather than anything fancier.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self):
        self._heap = []
        self._seq = 0

    def __len__(self):
        return len(self._heap)

    def __bool__(self):
        return bool(self._heap)

    def push(self, time, callback, args=()):
        """Schedule ``callback(*args)`` to fire at absolute ``time``."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        self._seq += 1
        heappush(self._heap, (time, self._seq, callback, args))

    def pop(self):
        """Remove and return the earliest ``(time, callback, args)``."""
        time, _seq, callback, args = heappop(self._heap)
        return time, callback, args

    def peek_time(self):
        """Return the timestamp of the earliest event without removing it."""
        return self._heap[0][0]

    def clear(self):
        """Drop every pending event."""
        self._heap.clear()

"""FIFO occupancy resources.

A :class:`Resource` models a unit of hardware that can do one thing at a
time for a fixed number of cycles — the cache controller (3 cycles per
miss), the directory controller (10 cycles per request) and the network
interface (3 cycles per injection, +8 with a data block).  Work submitted
while the resource is busy queues in FIFO order; this is exactly the
"contention is accurately modeled at the directory, cache and network
interface" behaviour of the paper's methodology (§5.1).
"""

from collections import deque


class Resource:
    """A single-server FIFO queue with per-job service times.

    Jobs are ``(duration, callback, args)``; the callback fires when the
    job *completes* (after queueing delay + service time).  Statistics are
    kept so benchmarks can report utilisation and queueing delay.

    ``depth_probe``, when given, is called with the queue length every
    time a job enters or leaves the wait queue — the instrumentation
    layer's contention time series (``None``, the default, costs one
    ``is not None`` test per transition).
    """

    __slots__ = (
        "sim", "name", "busy", "_queue", "busy_cycles", "jobs", "wait_cycles",
        "_free_at", "depth_probe", "_schedule",
    )

    def __init__(self, sim, name="", depth_probe=None):
        self.sim = sim
        self.name = name
        self.busy = False
        self._queue = deque()
        self.busy_cycles = 0
        self.jobs = 0
        self.wait_cycles = 0
        self._free_at = 0
        self.depth_probe = depth_probe
        self._schedule = sim.schedule  # prebound: hottest call in submit

    def submit(self, duration, callback, *args):
        """Run a job of ``duration`` cycles; fire ``callback(*args)`` on completion."""
        if self.busy:
            self._queue.append((self.sim.now, duration, callback, args))
            if self.depth_probe is not None:
                self.depth_probe(len(self._queue))
        else:
            # Inlined _start for the uncontended case (wait time is zero).
            self.busy = True
            self.jobs += 1
            self.busy_cycles += duration
            self._free_at = self.sim.now + duration
            self._schedule(duration, self._finish, callback, args)

    def _start(self, submitted_at, duration, callback, args):
        self.busy = True
        self.jobs += 1
        self.busy_cycles += duration
        self.wait_cycles += self.sim.now - submitted_at
        self._free_at = self.sim.now + duration
        self._schedule(duration, self._finish, callback, args)

    def _finish(self, callback, args):
        if self._queue:
            next_submitted, next_duration, next_callback, next_args = self._queue.popleft()
            if self.depth_probe is not None:
                self.depth_probe(len(self._queue))
            self._start(next_submitted, next_duration, next_callback, next_args)
        else:
            self.busy = False
        callback(*args)

    @property
    def queue_length(self):
        """Number of jobs waiting (not counting the one in service)."""
        return len(self._queue)

    def utilisation(self):
        """Fraction of elapsed simulated time this resource was busy."""
        if self.sim.now == 0:
            return 0.0
        return self.busy_cycles / self.sim.now

"""The simulator: a clock plus an event queue.

Components interact with the simulator exclusively through
:meth:`Simulator.schedule` (relative delay) and :meth:`Simulator.at`
(absolute time).  The simulator itself knows nothing about caches or
networks; it only fires callbacks in timestamp order.
"""

from heapq import heappop, heappush

from repro.engine.event_queue import EventQueue
from repro.errors import DeadlockError, SimulationError


class Simulator:
    """Owns the simulated clock and drives the event loop.

    Parameters
    ----------
    max_events:
        Safety valve: abort if more than this many events fire in one call
        to :meth:`run` (guards against protocol livelock in tests).
    """

    __slots__ = ("now", "queue", "max_events", "events_fired", "_running", "_deadlock_hooks")

    def __init__(self, max_events=None):
        self.now = 0
        self.queue = EventQueue()
        self.max_events = max_events
        self.events_fired = 0
        self._running = False
        self._deadlock_hooks = []

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback, *args):
        """Fire ``callback(*args)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        # Inlined EventQueue.push — this is the hottest call in the
        # simulator; ``now + delay`` is non-negative by construction.
        queue = self.queue
        queue._seq += 1
        heappush(queue._heap, (self.now + delay, queue._seq, callback, args))

    def at(self, time, callback, *args):
        """Fire ``callback(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        queue = self.queue
        queue._seq += 1
        heappush(queue._heap, (time, queue._seq, callback, args))

    def add_deadlock_hook(self, hook):
        """Register ``hook() -> str | None`` consulted when the queue drains.

        If any hook returns a non-empty string, the simulation is considered
        deadlocked and :class:`~repro.errors.DeadlockError` is raised with
        the concatenated diagnostics.
        """
        self._deadlock_hooks.append(hook)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self):
        """Fire the single earliest event.  Returns False if none remain."""
        if not self.queue:
            return False
        time, callback, args = self.queue.pop()
        self.now = time
        self.events_fired += 1
        callback(*args)
        return True

    def run(self, until=None):
        """Run until the queue drains (or past ``until`` cycles).

        Returns the final simulated time.  Raises
        :class:`~repro.errors.DeadlockError` if the queue drains while a
        registered deadlock hook reports outstanding work.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        fired_at_entry = self.events_fired
        heap = self.queue._heap  # inlined EventQueue.pop: the hot loop
        max_events = self.max_events
        try:
            if until is None and max_events is None:
                # The common (benchmark) shape: no bound checks per event.
                while heap:
                    time, _seq, callback, args = heappop(heap)
                    self.now = time
                    self.events_fired += 1
                    callback(*args)
                self._check_deadlock()
            else:
                while heap:
                    if until is not None and heap[0][0] > until:
                        self.now = until
                        break
                    time, _seq, callback, args = heappop(heap)
                    self.now = time
                    self.events_fired += 1
                    callback(*args)
                    if (
                        max_events is not None
                        and self.events_fired - fired_at_entry > max_events
                    ):
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
                else:
                    self._check_deadlock()
        finally:
            self._running = False
        return self.now

    def _check_deadlock(self):
        diagnostics = [msg for hook in self._deadlock_hooks for msg in [hook()] if msg]
        if diagnostics:
            raise DeadlockError(
                "event queue drained with outstanding work:\n  " + "\n  ".join(diagnostics)
            )


class BucketSimulator(Simulator):
    """A simulator over per-cycle event buckets instead of one flat heap.

    Most simulated cycles hold several events (every message hop lands
    with its completion, drain and delivery neighbours), so keying the
    heap by *cycle* and appending same-cycle events to a plain list cuts
    the heap traffic by the mean bucket occupancy.  Append order is
    schedule order, which is exactly the sequence-number tie-break of the
    flat heap — firing order is identical, event for event.  Used by the
    relaxed execution engine; the reference engine keeps the flat heap
    untouched.
    """

    __slots__ = ("_buckets", "_times")

    def __init__(self, max_events=None):
        super().__init__(max_events=max_events)
        self._buckets = {}
        self._times = []  # heap of cycles that currently hold a bucket

    def schedule(self, delay, callback, *args):
        """Fire ``callback(*args)`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        time = self.now + delay
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(callback, args)]
            heappush(self._times, time)
        else:
            bucket.append((callback, args))

    def at(self, time, callback, *args):
        """Fire ``callback(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(f"cannot schedule in the past ({time} < {self.now})")
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [(callback, args)]
            heappush(self._times, time)
        else:
            bucket.append((callback, args))

    def step(self):
        """Fire the single earliest event.  Returns False if none remain."""
        if not self._times:
            return False
        time = self._times[0]
        bucket = self._buckets[time]
        callback, args = bucket.pop(0)
        if not bucket:
            del self._buckets[time]
            heappop(self._times)
        self.now = time
        self.events_fired += 1
        callback(*args)
        return True

    def run(self, until=None):
        """Run until the queue drains (or past ``until`` cycles).

        The bucket stays registered during its sweep, so a same-cycle
        event scheduled mid-sweep appends to it — and the plain ``for``
        fires it in this very sweep: a list iterator is index-based and
        visits elements appended during iteration.  That is exactly the
        flat heap's order (same time, later seq fires last), and
        ``len(bucket)`` after the sweep counts the appends too.
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        fired_at_entry = self.events_fired
        times = self._times
        buckets = self._buckets
        max_events = self.max_events
        try:
            if until is None and max_events is None:
                # The common (benchmark) shape: no bound checks per bucket.
                while times:
                    time = heappop(times)
                    self.now = time
                    bucket = buckets[time]
                    for callback, args in bucket:
                        callback(*args)
                    self.events_fired += len(bucket)
                    del buckets[time]
                self._check_deadlock()
            else:
                while times:
                    if until is not None and times[0] > until:
                        self.now = until
                        break
                    time = heappop(times)
                    self.now = time
                    bucket = buckets[time]
                    for callback, args in bucket:
                        callback(*args)
                    self.events_fired += len(bucket)
                    del buckets[time]
                    if (
                        max_events is not None
                        and self.events_fired - fired_at_entry > max_events
                    ):
                        raise SimulationError(
                            f"exceeded max_events={max_events}; likely livelock"
                        )
                else:
                    self._check_deadlock()
        finally:
            self._running = False
        return self.now

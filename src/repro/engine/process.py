"""Generator-based processes on top of the event queue.

Processes are a convenience layer used by tests, examples and simple
workload scripts.  The performance-critical components (processors, cache
controllers, directories) are written as explicit callback state machines
instead; both styles coexist on the same :class:`~repro.engine.simulator
.Simulator`.

A process is a generator that yields:

* :class:`Timeout` — resume after N cycles.
* :class:`Waiter`  — resume when someone calls :meth:`Waiter.trigger`.

Example
-------
>>> sim = Simulator()
>>> log = []
>>> def proc():
...     yield Timeout(5)
...     log.append(("woke", ))
>>> Process(sim, proc())
>>> _ = sim.run()
>>> log
[('woke',)]
"""

from repro.engine.simulator import Simulator  # noqa: F401  (doctest import)
from repro.errors import SimulationError


class Timeout:
    """Yielded by a process to sleep for ``delay`` cycles."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        self.delay = delay


class Waiter:
    """A one-shot event a process can yield on; resumed via :meth:`trigger`.

    The value passed to :meth:`trigger` becomes the result of the ``yield``
    expression inside the process.
    """

    __slots__ = ("_process", "_fired", "_value")

    def __init__(self):
        self._process = None
        self._fired = False
        self._value = None

    @property
    def fired(self):
        return self._fired

    def trigger(self, value=None):
        """Resume the waiting process (immediately, at the current time)."""
        if self._fired:
            raise SimulationError("Waiter triggered twice")
        self._fired = True
        self._value = value
        if self._process is not None:
            process = self._process
            self._process = None
            process._resume(value)

    def _attach(self, process):
        if self._process is not None:
            raise SimulationError("Waiter already has a waiting process")
        self._process = process


class Process:
    """Drives a generator as a simulation process.

    The generator starts at the current simulation time (its first segment
    runs via a zero-delay event so construction order does not matter).
    """

    __slots__ = ("sim", "_gen", "done", "result", "_done_waiters")

    def __init__(self, sim, generator):
        self.sim = sim
        self._gen = generator
        self.done = False
        self.result = None
        self._done_waiters = []
        sim.schedule(0, self._resume, None)

    def join(self):
        """Return a :class:`Waiter` triggered when this process finishes."""
        waiter = Waiter()
        if self.done:
            waiter.trigger(self.result)
        else:
            self._done_waiters.append(waiter)
        return waiter

    def _resume(self, value):
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            for waiter in self._done_waiters:
                waiter.trigger(self.result)
            self._done_waiters.clear()
            return
        if isinstance(yielded, Timeout):
            self.sim.schedule(yielded.delay, self._resume, None)
        elif isinstance(yielded, Waiter):
            if yielded.fired:
                self.sim.schedule(0, self._resume, yielded._value)
            else:
                yielded._attach(self)
        else:
            raise SimulationError(f"process yielded unsupported value {yielded!r}")

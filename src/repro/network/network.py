"""A constant-latency interconnect with per-node injection contention.

Per the paper's methodology (§5.1): messages experience a 3-cycle injection
overhead (+8 cycles if they carry a cache block), then a constant network
latency (100 cycles by default, 1000 for the slow-network experiments).
Switch contention is not modelled; contention *is* modelled at the network
interfaces (one FIFO injection port per node) and, downstream, at the cache
and directory controllers.

Messages between a cache and its co-resident home directory skip the
network entirely and arrive after ``local_latency`` cycles; they are
counted separately from network traffic.
"""

from repro.engine.resource import Resource
from repro.network.message import DIR_BOUND, MsgKind
from repro.stats.counters import MessageCounters

# Hot-path lookup tables indexed by the (integer) message kind: the enum
# attribute protocol (``msg.kind.name``, ``in`` on a frozenset) costs a
# descriptor call per message, which adds up at ~1 message per 4 events.
_KIND_NAMES = [kind.name for kind in MsgKind]
_IS_DIR_BOUND = [kind in DIR_BOUND for kind in MsgKind]


class Network:
    """Delivers :class:`~repro.network.message.Message` objects between nodes."""

    def __init__(self, sim, config, counters=None, instrument=None):
        self.sim = sim
        self.config = config
        self.counters = counters if counters is not None else MessageCounters()
        self.obs = instrument
        self._local_latency = config.local_latency
        self._inject_cycles = config.inject_cycles
        self._inject_data_cycles = config.inject_data_cycles
        self._network_latency = config.network_latency
        self.interfaces = [
            Resource(sim, name=f"ni{i}", depth_probe=self._ni_probe(i))
            for i in range(config.n_processors)
        ]
        # Delivery sinks, wired by the System after construction.
        self.cache_sinks = [None] * config.n_processors
        self.dir_sinks = [None] * config.n_processors
        self.in_flight = 0

    def _ni_probe(self, node):
        """Injection-queue depth probe for one interface (None when no
        instrument is attached, so the Resource skips the call entirely)."""
        if self.obs is None:
            return None
        return lambda depth: self.obs.ni_queue(node, depth)

    # ------------------------------------------------------------------
    def attach(self, node, cache_sink, dir_sink):
        """Register the message receivers of one node."""
        self.cache_sinks[node] = cache_sink
        self.dir_sinks[node] = dir_sink

    def send(self, msg, on_injected=None):
        """Inject a message (or short-circuit it if intra-node).

        ``on_injected`` fires once the message has left the network
        interface — the point up to which a processor performing
        self-invalidation must stall (§4.2: "messages are injected as
        rapidly as the network can accept them").
        """
        is_network = msg.src != msg.dst
        self.counters.count(_KIND_NAMES[msg.kind], is_network, msg.carries_data)
        if self.obs is not None:
            self.obs.message_send(msg, is_network)
        self.in_flight += 1
        if not is_network:
            self.sim.schedule(self._local_latency, self._deliver, msg)
            if on_injected is not None:
                on_injected()
            return
        cost = self._inject_cycles
        if msg.carries_data:
            cost += self._inject_data_cycles
        self.interfaces[msg.src].submit(cost, self._injected, msg, on_injected)

    def _injected(self, msg, on_injected):
        self.sim.schedule(self.latency(msg.src, msg.dst), self._deliver, msg)
        if on_injected is not None:
            on_injected()

    def latency(self, src, dst):
        """Transit latency between two distinct nodes (constant by default)."""
        return self._network_latency

    def _deliver(self, msg):
        self.in_flight -= 1
        if self.obs is not None:
            self.obs.message_receive(msg, msg.src != msg.dst)
        sinks = self.dir_sinks if _IS_DIR_BOUND[msg.kind] else self.cache_sinks
        sinks[msg.dst].receive(msg)

    # --- relaxed-engine Message-free lanes ----------------------------
    # The relaxed execution mode (repro.config.ExecutionMode.RELAXED)
    # moves the hottest uncontended coherence transactions through
    # *lanes*: the same event chain as the reference engine — NI service
    # completion, transit, controller service completion, each a
    # scheduled event at the same cycle, created at the same point of
    # execution — but with the per-event payload stripped to straight
    # line code.  No Message object, no per-hop closure, no table
    # dispatch; the hop delays are folded into precomputed constants.
    # Because every schedule call happens at the same moment in both
    # engines, event order is identical *by construction*: there is no
    # ordering hazard to detect and bailing back to the reference
    # machinery (materialize the Message, call the reference handler at
    # the same point) is always exact.
    #
    # An earlier design elided the injection-end event outright and
    # scheduled the delivery at send time.  The differential oracle
    # killed it: the reference engine assigns a delivery's within-cycle
    # position at injection end, and any event scheduled between send
    # and injection end that lands on the same arrival cycle (a barrier
    # release, a long compute block, another message) can interleave —
    # an early-assigned position flips that order, and two flipped
    # deliveries at different sinks become observable as soon as their
    # causal chains converge on an exact service tie downstream.
    # Exactness therefore demands the injection-end event exist; the
    # lanes keep it and make it cheap instead.
    #
    # Relaxed mode is forced off under instrumentation, hence no obs
    # probes on these paths.

    def relaxed_send_local(self, kind_name, carries_data, arrival, args):
        """Intra-node hop for a Message-free transfer.

        Mirrors ``send`` for ``src == dst``: count, then deliver after
        ``local_latency`` — one event, scheduled at the send point
        exactly as the reference ``_deliver`` would be."""
        self.counters.local[kind_name] += 1
        self.in_flight += 1
        self.sim.schedule(self._local_latency, arrival, *args)

    def relaxed_send_remote(self, kind_name, src, carries_data, arrival, args):
        """Remote hop for a Message-free transfer.

        Mirrors ``send`` for ``src != dst``: count, occupy the sender's
        network interface for the injection cost (the same ``submit``
        and completion event as the reference path), then transit.  The
        injection-end trampoline schedules the arrival at the exact
        moment the reference ``_injected`` schedules ``_deliver``, so
        within-cycle delivery order is preserved event-for-event."""
        counters = self.counters
        counters.network[kind_name] += 1
        self.in_flight += 1
        cost = self._inject_cycles
        if carries_data:
            counters.data_blocks_sent += 1
            cost += self._inject_data_cycles
        self.interfaces[src].submit(cost, self._lane_injected, arrival, args)

    def _lane_injected(self, arrival, args):
        self.sim.schedule(self._network_latency, arrival, *args)

    def lane_arrived(self):
        """Balance a lane send's ``in_flight`` increment (called first
        thing by every lane arrival handler, where ``_deliver`` would
        have decremented)."""
        self.in_flight -= 1

    # ------------------------------------------------------------------
    def deadlock_diagnostic(self):
        if self.in_flight:
            return f"{self.in_flight} message(s) still in flight"
        return None

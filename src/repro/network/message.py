"""Coherence protocol messages.

The protocol is a full-map three-state write-invalidate directory protocol
(Dir_n NB); the message vocabulary below covers the base protocol, the
weak-consistency variant (parallel grant + single forwarded acknowledgment)
and the DSI extensions (self-invalidation notifications, version numbers,
tear-off responses).
"""

import enum


class MsgKind(enum.IntEnum):
    # cache -> home directory: requests
    GETS = 0  # read miss: request a shared-readable copy
    GETX = 1  # write miss: request an exclusive copy
    UPGRADE = 2  # write hit on a shared copy: request exclusivity, no data

    # home directory -> cache: responses
    DATA = 3  # shared-readable data
    DATA_EX = 4  # exclusive data
    UPGRADE_ACK = 5  # exclusivity granted without data
    ACK_DONE = 6  # (WC) all invalidation acks collected for an earlier grant

    # home directory -> cache
    INV = 7  # explicit invalidation

    # cache -> home directory
    INV_ACK = 8  # invalidation acknowledged (shared copy)
    INV_ACK_DATA = 9  # invalidation acknowledged with modified data (exclusive copy)
    WB = 10  # replacement writeback of a modified block
    REPL = 11  # replacement notification for a clean block
    SI_NOTIFY = 12  # self-invalidation notification for a tracked block

    # home directory -> cache (Tardis only)
    WB_REQ = 13  # ask the exclusive owner for a timestamped writeback


# Message kinds whose destination is the home directory (everything else
# is delivered to a cache controller).
DIR_BOUND = frozenset(
    (
        MsgKind.GETS,
        MsgKind.GETX,
        MsgKind.UPGRADE,
        MsgKind.INV_ACK,
        MsgKind.INV_ACK_DATA,
        MsgKind.WB,
        MsgKind.REPL,
        MsgKind.SI_NOTIFY,
    )
)


class Message:
    """One protocol message.

    Attributes
    ----------
    kind:
        A :class:`MsgKind`.
    block:
        Block number (byte address >> block_shift).
    src, dst:
        Node ids.
    version:
        Version number accompanying a request (``None`` when the cache had
        no matching tag), or attached to a data response.
    si:
        Response flag: the block is marked for self-invalidation.
    tearoff:
        Response flag: the copy is untracked (tear-off, §3.3).
    inval_wait:
        Response metadata: cycles the directory spent waiting for
        invalidation acknowledgments before it could respond.  This is the
        component the paper reports as read/write *invalidation* time.
    data:
        Write-stamp of the block contents (data-value tracking).
    acks_pending:
        (WC) exclusive grant was sent before invalidations completed; an
        ACK_DONE will follow.
    si_marked:
        Notification flag: the replaced block carried the s bit (drives the
        Idle_SI directory state).
    dirty:
        Notification flag: the invalidated/self-invalidated copy was
        modified (the message carries the data block).
    carries_data:
        The message carries a full cache block (adds 8 injection cycles).
    wts, rts:
        (Tardis) logical write/read timestamps piggybacked on data and
        upgrade responses and on owner writebacks.
    ts:
        (Tardis) requester metadata: the program timestamp on a request,
        and the requester's cached ``wts`` on an UPGRADE (the home grants
        exclusivity without data only when it matches the memory copy).
    txn_id:
        Causal-tracing transaction id (:mod:`repro.obs.causal`): the id of
        the cache-side coherence transaction this message belongs to.
        Requests carry their MSHR's id; responses, INVs triggered by the
        request, the INV acks they provoke and the WC ACK_DONE all echo
        it, so the whole fan-out shares one causal parent.  ``None``
        whenever no instrument is attached (ids are only allocated under
        observation) or the message is not part of a transaction
        (writebacks, replacement notices, SI notifications).
    """

    __slots__ = (
        "kind",
        "block",
        "src",
        "dst",
        "version",
        "si",
        "tearoff",
        "inval_wait",
        "data",
        "acks_pending",
        "si_marked",
        "dirty",
        "carries_data",
        "wts",
        "rts",
        "ts",
        "txn_id",
    )

    def __init__(
        self,
        kind,
        block,
        src,
        dst,
        version=None,
        si=False,
        tearoff=False,
        inval_wait=0,
        data=0,
        acks_pending=False,
        si_marked=False,
        dirty=False,
        carries_data=False,
        wts=0,
        rts=0,
        ts=None,
        txn_id=None,
    ):
        self.kind = kind
        self.block = block
        self.src = src
        self.dst = dst
        self.version = version
        self.si = si
        self.tearoff = tearoff
        self.inval_wait = inval_wait
        self.data = data
        self.acks_pending = acks_pending
        self.si_marked = si_marked
        self.dirty = dirty
        self.carries_data = carries_data
        self.wts = wts
        self.rts = rts
        self.ts = ts
        self.txn_id = txn_id

    def __repr__(self):
        flags = []
        if self.si:
            flags.append("si")
        if self.tearoff:
            flags.append("tearoff")
        if self.dirty:
            flags.append("dirty")
        if self.acks_pending:
            flags.append("acks_pending")
        extra = f" [{','.join(flags)}]" if flags else ""
        return (
            f"Message({self.kind.name} blk={self.block} {self.src}->{self.dst}{extra})"
        )

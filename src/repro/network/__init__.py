"""Interconnect: message types, network interfaces, and the network itself."""

from repro.network.message import DIR_BOUND, MsgKind, Message
from repro.network.network import Network
from repro.network.topology import MeshNetwork

__all__ = ["DIR_BOUND", "MeshNetwork", "Message", "MsgKind", "Network"]

"""Topology-aware network variants.

The paper assumes a constant network latency.  :class:`MeshNetwork` is an
extension used by the ablation harness to check that DSI's benefit is
robust to distance-dependent latency: nodes are arranged in a 2-D mesh and
latency grows with Manhattan hop count.
"""

import math

from repro.errors import ConfigError
from repro.network.network import Network


class MeshNetwork(Network):
    """2-D mesh with per-hop latency.

    Latency between distinct nodes is ``base_latency + hop_cycles * hops``
    where ``hops`` is the Manhattan distance on a near-square mesh.
    ``base_latency`` defaults to the configured network latency scaled so
    that the *average* latency over all pairs matches the constant-latency
    network, which keeps results comparable.
    """

    def __init__(self, sim, config, counters=None, hop_cycles=8, base_latency=None,
                 instrument=None):
        super().__init__(sim, config, counters, instrument=instrument)
        n = config.n_processors
        self.cols = int(math.ceil(math.sqrt(n)))
        self.rows = int(math.ceil(n / self.cols))
        if self.cols * self.rows < n:
            raise ConfigError("mesh dimensions do not cover all nodes")
        self.hop_cycles = hop_cycles
        if base_latency is None:
            base_latency = max(1, config.network_latency - hop_cycles * self._mean_hops(n))
        self.base_latency = int(base_latency)

    def _coords(self, node):
        return node // self.cols, node % self.cols

    def hops(self, src, dst):
        r1, c1 = self._coords(src)
        r2, c2 = self._coords(dst)
        return abs(r1 - r2) + abs(c1 - c2)

    def _mean_hops(self, n):
        total = 0
        pairs = 0
        for a in range(n):
            for b in range(n):
                if a != b:
                    total += self.hops(a, b)
                    pairs += 1
        return total // max(pairs, 1)

    def latency(self, src, dst):
        return self.base_latency + self.hop_cycles * self.hops(src, dst)

"""Simulation-as-a-service: the ``dsi-sim serve`` subsystem.

Turns the harness into a long-running multi-tenant server.  Every
ingredient already existed — frozen, hashable, JSON-round-trippable
:class:`~repro.harness.runspec.RunSpec` values, the content-addressed
on-disk :class:`~repro.harness.runpool.ResultCache`, and the
schema-versioned harness telemetry stream — this package makes them
reachable over HTTP:

:mod:`repro.service.broker`
    The :class:`~repro.service.broker.SweepBroker`: a persistent worker
    pool shared across requests, a bounded FIFO job queue, in-flight
    dedupe keyed by spec content address (identical specs from different
    tenants share one execution), and per-sweep telemetry hubs with
    streaming-subscriber fan-out.

:mod:`repro.service.registry`
    A hierarchical named-sweep registry (``bench/smoke``,
    ``paper/figure3``, ...) seeded from the pinned bench suites and the
    paper figure/table planners, with register/lookup/list.

:mod:`repro.service.ratelimit`
    Per-tenant token buckets behind the 429 + Retry-After path.

:mod:`repro.service.app`
    The stdlib HTTP façade (:class:`~repro.service.app.DsiService`,
    importable and testable in-process) behind ``dsi-sim serve``.

:mod:`repro.service.client`
    :class:`~repro.service.client.ServiceClient`, the programmatic and
    ``dsi-sim submit`` client: submit specs or named sweeps, stream the
    NDJSON event feed, fetch results.

See docs/SERVICE.md for the API reference.
"""

#: Version of the service's JSON payload layout (status, stats, errors).
SERVICE_SCHEMA_VERSION = 1

from repro.service.broker import BrokerClosedError, RejectedError, SweepBroker  # noqa: E402
from repro.service.client import ServiceClient, ServiceClientError  # noqa: E402
from repro.service.ratelimit import RateLimiter  # noqa: E402
from repro.service.registry import SweepRegistry, default_registry  # noqa: E402
from repro.service.app import DsiService  # noqa: E402

__all__ = [
    "SERVICE_SCHEMA_VERSION",
    "BrokerClosedError",
    "DsiService",
    "RateLimiter",
    "RejectedError",
    "ServiceClient",
    "ServiceClientError",
    "SweepBroker",
    "SweepRegistry",
    "default_registry",
]

"""HTTP client for the sweep service (``dsi-sim submit`` and library use).

Pure stdlib (``urllib.request``) against the API in docs/SERVICE.md.
Transport or HTTP-level failures raise :class:`ServiceClientError`
carrying the status code and the server's structured error payload when
one was returned (429 responses include the parsed ``Retry-After``).
"""

import json
import urllib.error
import urllib.request

from repro.errors import ReproError


class ServiceClientError(ReproError):
    """A request the service refused (or could not be delivered)."""

    def __init__(self, message, status=None, payload=None, retry_after=None):
        super().__init__(message)
        self.status = status
        self.payload = payload
        self.retry_after = retry_after


class ServiceClient:
    """Talks to one ``dsi-sim serve`` instance.

    >>> client = ServiceClient("http://127.0.0.1:8775")
    >>> sweep = client.submit_name("bench/smoke", tenant="ci")
    >>> done = client.wait(sweep["sweep"])
    """

    def __init__(self, base_url, tenant=None, timeout=30.0):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _request(self, method, path, body=None, stream=False, timeout=None,
                 tenant=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if tenant or self.tenant:
            headers["X-Tenant"] = tenant or self.tenant
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers,
                                         method=method)
        try:
            response = urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as exc:
            payload = None
            try:
                payload = json.loads(exc.read().decode("utf-8"))
            except (ValueError, OSError):
                pass
            retry_after = exc.headers.get("Retry-After")
            message = (payload or {}).get("error") or f"HTTP {exc.code} on {path}"
            raise ServiceClientError(
                message, status=exc.code, payload=payload,
                retry_after=float(retry_after) if retry_after else None,
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceClientError(f"cannot reach {url}: {exc}") from exc
        if stream:
            return response
        with response:
            return json.loads(response.read().decode("utf-8"))

    # -- endpoints ------------------------------------------------------
    def health(self):
        return self._request("GET", "/v1/health")

    def stats(self):
        return self._request("GET", "/v1/stats")

    def registry(self, prefix=None):
        path = "/v1/registry"
        if prefix:
            from urllib.parse import quote

            path += "?prefix=" + quote(prefix, safe="")
        return self._request("GET", path)

    def submit_specs(self, specs, tenant=None):
        """POST a batch of RunSpecs (objects or already-serialized
        dicts); returns the acceptance payload with the sweep id."""
        payload = {
            "specs": [
                spec if isinstance(spec, dict) else spec.to_dict()
                for spec in specs
            ]
        }
        return self._request("POST", "/v1/sweeps", body=payload, tenant=tenant)

    def submit_name(self, name, tenant=None):
        """POST a registry-named sweep (``/v1/sweeps?name=bench/smoke``)."""
        from urllib.parse import quote

        return self._request(
            "POST", "/v1/sweeps?name=" + quote(name, safe=""), body={},
            tenant=tenant,
        )

    def register(self, name, specs, description=""):
        """Register a named sweep on the server (``POST /v1/registry``)."""
        payload = {
            "name": name,
            "description": description,
            "specs": [
                spec if isinstance(spec, dict) else spec.to_dict()
                for spec in specs
            ],
        }
        return self._request("POST", "/v1/registry", body=payload)

    def sweep(self, sweep_id):
        return self._request("GET", f"/v1/sweeps/{sweep_id}")

    def run(self, cache_key):
        return self._request("GET", f"/v1/runs/{cache_key}")

    def wait(self, sweep_id, timeout=300.0, poll=0.2):
        """Poll until the sweep is done; returns its final status."""
        import time

        deadline = time.monotonic() + timeout
        while True:
            status = self.sweep(sweep_id)
            if status["state"] == "done":
                return status
            if time.monotonic() >= deadline:
                raise ServiceClientError(
                    f"sweep {sweep_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def events(self, sweep_id, timeout=300.0):
        """Generator over the sweep's NDJSON event stream (ends at
        ``sweep_end`` or when the server closes the stream)."""
        response = self._request(
            "GET", f"/v1/sweeps/{sweep_id}/events", stream=True, timeout=timeout
        )
        with response:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line.decode("utf-8"))
                yield event
                if event.get("type") == "sweep_end":
                    return

"""The HTTP façade: ``dsi-sim serve`` and the in-process test server.

Stdlib only (:class:`http.server.ThreadingHTTPServer`), so the service
adds no runtime dependency and a test can stand up a real server on an
ephemeral port in-process.  Routes (see docs/SERVICE.md):

========================================  ======================================
``GET  /v1/health``                       liveness probe (never touches the broker lock)
``GET  /v1/stats``                        uptime, queue depth, cache hit rate, tenants
``GET  /v1/registry[?prefix=...]``        named-sweep listing
``POST /v1/registry``                     register a named sweep (eager spec list)
``POST /v1/sweeps``                       submit a JSON RunSpec batch
``POST /v1/sweeps?name=bench/smoke``      submit a registry-named sweep
``GET  /v1/sweeps/<id>``                  sweep status + per-run results
``GET  /v1/sweeps/<id>/events``           NDJSON telemetry stream (replay + live)
``GET  /v1/runs/<cache_key>``             one cached ``{"spec", "record"}``
========================================  ======================================

Error responses are JSON: 400 carries the structured
:class:`~repro.harness.runspec.SpecValidationError` detail list, 429
carries ``Retry-After`` (seconds) from admission control, 503 means the
broker is shutting down.
"""

import json
import queue
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlparse

from repro.errors import ConfigError, ReproError
from repro.harness.runspec import RunSpec, SpecValidationError
from repro.service import SERVICE_SCHEMA_VERSION
from repro.service.broker import BrokerClosedError, RejectedError, SweepBroker
from repro.service.registry import SweepRegistry, default_registry

#: Largest accepted request body (a full-suite sweep is ~100 KB).
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "dsi-sim-serve/1"

    # -- plumbing -------------------------------------------------------
    @property
    def broker(self):
        return self.server.broker

    @property
    def registry(self):
        return self.server.registry

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            sys.stderr.write(
                f"[serve] {self.address_string()} {format % args}\n"
            )

    def _send_json(self, status, payload, headers=()):
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._send_json(413, {"error": f"body larger than {MAX_BODY_BYTES} bytes"})
            return None
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            self._send_json(400, {"error": f"request body is not JSON: {exc}"})
            return None
        if not isinstance(body, dict):
            self._send_json(400, {"error": "request body must be a JSON object"})
            return None
        return body

    def _tenant(self, body):
        return (
            self.headers.get("X-Tenant")
            or (body or {}).get("tenant")
            or "anonymous"
        )

    # -- dispatch -------------------------------------------------------
    def do_GET(self):  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [unquote(p) for p in url.path.strip("/").split("/") if p]
        try:
            if parts == ["v1", "health"]:
                self._health()
            elif parts == ["v1", "stats"]:
                self._stats()
            elif parts == ["v1", "registry"]:
                self._registry_list(url)
            elif len(parts) == 3 and parts[:2] == ["v1", "sweeps"]:
                self._sweep_status(parts[2])
            elif len(parts) == 4 and parts[:2] == ["v1", "sweeps"] and parts[3] == "events":
                self._sweep_events(parts[2])
            elif len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                self._run(parts[2])
            else:
                self._send_json(404, {"error": f"no such resource: {url.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-response
        except ReproError as exc:
            self._send_json(500, {"error": str(exc)})

    def do_POST(self):  # noqa: N802 - stdlib naming
        url = urlparse(self.path)
        parts = [unquote(p) for p in url.path.strip("/").split("/") if p]
        try:
            if parts == ["v1", "sweeps"]:
                self._submit(url)
            elif parts == ["v1", "registry"]:
                self._registry_add()
            else:
                self._send_json(404, {"error": f"no such resource: {url.path}"})
        except (BrokenPipeError, ConnectionResetError):
            pass
        except ReproError as exc:
            self._send_json(500, {"error": str(exc)})

    # -- endpoints ------------------------------------------------------
    def _health(self):
        # Deliberately lock-free: health must answer fast even when the
        # broker is saturated.
        self._send_json(200, {
            "status": "ok",
            "schema": SERVICE_SCHEMA_VERSION,
            "uptime_s": time.time() - self.server.started,
        })

    def _stats(self):
        payload = self.broker.stats()
        payload["schema"] = SERVICE_SCHEMA_VERSION
        payload["registry"] = {"names": len(self.registry)}
        self._send_json(200, payload)

    def _registry_list(self, url):
        params = parse_qs(url.query)
        prefix = params.get("prefix", [None])[0]
        try:
            rows = self.registry.describe(prefix)
        except ConfigError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(200, {"schema": SERVICE_SCHEMA_VERSION, "sweeps": rows})

    def _registry_add(self):
        body = self._read_body()
        if body is None:
            return
        name = body.get("name")
        spec_payloads = body.get("specs")
        if not name or not isinstance(spec_payloads, list) or not spec_payloads:
            self._send_json(400, {
                "error": "registry registration needs 'name' and a non-empty 'specs' list"
            })
            return
        specs, errors = _parse_specs(spec_payloads)
        if errors:
            self._send_json(400, {"error": "invalid RunSpec payload", "details": errors})
            return
        try:
            canonical = self.registry.register(
                name, specs=specs, description=body.get("description", ""),
            )
        except ConfigError as exc:
            status = 409 if "already taken" in str(exc) else 400
            self._send_json(status, {"error": str(exc)})
            return
        self._send_json(201, {"name": canonical, "specs": len(specs)})

    def _submit(self, url):
        body = self._read_body()
        if body is None:
            return
        tenant = self._tenant(body)
        params = parse_qs(url.query)
        name = params.get("name", [None])[0]
        if name is not None:
            try:
                specs = list(self.registry.lookup(name))
            except KeyError:
                self._send_json(404, {"error": f"no registered sweep named {name!r}"})
                return
            except ConfigError as exc:
                self._send_json(400, {"error": str(exc)})
                return
        else:
            spec_payloads = body.get("specs")
            if not isinstance(spec_payloads, list) or not spec_payloads:
                self._send_json(400, {
                    "error": "submission needs a non-empty 'specs' list "
                             "(or a ?name= registry reference)"
                })
                return
            specs, errors = _parse_specs(spec_payloads)
            if errors:
                self._send_json(
                    400, {"error": "invalid RunSpec payload", "details": errors}
                )
                return
        try:
            job = self.broker.submit(specs, tenant=tenant, name=name)
        except RejectedError as exc:
            retry_after = exc.retry_after if exc.retry_after is not None else 1.0
            self._send_json(
                429,
                {"error": str(exc), "retry_after_s": retry_after},
                headers=[("Retry-After", f"{max(retry_after, 0.001):.3f}")],
            )
            return
        except BrokerClosedError:
            self._send_json(503, {"error": "server is shutting down"})
            return
        status = job.status()
        self._send_json(202, {
            "sweep": job.id,
            "state": status["state"],
            "tenant": tenant,
            "name": name,
            "counts": status["counts"],
        })

    def _sweep_status(self, sweep_id):
        job = self.broker.sweep(sweep_id)
        if job is None:
            self._send_json(404, {"error": f"no such sweep: {sweep_id}"})
            return
        self._send_json(200, job.status())

    def _sweep_events(self, sweep_id):
        try:
            replay, sink = self.broker.subscribe(sweep_id)
        except KeyError:
            self._send_json(404, {"error": f"no such sweep: {sweep_id}"})
            return
        try:
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            ended = False
            for event in replay:
                self.wfile.write(json.dumps(event, sort_keys=True).encode("utf-8") + b"\n")
                if event.get("type") == "sweep_end":
                    ended = True
            self.wfile.flush()
            while not ended:
                try:
                    event = sink.queue.get(timeout=1.0)
                except queue.Empty:
                    if self.broker.sweep(sweep_id).done.is_set():
                        break  # done but sweep_end was consumed elsewhere
                    continue
                if event is None:  # hub closed (server shutdown)
                    break
                self.wfile.write(json.dumps(event, sort_keys=True).encode("utf-8") + b"\n")
                self.wfile.flush()
                ended = event.get("type") == "sweep_end"
        except (BrokenPipeError, ConnectionResetError):
            pass  # subscriber disconnected mid-stream
        finally:
            # Always detach, or the hub would fan out to a dead queue
            # forever (tests assert no sink leaks here).
            self.broker.unsubscribe(sweep_id, sink)

    def _run(self, key):
        payload = self.broker.run_payload(key)
        if payload is None:
            self._send_json(404, {"error": f"no cached run under key {key[:32]!r}"})
            return
        self._send_json(200, payload)


def _parse_specs(payloads):
    """Validate a payload list into RunSpecs; returns ``(specs, errors)``
    where each error dict is tagged with its spec index."""
    specs, errors = [], []
    for index, payload in enumerate(payloads):
        try:
            specs.append(RunSpec.from_dict(payload))
        except SpecValidationError as exc:
            errors.extend({"spec": index, **detail} for detail in exc.errors)
    return specs, errors


class _Server(ThreadingHTTPServer):
    # The stdlib default accept backlog (5) overflows under concurrent
    # tenants opening a fresh connection per request; a dropped SYN costs
    # the client a full 1s kernel retransmit.  Deepen it well past any
    # realistic connection burst.
    request_queue_size = 128


class DsiService:
    """One running sweep server: broker + registry + HTTP listener.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` is the base
    address either way.  Use as a context manager or call :meth:`close`
    — shutdown stops the listener, then drains the broker.
    """

    def __init__(self, host="127.0.0.1", port=0, broker=None, registry=None,
                 quiet=True, **broker_kwargs):
        self.broker = broker if broker is not None else SweepBroker(**broker_kwargs)
        self._own_broker = broker is None
        if registry is None:
            registry = default_registry()
        elif not isinstance(registry, SweepRegistry):
            raise ConfigError("registry must be a SweepRegistry")
        self.registry = registry
        self._server = _Server((host, port), _Handler)
        self._server.daemon_threads = True
        self._server.broker = self.broker
        self._server.registry = self.registry
        self._server.quiet = quiet
        self._server.started = time.time()
        self.host, self.port = self._server.server_address[:2]
        self._thread = None

    @property
    def url(self):
        return f"http://{self.host}:{self.port}"

    def start(self):
        """Serve in a background thread (in-process use); returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="dsi-serve", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self):
        """Serve on the calling thread (the CLI path)."""
        self._server.serve_forever()

    def close(self, drain=True):
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
        if self._own_broker:
            self.broker.close(drain=drain)

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()

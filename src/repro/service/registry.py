"""Hierarchical named-sweep registry.

Names are ``/``-separated paths (``bench/smoke``, ``paper/figure3``,
``ablation:tardis_vs_dsi`` normalizes to ``ablation/tardis_vs_dsi``),
registered either eagerly (a spec list, e.g. a tenant POSTing its own
sweep) or lazily (a loader callable, materialized and memoized on first
lookup — planning a paper figure builds hundreds of specs, which a
``GET /v1/registry`` listing should not pay for).

:func:`default_registry` seeds the hierarchy every server starts with:
the pinned bench suites (``bench/*``), the paper figure/table plans
(``paper/*``) and the ablations (``ablation/*``).
"""

import re
import threading

from repro.errors import ConfigError
from repro.harness.runspec import RunSpec

_SEGMENT = re.compile(r"^[A-Za-z0-9_.-]+$")


def normalize_name(name):
    """Canonical registry path, or raise :class:`ConfigError`.

    ``:`` separators are accepted as ``/`` (the CLI's ``ablation:fifo``
    spelling), segments must be non-empty filename-ish tokens."""
    if not isinstance(name, str) or not name:
        raise ConfigError(f"registry name must be a non-empty string, not {name!r}")
    segments = name.replace(":", "/").split("/")
    for segment in segments:
        if not _SEGMENT.match(segment):
            raise ConfigError(
                f"bad registry name segment {segment!r} in {name!r} "
                "(letters, digits, '_', '.', '-' only)"
            )
    return "/".join(segments)


class _Entry:
    __slots__ = ("name", "description", "specs", "loader", "source")

    def __init__(self, name, description, specs=None, loader=None, source="user"):
        self.name = name
        self.description = description
        self.specs = specs
        self.loader = loader
        self.source = source


class SweepRegistry:
    """Thread-safe register/lookup/list over a flat dict of path names."""

    def __init__(self):
        self._entries = {}
        self._lock = threading.Lock()

    def register(self, name, specs=None, loader=None, description="", source="user",
                 overwrite=False):
        """Register ``name`` -> a spec list or a lazy loader (exactly one).

        Returns the canonical name.  Re-registering an existing name
        requires ``overwrite`` (the HTTP layer maps the refusal to 409).
        """
        name = normalize_name(name)
        if (specs is None) == (loader is None):
            raise ConfigError("register needs exactly one of specs= or loader=")
        if specs is not None:
            specs = tuple(specs)
            for spec in specs:
                if not isinstance(spec, RunSpec):
                    raise ConfigError(f"registry specs must be RunSpec values, not {type(spec).__name__}")
            if not specs:
                raise ConfigError("a named sweep needs at least one spec")
        with self._lock:
            if name in self._entries and not overwrite:
                raise ConfigError(f"registry name {name!r} already taken")
            self._entries[name] = _Entry(name, description, specs=specs,
                                         loader=loader, source=source)
        return name

    def lookup(self, name):
        """The spec tuple registered under ``name`` (loaders memoize)."""
        name = normalize_name(name)
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise KeyError(name)
        if entry.specs is None:
            specs = tuple(entry.loader())
            with self._lock:
                entry.specs = specs
        return entry.specs

    def names(self, prefix=None):
        """Sorted names, optionally restricted to one subtree (a prefix
        matches whole segments: ``paper`` lists ``paper/figure3`` but a
        name ``papers/x`` stays out)."""
        with self._lock:
            names = sorted(self._entries)
        if prefix is None:
            return names
        prefix = normalize_name(prefix)
        return [n for n in names if n == prefix or n.startswith(prefix + "/")]

    def describe(self, prefix=None):
        """Listing payload: one row per entry, spec counts only for
        already-materialized entries (lazy plans stay lazy)."""
        rows = []
        for name in self.names(prefix):
            with self._lock:
                entry = self._entries[name]
            rows.append(
                {
                    "name": entry.name,
                    "description": entry.description,
                    "source": entry.source,
                    "specs": len(entry.specs) if entry.specs is not None else None,
                }
            )
        return rows

    def __contains__(self, name):
        try:
            with self._lock:
                return normalize_name(name) in self._entries
        except ConfigError:
            return False

    def __len__(self):
        with self._lock:
            return len(self._entries)


def default_registry(procs=None, quick=True):
    """The registry a server boots with.

    ``bench/*`` resolve through :func:`repro.harness.bench.suite_specs`
    (each suite keeps its pinned processor count unless ``procs``
    overrides it); ``paper/*`` and ``ablation/*`` resolve through the
    experiment planners at ``quick`` scale — the plan phase builds specs
    only, no simulation runs.
    """
    from repro.harness import bench

    registry = SweepRegistry()
    for suite in sorted(bench.SUITES):
        registry.register(
            f"bench/{suite}",
            loader=_bench_loader(suite, procs),
            description=f"pinned bench suite '{suite}' "
            f"({len(bench.SUITES[suite])} runs, procs={procs or bench.SUITE_PROCS[suite]})",
            source="seed",
        )
    from repro.harness.cli import PLANNERS

    for name, planner in sorted(PLANNERS.items()):
        path = normalize_name(name if "/" in name or ":" in name else f"paper/{name}")
        registry.register(
            path,
            loader=_planner_loader(planner, procs, quick),
            description=f"experiment plan '{name}' "
            f"({'quick' if quick else 'full'} scale, procs={procs or 8})",
            source="seed",
        )
    return registry


def _bench_loader(suite, procs):
    def load():
        from repro.harness import bench

        return [spec for _workload, _protocol, spec in bench.suite_specs(suite, procs=procs)]

    return load


def _planner_loader(planner, procs, quick):
    def load():
        from repro.harness.experiment import ExperimentRunner
        from repro.harness.telemetry import TelemetryConfig

        # An inert TelemetryConfig keeps the planner's throwaway pool off
        # the DSI_LOG/DSI_PROFILE environment (plan phase only — no runs).
        runner = ExperimentRunner(
            n_procs=procs or 8, quick=quick, jobs=1, telemetry=TelemetryConfig()
        )
        return list(planner(runner))

    return load

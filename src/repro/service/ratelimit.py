"""Per-tenant token-bucket rate limiting for the sweep service.

Each tenant owns one :class:`TokenBucket`: ``burst`` tokens of capacity,
refilled continuously at ``rate`` tokens per second.  A submission costs
one token; when the bucket is empty the limiter answers with the exact
number of seconds until a token exists — the ``Retry-After`` the HTTP
layer returns with its 429.  Buckets are created lazily per tenant, so
an idle service holds no state.
"""

import threading
import time


class TokenBucket:
    """One tenant's budget: ``burst`` capacity, ``rate`` tokens/second."""

    def __init__(self, rate, burst, clock=time.monotonic):
        if rate <= 0:
            raise ValueError("rate must be > 0 tokens/second")
        if burst < 1:
            raise ValueError("burst must be >= 1 token")
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = self.burst
        self._updated = clock()

    def acquire(self, cost=1.0):
        """Take ``cost`` tokens; returns 0.0 on success, else the seconds
        until the bucket will hold that many (the Retry-After)."""
        now = self.clock()
        self.tokens = min(self.burst, self.tokens + (now - self._updated) * self.rate)
        self._updated = now
        if self.tokens >= cost:
            self.tokens -= cost
            return 0.0
        return (cost - self.tokens) / self.rate


class RateLimiter:
    """Per-tenant buckets sharing one (rate, burst) policy.

    ``rate <= 0`` disables limiting entirely (``acquire`` always grants),
    so a broker can hold a limiter unconditionally.
    """

    def __init__(self, rate=0.0, burst=None, clock=time.monotonic):
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate * 2, 1.0)
        self.clock = clock
        self._buckets = {}
        self._lock = threading.Lock()

    @property
    def enabled(self):
        return self.rate > 0

    def acquire(self, tenant, cost=1.0):
        """0.0 when ``tenant`` may proceed, else its Retry-After seconds."""
        if not self.enabled:
            return 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.rate, self.burst, clock=self.clock
                )
            return bucket.acquire(cost)

    def describe(self):
        """Stats payload: the policy plus the tenants currently tracked."""
        return {
            "enabled": self.enabled,
            "rate_per_s": self.rate if self.enabled else None,
            "burst": self.burst if self.enabled else None,
            "tenants_tracked": len(self._buckets),
        }

"""The :class:`SweepBroker`: the layer between HTTP and the run pool.

A broker owns what individual :class:`~repro.harness.runpool.RunPool`
instances cannot share: a *persistent* worker pool, a bounded FIFO job
queue, and a process-lifetime memo of every run it has ever served.
Submissions from any number of tenants funnel through one dedupe table
keyed by RunSpec content address, so

* a spec already on disk (the :class:`~repro.harness.runpool.ResultCache`)
  is answered instantly as a cache hit,
* a spec currently queued or executing is *joined* — the second tenant
  attaches to the in-flight run and both sweeps are served by one
  execution,
* only genuinely novel specs consume a queue slot.

Admission control is two-layered and atomic per sweep: the per-tenant
token bucket (:mod:`repro.service.ratelimit`) and the queue-depth bound
both reject with :class:`RejectedError` (HTTP 429 + Retry-After) before
anything is enqueued — a sweep is admitted whole or not at all.

Telemetry is the same schema-v1 stream the harness logs (PR 9): each
sweep owns a :class:`~repro.harness.telemetry.TelemetryHub` with a
:class:`~repro.harness.telemetry.BufferSink` for replay, and streaming
subscribers attach atomically (replayed prefix, then live fan-out,
exactly once).  A second, *global* hub sees every unique run's lifecycle
exactly once — that is the stream ``serve --log`` records and the load
test audits for exactly-once execution.
"""

import threading
import time
import traceback
from collections import deque

from repro.errors import ReproError
from repro.harness.runpool import ResultCache, code_fingerprint, execute_spec
from repro.harness.telemetry import (
    BufferSink,
    HeartbeatSampler,
    JsonlSink,
    TelemetryHub,
    make_event,
    new_sweep_id,
)
from repro.service import ratelimit


class RejectedError(ReproError):
    """A submission refused by admission control (HTTP 429)."""

    def __init__(self, reason, retry_after=None):
        super().__init__(reason)
        self.reason = reason
        self.status = 429
        self.retry_after = retry_after


class BrokerClosedError(ReproError):
    """The broker is shut down; no further submissions are accepted."""


#: Run states.  QUEUED/RUNNING are live; DONE/FAILED are terminal and a
#: run, once terminal, never leaves the memo — late sweeps attach to the
#: stored result.
QUEUED, RUNNING, DONE, FAILED = "queued", "running", "done", "failed"


class _Run:
    """One unique spec's lifetime inside the broker."""

    __slots__ = (
        "key", "spec", "state", "origin", "watchers", "record",
        "error", "worker", "from_disk",
    )

    def __init__(self, key, spec, origin):
        self.key = key
        self.spec = spec
        self.state = QUEUED
        self.origin = origin  # sweep id whose submission created the run
        self.watchers = []    # jobs awaiting this run's terminal event
        self.record = None    # RunRecord payload dict once DONE
        self.error = None     # "Type: message" once FAILED
        self.worker = None
        self.from_disk = False

    @property
    def terminal(self):
        return self.state in (DONE, FAILED)


class SweepJob:
    """One tenant submission: an ordered spec batch plus its event hub."""

    def __init__(self, sweep_id, tenant, specs, name=None):
        self.id = sweep_id
        self.tenant = tenant
        self.name = name
        self.specs = tuple(specs)
        self.created = time.time()
        self.buffer = BufferSink()
        self.hub = TelemetryHub([self.buffer])
        self.hub.begin_sweep(sweep_id)
        self.runs = []        # _Run per spec, submission order
        self.remaining = 0    # runs not yet terminal *for this sweep*
        self.executed = 0     # runs this sweep caused to execute
        self.cached = 0       # disk hits + memo hits + in-flight joins
        self.failed = 0
        self.wall_s = None
        self.done = threading.Event()

    @property
    def state(self):
        return "done" if self.done.is_set() else "active"

    def status(self):
        """The ``GET /v1/sweeps/<id>`` payload (terminal runs inline
        their full RunRecord, live ones their current state)."""
        runs = []
        for run in self.runs:
            entry = {
                "spec_key": run.key,
                "workload": run.spec.workload,
                "label": run.spec.config.describe(),
                "status": run.state,
            }
            if run.state == DONE:
                entry["record"] = run.record
            elif run.state == FAILED:
                entry["error"] = run.error
            runs.append(entry)
        return {
            "sweep": self.id,
            "state": self.state,
            "tenant": self.tenant,
            "name": self.name,
            "created": self.created,
            "counts": {
                "specs": len(self.runs),
                "pending": self.remaining,
                "executed": self.executed,
                "cached": self.cached,
                "failed": self.failed,
            },
            "wall_s": self.wall_s,
            "events_buffered": len(self.buffer.events),
            "events_dropped": self.buffer.dropped,
            "runs": runs,
        }


class _QueueSink:
    """Hub sink feeding one streaming subscriber's queue.  ``close``
    (hub shutdown) delivers the ``None`` sentinel so a blocked reader
    wakes and ends its stream."""

    def __init__(self):
        import queue

        self.queue = queue.Queue()

    def handle(self, event):
        self.queue.put(event)

    def close(self):
        self.queue.put(None)


class SweepBroker:
    """Multi-tenant sweep execution with dedupe and admission control.

    Parameters
    ----------
    cache_dir:
        Root of the on-disk :class:`ResultCache`; ``None`` keeps results
        in memory only (the in-process memo still dedupes).
    jobs:
        Persistent worker *threads*.  Threads, not processes: the broker
        lives inside a threaded HTTP server, workers run whole specs
        through :func:`execute_spec` (the simulator releases no GIL, but
        service workloads are small and the win here is dedupe + cache,
        not parallel speedup).
    queue_depth:
        Max queued-not-yet-running runs; a sweep whose novel specs would
        exceed it is rejected whole with 429.
    rate / burst:
        Per-tenant token-bucket policy (``rate <= 0`` disables).
    log_path:
        Optional JSONL file receiving the global event stream
        (``dsi-sim serve --log``), readable by ``dsi-sim report``.
    heartbeat_interval:
        Worker heartbeat period in seconds; ``0`` (default) disables —
        service runs are typically sub-second.
    executor:
        ``f(spec, observer=None) -> RunRecord``; tests substitute a stub
        to control execution timing.
    """

    def __init__(self, cache_dir=None, jobs=2, queue_depth=64, rate=0.0,
                 burst=None, log_path=None, heartbeat_interval=0.0,
                 executor=execute_spec, fingerprint=None, clock=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.jobs = jobs
        self.queue_depth = queue_depth
        self.heartbeat_interval = heartbeat_interval
        self.cache = ResultCache(cache_dir, fingerprint=fingerprint) if cache_dir else None
        self.fingerprint = self.cache.fingerprint if self.cache else (
            fingerprint or code_fingerprint()
        )
        self.limiter = ratelimit.RateLimiter(rate=rate, burst=burst,
                                             **({"clock": clock} if clock else {}))
        self._executor = executor
        self.started = time.time()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue = deque()
        self._runs = {}    # spec key -> _Run (process-lifetime memo)
        self._sweeps = {}  # sweep id -> SweepJob
        self._tenants = {}
        self._closed = False
        # The global stream: every unique run exactly once, stamped with
        # its origin sweep (this hub never has an "active" sweep of its
        # own — events carry the field explicitly).
        self.global_buffer = BufferSink(max_events=500_000)
        sinks = [self.global_buffer]
        if log_path:
            sinks.append(JsonlSink(log_path))
        self._ghub = TelemetryHub(sinks)
        self._threads = [
            threading.Thread(target=self._worker_loop, name=f"sweep-worker-{i}",
                             daemon=True)
            for i in range(jobs)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, specs, tenant="anonymous", name=None):
        """Admit one sweep; returns its :class:`SweepJob`.

        Raises :class:`RejectedError` (whole sweep, nothing partially
        enqueued) on rate-limit or queue-depth refusal, and
        :class:`BrokerClosedError` after :meth:`close`.
        """
        specs = list(specs)
        if not specs:
            raise ValueError("a sweep needs at least one spec")
        retry_after = self.limiter.acquire(tenant)
        if retry_after > 0:
            with self._lock:
                self._tenant(tenant)["rejected"] += 1
            raise RejectedError("rate limit exceeded", retry_after=retry_after)
        # Deduplicate within the batch and probe the disk cache outside
        # the lock (file I/O); in-memory state is re-checked under it.
        unique, seen = [], set()
        for spec in specs:
            key = spec.key()
            if key not in seen:
                seen.add(key)
                unique.append((key, spec))
        disk = {}
        if self.cache is not None:
            for key, _spec in unique:
                payload = self.cache.get_by_key(key)
                if payload is not None:
                    disk[key] = payload["record"]

        sweep_id = new_sweep_id()
        job = SweepJob(sweep_id, tenant, [spec for _key, spec in unique], name=name)
        fresh, joined, instant = [], [], []
        with self._cond:
            if self._closed:
                raise BrokerClosedError("broker is closed")
            novel = [
                (key, spec) for key, spec in unique
                if key not in self._runs and key not in disk
            ]
            if len(self._queue) + len(novel) > self.queue_depth:
                self._tenant(tenant)["rejected"] += 1
                raise RejectedError(
                    f"queue full ({len(self._queue)}/{self.queue_depth} queued, "
                    f"sweep needs {len(novel)} slots)"
                )
            counters = self._tenant(tenant)
            counters["sweeps"] += 1
            counters["specs"] += len(unique)
            for key, spec in unique:
                run = self._runs.get(key)
                if run is None and key in disk:
                    run = _Run(key, spec, origin=sweep_id)
                    run.state = DONE
                    run.record = disk[key]
                    run.from_disk = True
                    self._runs[key] = run
                if run is None:
                    run = _Run(key, spec, origin=sweep_id)
                    self._runs[key] = run
                    fresh.append(run)
                elif run.terminal:
                    instant.append(run)
                else:
                    joined.append(run)
                job.runs.append(run)
            job.remaining = len(job.runs)
            self._sweeps[sweep_id] = job

        # Emit the sweep's opening events *before* the fresh runs become
        # executable, so a subscriber's stream is always well-ordered
        # (queued precedes terminal).
        job.hub.emit(make_event(
            "sweep_begin", specs=len(job.runs), pending=len(fresh) + len(joined),
            jobs=self.jobs, fingerprint=self.fingerprint[:16],
        ))
        self._emit_global(make_event(
            "sweep_begin", sweep=sweep_id, specs=len(job.runs),
            pending=len(fresh), jobs=self.jobs, fingerprint=self.fingerprint[:16],
        ))
        for run in fresh + joined:
            job.hub.emit(make_event(
                "run_queued", spec_key=run.key, workload=run.spec.workload,
                label=run.spec.config.describe(),
            ))
        for run in fresh:
            self._emit_global(make_event(
                "run_queued", sweep=sweep_id, spec_key=run.key,
                workload=run.spec.workload, label=run.spec.config.describe(),
            ))

        # Attach to live runs / settle already-terminal ones, then make
        # the fresh runs executable.
        settled, dropped = [], []
        with self._cond:
            for run in joined:
                if run.terminal:
                    settled.append(run)
                else:
                    run.watchers.append(job)
            for run in fresh:
                run.watchers.append(job)
                if self._closed:  # closed between admission and enqueue
                    run.state = FAILED
                    run.error = "BrokerClosedError: broker closed before execution"
                    dropped.append(run)
                    settled.append(run)
                else:
                    self._queue.append(run)
            self._cond.notify_all()
        for run in dropped:
            self._emit_global(make_event(
                "run_failed", sweep=run.origin, spec_key=run.key,
                workload=run.spec.workload, label=run.spec.config.describe(),
                error=run.error, traceback="",
            ))
        for run in instant + settled:
            if self._settle(job, run):
                self._finish_job(job)
        return job

    def _tenant(self, tenant):
        return self._tenants.setdefault(
            tenant, {"sweeps": 0, "specs": 0, "rejected": 0}
        )

    # ------------------------------------------------------------------
    # Execution (worker threads)
    # ------------------------------------------------------------------
    def _worker_loop(self):
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait(timeout=0.5)
                if self._queue:
                    run = self._queue.popleft()
                    run.state = RUNNING
                    run.worker = threading.get_ident()
                else:  # closed and drained
                    return
            self._execute(run)

    def _execute(self, run):
        spec = run.spec
        self._emit_global(make_event(
            "run_started", sweep=run.origin, spec_key=run.key,
            workload=spec.workload, label=spec.config.describe(),
            worker=run.worker,
        ))
        observer = None
        if self.heartbeat_interval:
            origin = run.origin

            def emit(event, _origin=origin):
                event = dict(event)
                event["sweep"] = _origin
                self._emit_global(event)

            observer = HeartbeatSampler(
                emit, run.key, worker=run.worker,
                interval=self.heartbeat_interval,
            )
        try:
            record = self._executor(spec, observer=observer)
        except Exception as exc:
            tb = traceback.format_exc()
            self._complete(run, error=f"{type(exc).__name__}: {exc}", tb=tb)
            return
        if self.cache is not None:
            try:
                self.cache.put(spec, record)
            except OSError:
                pass  # a full disk degrades to memo-only dedupe
        self._complete(run, record=record.to_dict())

    def _complete(self, run, record=None, error=None, tb=""):
        with self._cond:
            if error is not None:
                run.state = FAILED
                run.error = error
            else:
                run.state = DONE
                run.record = record
            watchers, run.watchers = run.watchers, []
        if error is not None:
            self._emit_global(make_event(
                "run_failed", sweep=run.origin, spec_key=run.key,
                workload=run.spec.workload, label=run.spec.config.describe(),
                error=error, traceback=tb,
            ))
        else:
            self._emit_global(make_event(
                "run_finished", sweep=run.origin,
                **self._terminal_fields(run),
                sim_cycles_per_s=record.get("sim_cycles_per_s"),
                profile=None,
            ))
        for job in watchers:
            if self._settle(job, run):
                self._finish_job(job)

    def _terminal_fields(self, run):
        config = run.spec.config
        record = run.record or {}
        return {
            "spec_key": run.key,
            "workload": run.spec.workload,
            "label": config.describe(),
            "cache_kb": config.cache_size // 1024,
            "net": config.network_latency,
            "exec_time": record.get("exec_time"),
            "wall_time_s": record.get("wall_time_s"),
        }

    def _settle(self, job, run):
        """Deliver ``run``'s terminal event to ``job``; True when the
        sweep just completed.  The *origin* sweep sees ``run_finished``
        (it paid for the execution); every other watcher — and any disk
        or memo hit — sees ``run_cached``."""
        with self._lock:
            job.remaining -= 1
            complete = job.remaining == 0
            if run.state == FAILED:
                job.failed += 1
            elif run.origin == job.id and not run.from_disk:
                job.executed += 1
            else:
                job.cached += 1
        if run.state == FAILED:
            job.hub.emit(make_event(
                "run_failed", spec_key=run.key, workload=run.spec.workload,
                label=run.spec.config.describe(), error=run.error, traceback="",
            ))
        elif run.origin == job.id and not run.from_disk:
            job.hub.emit(make_event(
                "run_finished", **self._terminal_fields(run),
                sim_cycles_per_s=(run.record or {}).get("sim_cycles_per_s"),
                profile=None,
            ))
        else:
            job.hub.emit(make_event("run_cached", **self._terminal_fields(run)))
        return complete

    def _finish_job(self, job):
        job.wall_s = time.time() - job.created
        job.hub.emit(make_event(
            "sweep_end", executed=job.executed, cache_hits=job.cached,
            failed=job.failed, wall_s=job.wall_s,
        ))
        self._emit_global(make_event(
            "sweep_end", sweep=job.id, executed=job.executed,
            cache_hits=job.cached, failed=job.failed, wall_s=job.wall_s,
        ))
        job.done.set()

    def _emit_global(self, event):
        self._ghub.emit(event)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def sweep(self, sweep_id):
        """The :class:`SweepJob` for an id, or None."""
        with self._lock:
            return self._sweeps.get(sweep_id)

    def wait(self, sweep_id, timeout=None):
        """Block until a sweep completes; returns its status payload."""
        job = self.sweep(sweep_id)
        if job is None:
            raise KeyError(sweep_id)
        if not job.done.wait(timeout):
            raise TimeoutError(f"sweep {sweep_id} still running after {timeout}s")
        return job.status()

    def subscribe(self, sweep_id):
        """Attach a streaming subscriber; returns ``(replay, sink)``.

        ``replay`` is every event the sweep has emitted so far; further
        events arrive on ``sink.queue`` (``None`` terminates).  The
        snapshot and the attachment are atomic, so the subscriber sees
        each event exactly once.  Callers MUST :meth:`unsubscribe`."""
        job = self.sweep(sweep_id)
        if job is None:
            raise KeyError(sweep_id)
        sink = _QueueSink()
        replay = job.hub.add_sink(sink, replay=lambda: job.buffer.events)
        return replay, sink

    def unsubscribe(self, sweep_id, sink):
        job = self.sweep(sweep_id)
        if job is None:
            return False
        return job.hub.remove_sink(sink)

    def run_payload(self, key):
        """``{"spec", "record"}`` for a run key: in-memory memo first,
        then the on-disk cache.  None when unknown."""
        with self._lock:
            run = self._runs.get(key)
            if run is not None and run.state == DONE:
                return {"spec": run.spec.to_dict(), "record": run.record}
        if self.cache is not None:
            return self.cache.get_by_key(key)
        return None

    def global_events(self):
        """Snapshot of the global (exactly-once) event stream."""
        with self._ghub._lock:
            return list(self.global_buffer.events)

    def stats(self):
        with self._lock:
            executed = sum(
                1 for run in self._runs.values()
                if run.state == DONE and not run.from_disk
            )
            failed = sum(1 for run in self._runs.values() if run.state == FAILED)
            live = sum(1 for run in self._runs.values() if not run.terminal)
            requested = sum(t["specs"] for t in self._tenants.values())
            sweeps = list(self._sweeps.values())
            cached = sum(job.cached for job in sweeps)
            tenants = {name: dict(c) for name, c in self._tenants.items()}
            queue_len = len(self._queue)
        served = executed + cached
        return {
            "uptime_s": time.time() - self.started,
            "closed": self._closed,
            "jobs": self.jobs,
            "queue": {"depth": queue_len, "limit": self.queue_depth},
            "sweeps": {
                "total": len(sweeps),
                "active": sum(1 for job in sweeps if not job.done.is_set()),
                "done": sum(1 for job in sweeps if job.done.is_set()),
            },
            "runs": {
                "unique": len(self._runs),
                "executed": executed,
                "failed": failed,
                "live": live,
                "requested": requested,
                "cache_hits": cached,
                "cache_hit_rate": (cached / served) if served else None,
            },
            "tenants": tenants,
            "ratelimit": self.limiter.describe(),
            "fingerprint": self.fingerprint[:16],
            "events": {
                "buffered": len(self.global_buffer.events),
                "dropped": self.global_buffer.dropped,
            },
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, drain=True):
        """Stop the broker.  ``drain=True`` (default) lets the workers
        finish every queued run first; ``drain=False`` fails queued runs
        immediately (in-flight ones still complete).  Idempotent."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            dropped = []
            if not drain:
                dropped = list(self._queue)
                self._queue.clear()
                for run in dropped:
                    run.state = FAILED
                    run.error = "BrokerClosedError: broker closed before execution"
            self._cond.notify_all()
        for run in dropped:
            with self._cond:
                watchers, run.watchers = run.watchers, []
            self._emit_global(make_event(
                "run_failed", sweep=run.origin, spec_key=run.key,
                workload=run.spec.workload, label=run.spec.config.describe(),
                error=run.error, traceback="",
            ))
            for job in watchers:
                if self._settle(job, run):
                    self._finish_job(job)
        for thread in self._threads:
            thread.join(timeout=60)
        with self._lock:
            jobs = list(self._sweeps.values())
        for job in jobs:
            job.hub.close()
        self._ghub.close()

"""Directory entry state.

The base protocol has the three states of the paper's Figure 1: Idle,
Shared, Exclusive.  The DSI additional-states scheme (§4.1) refines them:

* ``Shared_SI`` — represented as ``state == DIR_SHARED`` with
  ``shared_si`` set: every subsequent read obtains a self-invalidate block.
* ``Idle_X`` / ``Idle_S`` — idle reached through *self-invalidation* of an
  exclusive / shared copy: ``state == DIR_IDLE`` with ``idle_flavor``.
* ``Idle_SI`` — idle reached through cache *replacement* of a block that
  was marked for self-invalidation.

The version-number scheme instead uses ``version`` (4 bits, wraps) and
``read_ctr`` (a 2-bit shift register of shared grants for the current
version).  Both sets of fields live in every entry; only the active
identification policy reads its own.

Sharers are a bit mask; ``owner`` is the single exclusive holder.
"""

from collections import deque

from repro.core.tearoff import TearoffTracker

DIR_IDLE = 0
DIR_SHARED = 1
DIR_EXCLUSIVE = 2

FLAVOR_PLAIN = 0  # plain Idle
FLAVOR_X = 1  # Idle_X: self-invalidated from Exclusive
FLAVOR_S = 2  # Idle_S: self-invalidated from Shared
FLAVOR_SI = 3  # Idle_SI: replacement of a self-invalidate block

_STATE_NAMES = {DIR_IDLE: "Idle", DIR_SHARED: "Shared", DIR_EXCLUSIVE: "Exclusive"}
_FLAVOR_NAMES = {FLAVOR_PLAIN: "", FLAVOR_X: "_X", FLAVOR_S: "_S", FLAVOR_SI: "_SI"}


class DirEntry:
    """One block's directory entry (allocated on first touch)."""

    __slots__ = (
        "state",
        "sharers",
        "owner",
        "idle_flavor",
        "shared_si",
        "last_writer",
        "version",
        "read_ctr",
        "tearoff",
        "data",
        "busy",
        "txn",
        "deferred",
        "migratory",
        "wts",
        "rts",
        "lease",
    )

    def __init__(self):
        self.state = DIR_IDLE
        self.sharers = 0  # bit mask of tracked shared copies
        self.owner = None  # node id of the exclusive holder
        self.idle_flavor = FLAVOR_PLAIN
        self.shared_si = False
        self.last_writer = None
        self.version = 0
        self.read_ctr = 0
        self.tearoff = TearoffTracker()
        self.data = 0  # write-stamp of the memory copy
        self.busy = False  # a transaction is collecting acks
        self.txn = None
        self.deferred = deque()  # requests queued behind the transaction
        self.migratory = False  # detected read-then-write migration
        self.wts = 0  # (Tardis) logical write timestamp of the memory copy
        self.rts = 0  # (Tardis) latest outstanding read lease
        self.lease = 0  # (Tardis) per-block adaptive lease (0 = use static)

    # ------------------------------------------------------------------
    def sharer_list(self):
        sharers, node, out = self.sharers, 0, []
        while sharers:
            if sharers & 1:
                out.append(node)
            sharers >>= 1
            node += 1
        return out

    def sharer_count(self):
        return bin(self.sharers).count("1")

    def has_sharer(self, node):
        return bool(self.sharers & (1 << node))

    def add_sharer(self, node):
        self.sharers |= 1 << node

    def remove_sharer(self, node):
        self.sharers &= ~(1 << node)

    def state_name(self):
        """Paper-style state name, e.g. ``Shared_SI`` or ``Idle_X``."""
        if self.state == DIR_IDLE:
            return "Idle" + _FLAVOR_NAMES[self.idle_flavor]
        if self.state == DIR_SHARED and self.shared_si:
            return "Shared_SI"
        return _STATE_NAMES[self.state]

    def __repr__(self):
        extra = f" owner={self.owner}" if self.state == DIR_EXCLUSIVE else ""
        if self.state == DIR_SHARED:
            extra = f" sharers={self.sharer_list()}"
        return f"DirEntry({self.state_name()}{extra}, v={self.version})"

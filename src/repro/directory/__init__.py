"""Full-map directory: entry state and the directory controller."""

from repro.directory.state import (
    DIR_EXCLUSIVE,
    DIR_IDLE,
    DIR_SHARED,
    FLAVOR_PLAIN,
    FLAVOR_S,
    FLAVOR_SI,
    FLAVOR_X,
    DirEntry,
)
from repro.directory.controller import DirectoryController

__all__ = [
    "DIR_EXCLUSIVE",
    "DIR_IDLE",
    "DIR_SHARED",
    "DirEntry",
    "DirectoryController",
    "FLAVOR_PLAIN",
    "FLAVOR_S",
    "FLAVOR_SI",
    "FLAVOR_X",
]

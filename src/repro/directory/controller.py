"""The full-map directory controller.

One controller per node; it owns the directory entries of the blocks whose
home is that node.  Every incoming message occupies the controller for
``dir_ctrl_cycles`` (10) cycles — this occupancy, together with the FIFO
queueing in front of it, is the directory contention the paper models.

Every state decision is made by the declarative transition table in
:mod:`repro.coherence.dir_table`: ``_dispatch`` derives the symbolic
directory state (:class:`~repro.coherence.events.DirState`), asks the
table for the first matching guarded row, and runs the row's actions.
What remains here is mechanism — message intake, the transaction slot,
grant/INV message construction, deferred-queue bookkeeping — plus one
``_act_*`` method per :class:`~repro.coherence.events.DirAction`.

Protocol summary
----------------
* **GETS** — Idle/Shared: respond immediately.  Exclusive: invalidate the
  owner, collect the data, then respond (both SC and WC: the data must
  come from the owner).
* **GETX/UPGRADE** — Idle: respond immediately.  Shared: under SC,
  invalidate every sharer, collect all acks, then respond; under WC, grant
  immediately (in parallel with the invalidations) and forward a single
  ACK_DONE to the new owner once all acks arrive.  Exclusive: invalidate
  the owner first (data needed).
* While a transaction is collecting acknowledgments the entry is *busy*
  and later requests for the block are deferred in arrival order.
* Replacement notifications (WB/REPL) and self-invalidation notifications
  (SI_NOTIFY) may race with invalidations.  They are *applied* on arrival
  (owner/sharers dropped, data captured) but never consumed as
  acknowledgment substitutes: a cache acknowledges every INV it receives
  — with INV_ACK even when the copy is already gone — so acknowledgments
  pair one-to-one with invalidations, arrive in INV order on each
  node-pair FIFO, and can never alias across the block's serialized
  transactions.  (Consuming a crossing notification as an ack would let a
  *stale* INV_ACK, still in flight from the previous transaction,
  complete the next transaction early — without the new owner's data.)
  The cache side upholds the matching guarantee: an INV that lands after
  a dirty copy self-invalidated but *before* its SI_NOTIFY left the node
  consumes the queued notice and carries the data on the acknowledgment
  (``CONSUME_SI_NOTICE``) — a dataless ack overtaking the notice would
  complete the racing transaction here with a stale memory copy.

DSI hooks
---------
The response to every miss is classified by the configured identification
policy (:mod:`repro.core.identify`).  The two §4.1 special cases are
applied here: requests from the home node itself are never marked, and —
under SC — an upgrade by the sole sharer is not marked.  When tear-off
mode is on (WC), marked *shared* responses become tear-off blocks: the
requester is not recorded in the full map.
"""

from repro.coherence.compile import (
    DIR_EVENT_INDEX,
    DIR_EVENTS,
    DIR_STATE_INDEX,
    DIR_STATES,
    compile_table,
)
from repro.coherence.diagnostics import directory_diagnostic
from repro.coherence.dir_table import dir_table
from repro.coherence.events import DirAction as A, DirEvent as E, DirState as S
from repro.coherence.variants import ProtocolVariant
from repro.config import Consistency, IdentifyScheme
from repro.core.mechanisms import make_lease_policy
from repro.directory.state import (
    DIR_EXCLUSIVE,
    DIR_IDLE,
    DIR_SHARED,
    FLAVOR_PLAIN,
    FLAVOR_S,
    FLAVOR_SI,
    FLAVOR_X,
)
from repro.directory.state import DirEntry
from repro.engine.resource import Resource
from repro.errors import ProtocolError
from repro.network.message import Message, MsgKind

_REQUESTS = (E.GETS, E.GETX, E.UPGRADE)
#: span label for the dir_txn_begin probe
_REQ_KIND = {E.GETS: "read", E.GETX: "write", E.UPGRADE: "upgrade"}
#: entry.state -> symbolic stable state
_STATES = {DIR_IDLE: S.IDLE, DIR_SHARED: S.SHARED, DIR_EXCLUSIVE: S.EXCL}

# Integer codes for the compiled dispatch path (repro.coherence.compile).
_ST_B_READ = DIR_STATE_INDEX[S.B_READ]
_ST_B_WRITE = DIR_STATE_INDEX[S.B_WRITE]
_ST_B_WB = DIR_STATE_INDEX[S.B_WB]
_ST_B_WCP = DIR_STATE_INDEX[S.B_WCP]

_EV_LAST_ACK = DIR_EVENT_INDEX[E.LAST_ACK]

#: entry.state (DIR_IDLE/DIR_SHARED/DIR_EXCLUSIVE are 0/1/2) -> state index
_STABLE_IDX = [
    DIR_STATE_INDEX[S.IDLE],
    DIR_STATE_INDEX[S.SHARED],
    DIR_STATE_INDEX[S.EXCL],
]

#: MsgKind (IntEnum) -> table event index; list-indexed, None = not for us.
_MSG_EVENTS = [None] * (max(int(kind) for kind in MsgKind) + 1)
for _kind, _event in (
    (MsgKind.GETS, E.GETS),
    (MsgKind.GETX, E.GETX),
    (MsgKind.UPGRADE, E.UPGRADE),
    (MsgKind.INV_ACK, E.INV_ACK),
    (MsgKind.INV_ACK_DATA, E.INV_ACK_DATA),
    (MsgKind.WB, E.WB),
    (MsgKind.REPL, E.REPL),
    (MsgKind.SI_NOTIFY, E.SI_NOTIFY),
):
    _MSG_EVENTS[_kind] = DIR_EVENT_INDEX[_event]
del _kind, _event

_UNSET = object()


class Transaction:
    """An in-flight invalidation/collection for one block."""

    __slots__ = (
        "kind",
        "msg",
        "decision",
        "upgrade_grant",
        "pending_inv",
        "inv_sent_at",
        "wc_parallel",
        "waiting_wb",
        "migratory_read",
    )

    def __init__(self, kind, msg, decision, upgrade_grant=False):
        self.kind = kind  # "read" | "write"
        self.msg = msg
        self.decision = decision
        self.upgrade_grant = upgrade_grant
        self.pending_inv = set()
        self.inv_sent_at = 0
        self.wc_parallel = False
        self.waiting_wb = False
        self.migratory_read = False  # a read served with an exclusive copy


class _Ctx:
    """Dispatch context: the table's guards are lazy properties over it.

    Classification is *lazy* so that rows whose actions precede it (the
    Cox-Fowler migratory detection) observe the entry exactly as the
    hand-written controller did: probe, detection, then classify.  A
    context built for the internal LAST_ACK event carries the deferred
    transaction's original decision and upgrade flag instead.
    """

    __slots__ = ("ctrl", "entry", "msg", "txn", "targets", "inval_wait",
                 "_decision", "_upgrade_grant")

    def __init__(self, ctrl, entry, msg, txn=None):
        self.ctrl = ctrl
        self.entry = entry
        self.msg = msg
        self.txn = txn
        self.targets = ()
        self.inval_wait = 0
        if txn is not None:
            self._decision = txn.decision
            self._upgrade_grant = txn.upgrade_grant
        else:
            self._decision = _UNSET
            self._upgrade_grant = _UNSET

    @property
    def decision(self):
        if self._decision is _UNSET:
            msg = self.msg
            if msg.kind is MsgKind.GETS:
                self._decision = self.ctrl._classify_read(
                    self.entry, msg.src, msg.version
                )
            else:
                self._decision = self.ctrl._classify_write(
                    self.entry, msg.src, msg.version, self.upgrade_grant
                )
        return self._decision

    @property
    def upgrade_grant(self):
        if self._upgrade_grant is _UNSET:
            self._upgrade_grant = (
                self.msg.kind is MsgKind.UPGRADE
                and self.entry.state == DIR_SHARED
                and self.entry.has_sharer(self.msg.src)
            )
        return self._upgrade_grant

    # -- guards ---------------------------------------------------------
    @property
    def owner_is_requester(self):
        return self.entry.owner == self.msg.src

    @property
    def migratory_predicted(self):
        # Rows using this guard only exist in migratory-variant tables.
        return self.entry.migratory

    @property
    def tearoff_grant(self):
        config = self.ctrl.config
        return bool(self.decision.si and (config.tearoff or config.sc_tearoff))

    @property
    def no_other_sharers(self):
        src = self.msg.src
        return not [n for n in self.entry.sharer_list() if n != src]

    @property
    def from_owner(self):
        return self.msg.src == self.entry.owner

    @property
    def from_pending(self):
        txn = self.entry.txn
        return txn is not None and self.msg.src in txn.pending_inv

    @property
    def from_sharer(self):
        return self.entry.has_sharer(self.msg.src)

    @property
    def carries_data(self):
        return self.msg.carries_data

    @property
    def last_sharer(self):
        return self.entry.sharer_count() == 1

    @property
    def requester_current(self):
        # (Tardis) the upgrader's copy matches the memory copy, so
        # exclusivity can be granted without data.
        return self.msg.wts == self.entry.wts


class DirectoryController:
    """Directory controller for one home node."""

    def __init__(self, sim, config, node, network, policy, instrument=None):
        self.sim = sim
        self.config = config
        self.node = node
        self.network = network
        self.policy = policy
        self.obs = instrument
        self.resource = Resource(sim, name=f"dir{node}")
        self.entries = {}
        self.stale_messages = 0
        self._wc = config.consistency is Consistency.WC
        self._states_scheme = config.identify is IdentifyScheme.STATES
        self._tearoff_cfg = bool(config.tearoff or config.sc_tearoff)
        self._migratory_variant = bool(config.migratory and not config.tardis)
        self.variant = ProtocolVariant.from_config(config)
        self.table = dir_table(self.variant)
        self.ctable = compiled_dir_table(self.variant)
        self._decide = (
            self.ctable.decide if config.compiled_dispatch
            else self.ctable.decide_interpreted
        )
        self.lease_policy = make_lease_policy(config) if config.tardis else None
        # Lane hot-path prebinds.
        self._dcc = config.dir_ctrl_cycles
        self._submit = self.resource.submit

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def entry_for(self, block):
        entry = self.entries.get(block)
        if entry is None:
            entry = DirEntry()
            self.entries[block] = entry
        return entry

    def symbolic_state(self, block):
        """Symbolic protocol state of ``block``'s entry."""
        entry = self.entries.get(block)
        if entry is None:
            return S.IDLE
        return self._derive_state(entry)

    @staticmethod
    def _derive_state(entry):
        if entry.busy:
            txn = entry.txn
            if txn.waiting_wb:
                return S.B_WB
            if txn.wc_parallel:
                return S.B_WCP
            if txn.kind == "read":
                return S.B_READ
            return S.B_WRITE
        return _STATES[entry.state]

    @staticmethod
    def _derive_state_idx(entry):
        """Integer form of :meth:`_derive_state` for the hot path."""
        if entry.busy:
            txn = entry.txn
            if txn.waiting_wb:
                return _ST_B_WB
            if txn.wc_parallel:
                return _ST_B_WCP
            if txn.kind == "read":
                return _ST_B_READ
            return _ST_B_WRITE
        return _STABLE_IDX[entry.state]

    # ------------------------------------------------------------------
    # Message intake and table dispatch
    # ------------------------------------------------------------------
    def receive(self, msg):
        """Entry point from the network: queue behind the controller."""
        self.resource.submit(self.config.dir_ctrl_cycles, self._process, msg)

    def _process(self, msg):
        event = _MSG_EVENTS[msg.kind]
        if event is None:
            raise ProtocolError(
                f"directory {self.node} received unexpected {msg!r}"
            )
        self._dispatch(event, _Ctx(self, self.entry_for(msg.block), msg))

    def _dispatch(self, event, ctx, state=-1):
        """Derive the state index, pick the compiled row, run its actions."""
        if state < 0:
            state = self._derive_state_idx(ctx.entry)
        row = self._decide(state, event, ctx)
        if self.obs is not None:
            if row.txn_kind is not None:
                self.obs.dir_txn_begin(
                    self.node, ctx.msg.block, row.txn_kind, ctx.msg.src,
                    txn_id=ctx.msg.txn_id,
                )
            self.obs.protocol_transition(
                "dir", self.node, ctx.msg.block,
                row.state_name, row.event_name, row.next_name,
            )
        if row.error is not None:
            raise ProtocolError(
                f"dir {self.node}: {row.error} (block {ctx.msg.block}, "
                f"from node {ctx.msg.src}, state {row.state_name})"
            )
        for fn in row.fns:
            fn(self, ctx)

    # ------------------------------------------------------------------
    # Request actions
    # ------------------------------------------------------------------
    def _act_defer(self, ctx):
        ctx.entry.deferred.append(ctx.msg)

    def _act_clear_migratory(self, ctx):
        ctx.entry.migratory = False

    def _act_detect_migratory(self, ctx):
        # The Cox-Fowler signature: the sole reader of a block last
        # written by someone else now writes it — migration detected.
        # Runs before classification (ctx.decision is still unset here).
        entry = ctx.entry
        if (
            not entry.migratory
            and ctx.upgrade_grant
            and entry.last_writer not in (None, ctx.msg.src)
        ):
            entry.migratory = True

    def _act_begin_read_txn(self, ctx):
        ctx.txn = txn = Transaction("read", ctx.msg, ctx.decision)
        ctx.entry.busy = True
        ctx.entry.txn = txn

    def _act_begin_write_txn(self, ctx):
        ctx.txn = txn = Transaction("write", ctx.msg, ctx.decision)
        ctx.entry.busy = True
        ctx.entry.txn = txn

    def _act_begin_migratory_txn(self, ctx):
        # Serve a read of a detected-migratory block with an *exclusive*
        # copy, eliminating the upgrade the reader would otherwise issue
        # (Cox & Fowler / Stenström et al.; cited as complementary in §2).
        ctx.txn = txn = Transaction("write", ctx.msg, ctx.decision)
        txn.migratory_read = True
        ctx.entry.busy = True
        ctx.entry.txn = txn

    def _act_begin_write_txn_shared(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        ctx.targets = [n for n in entry.sharer_list() if n != msg.src]
        ctx.txn = txn = Transaction("write", msg, ctx.decision, ctx.upgrade_grant)
        txn.pending_inv.update(ctx.targets)
        entry.busy = True
        entry.txn = txn
        txn.inv_sent_at = self.sim.now

    def _act_await_wb(self, ctx):
        # Late-writeback race: the owner's WB is in flight.
        ctx.txn.waiting_wb = True

    def _act_inv_owner(self, ctx):
        entry, txn = ctx.entry, ctx.txn
        txn.pending_inv.add(entry.owner)
        txn.inv_sent_at = self.sim.now
        self._send_inv(ctx.msg.block, entry.owner, txn=ctx.msg.txn_id)

    def _act_inv_sharers(self, ctx):
        for target in ctx.targets:
            self._send_inv(ctx.msg.block, target, txn=ctx.msg.txn_id)

    def _act_grant_read_tearoff(self, ctx):
        self._grant_read(ctx.entry, ctx.msg, ctx.decision, ctx.inval_wait)

    def _act_grant_read_tracked(self, ctx):
        self._grant_read(ctx.entry, ctx.msg, ctx.decision, ctx.inval_wait)

    def _act_grant_write(self, ctx):
        self._grant_write(
            ctx.entry, ctx.msg, ctx.decision, ctx.upgrade_grant, ctx.inval_wait
        )

    def _act_grant_write_parallel(self, ctx):
        # Parallel grant: respond now, forward one ACK_DONE later.
        ctx.txn.wc_parallel = True
        self._grant_write(
            ctx.entry, ctx.msg, ctx.decision, ctx.upgrade_grant,
            ctx.inval_wait, acks_pending=True,
        )

    # ------------------------------------------------------------------
    # Acknowledgment actions
    # ------------------------------------------------------------------
    def _act_process_ack(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        txn = entry.txn
        src = msg.src
        txn.pending_inv.discard(src)
        if self.obs is not None:
            self.obs.inv_acked(self.node, msg.block, src, txn_id=msg.txn_id)
        if msg.carries_data:
            entry.data = msg.data
        elif txn.migratory_read and entry.owner == src:
            # The previous "migratory" owner never wrote its exclusive
            # copy: the prediction was wrong.
            entry.migratory = False
        if entry.owner == src:
            entry.owner = None
        entry.remove_sharer(src)
        if not txn.pending_inv:
            self._dispatch(_EV_LAST_ACK, _Ctx(self, entry, txn.msg, txn=txn))

    def _act_notification_as_ack(self, ctx):
        # Bug-injection row (checker models only): never built into the
        # production tables.
        raise ProtocolError(
            "bug-injection row reached the production directory controller"
        )

    def _act_finish_txn(self, ctx):
        txn = ctx.txn
        ctx.inval_wait = self.sim.now - txn.inv_sent_at
        ctx.entry.busy = False
        ctx.entry.txn = None

    def _act_send_ack_done(self, ctx):
        txn = ctx.txn
        self.network.send(
            Message(MsgKind.ACK_DONE, txn.msg.block, src=self.node,
                    dst=txn.msg.src, txn_id=txn.msg.txn_id)
        )
        if self.obs is not None:
            self.obs.dir_txn_end(self.node, txn.msg.block)

    def _act_drain_deferred(self, ctx):
        self._drain_deferred(ctx.entry)

    # ------------------------------------------------------------------
    # Notification actions
    # ------------------------------------------------------------------
    def _act_apply_notification(self, ctx):
        # A notification racing with a busy transaction is applied against
        # the entry's underlying *stable* state: nested dispatch picks the
        # per-kind row (accept data / drop owner / remove sharer / stale).
        entry = ctx.entry
        self._dispatch(
            _MSG_EVENTS[ctx.msg.kind],
            _Ctx(self, entry, ctx.msg),
            state=_STABLE_IDX[entry.state],
        )

    def _act_restart_waiting_request(self, ctx):
        # The awaited writeback arrived: replay the waiting request from
        # scratch (it re-classifies against the updated entry).
        entry = ctx.entry
        request = entry.txn.msg
        entry.busy = False
        entry.txn = None
        self._dispatch(_MSG_EVENTS[request.kind], _Ctx(self, entry, request))
        self._drain_deferred(entry)

    def _act_accept_owner_data(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        entry.data = msg.data
        entry.owner = None
        entry.state = DIR_IDLE
        if msg.kind is MsgKind.SI_NOTIFY:
            entry.idle_flavor = FLAVOR_X
        else:
            entry.idle_flavor = FLAVOR_SI if msg.si_marked else FLAVOR_PLAIN

    def _act_drop_clean_owner(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        entry.owner = None
        entry.state = DIR_IDLE
        entry.idle_flavor = (
            FLAVOR_X if msg.kind is MsgKind.SI_NOTIFY
            else (FLAVOR_SI if msg.si_marked else FLAVOR_PLAIN)
        )

    def _act_remove_sharer(self, ctx):
        ctx.entry.remove_sharer(ctx.msg.src)

    def _act_remove_last_sharer(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        entry.remove_sharer(msg.src)
        entry.state = DIR_IDLE
        entry.shared_si = False
        if msg.kind is MsgKind.SI_NOTIFY:
            entry.idle_flavor = FLAVOR_S
        else:
            entry.idle_flavor = FLAVOR_SI if msg.si_marked else FLAVOR_PLAIN

    def _act_count_stale(self, ctx):
        self.stale_messages += 1

    # ------------------------------------------------------------------
    # Tardis actions (leased logical timestamps)
    # ------------------------------------------------------------------
    def _act_tardis_grant_read(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        # A non-zero wts on a GETS is the requester's expired/lost copy:
        # the renewal tells us whether that self-invalidation was wasted.
        renewed = msg.wts != 0
        changed = renewed and msg.wts != entry.wts
        self.lease_policy.on_read_grant(entry, renewed, changed)
        lease = self.lease_policy.lease_for(entry)
        entry.rts = max(entry.rts, max(msg.ts or 0, entry.wts) + lease)
        self.network.send(
            Message(
                MsgKind.DATA,
                msg.block,
                src=self.node,
                dst=msg.src,
                data=entry.data,
                carries_data=True,
                wts=entry.wts,
                rts=entry.rts,
                txn_id=msg.txn_id,
            )
        )
        if self.obs is not None:
            self.obs.lease_grant(self.node, msg.block, msg.src, lease, renewed, changed)
            self.obs.dir_grant(self.node, msg.block, msg.src, "read", False, False,
                               txn_id=msg.txn_id)
            self.obs.dir_txn_end(self.node, msg.block)

    def _act_tardis_grant_write(self, ctx):
        self._tardis_grant_excl(ctx, upgrade=False)

    def _act_tardis_grant_upgrade(self, ctx):
        self._tardis_grant_excl(ctx, upgrade=True)

    def _tardis_grant_excl(self, ctx, upgrade):
        entry, msg = ctx.entry, ctx.msg
        self.lease_policy.on_write_grant(entry, entry.rts - entry.wts)
        # The write jumps past every outstanding lease: readers keep their
        # (logically earlier) copies, no invalidation needed.
        wts = max(msg.ts or 0, entry.rts + 1)
        entry.wts = entry.rts = wts
        entry.state = DIR_EXCLUSIVE
        entry.owner = msg.src
        entry.last_writer = msg.src
        kind = MsgKind.UPGRADE_ACK if upgrade else MsgKind.DATA_EX
        self.network.send(
            Message(
                kind,
                msg.block,
                src=self.node,
                dst=msg.src,
                data=entry.data,
                carries_data=kind is MsgKind.DATA_EX,
                wts=wts,
                rts=wts,
                txn_id=msg.txn_id,
            )
        )
        if self.obs is not None:
            self.obs.dir_grant(
                self.node, msg.block, msg.src,
                "upgrade" if upgrade else "write", False, False,
                txn_id=msg.txn_id,
            )
            self.obs.dir_txn_end(self.node, msg.block)

    def _act_request_wb(self, ctx):
        self.network.send(
            Message(
                MsgKind.WB_REQ, ctx.msg.block, src=self.node,
                dst=ctx.entry.owner, txn_id=ctx.msg.txn_id,
            )
        )

    def _act_accept_owner_ts(self, ctx):
        entry, msg = ctx.entry, ctx.msg
        entry.data = msg.data
        entry.wts = max(entry.wts, msg.wts)
        entry.rts = max(entry.rts, msg.rts)
        entry.owner = None
        entry.state = DIR_IDLE

    # ------------------------------------------------------------------
    # Classification (the DSI identification hook)
    # ------------------------------------------------------------------
    def _classify_read(self, entry, src, version):
        decision = self.policy.classify_read(entry, src, version)
        if self.config.home_exclusion and src == self.node:
            decision.si = False
        return decision

    def _classify_write(self, entry, src, version, upgrade_grant):
        decision = self.policy.classify_write(entry, src, version)
        if self.config.home_exclusion and src == self.node:
            decision.si = False
        if (
            decision.si
            and not self._wc
            and self.config.sc_upgrade_special_case
            and upgrade_grant
            and entry.sharer_count() == 1
        ):
            # §4.1: an upgrade by the sole sharer would needlessly
            # self-invalidate the exclusive copy under SC.
            decision.si = False
        return decision

    # ------------------------------------------------------------------
    # Grants
    # ------------------------------------------------------------------
    def _grant_read(self, entry, msg, decision, inval_wait):
        requester = msg.src
        tearoff = bool(decision.si and (self.config.tearoff or self.config.sc_tearoff))
        self.policy.on_shared_grant(entry, requester, tearoff)
        if tearoff:
            if entry.state == DIR_EXCLUSIVE and entry.owner is None:
                # The previous owner was just invalidated and the only copy
                # handed out is untracked: the entry is idle.  Idle_X keeps
                # the additional-states scheme marking subsequent requests.
                entry.state = DIR_IDLE
                entry.idle_flavor = FLAVOR_X
        else:
            entry.add_sharer(requester)
            if entry.state != DIR_SHARED:
                entry.state = DIR_SHARED
                entry.idle_flavor = FLAVOR_PLAIN
                entry.shared_si = False
            if decision.si and self._states_scheme:
                entry.shared_si = True  # enter Shared_SI
        self.network.send(
            Message(
                MsgKind.DATA,
                msg.block,
                src=self.node,
                dst=requester,
                version=entry.version,
                si=decision.si,
                tearoff=tearoff,
                inval_wait=inval_wait,
                data=entry.data,
                carries_data=True,
                txn_id=msg.txn_id,
            )
        )
        if self.obs is not None:
            self.obs.dir_grant(
                self.node, msg.block, requester, "read", bool(decision.si), tearoff,
                txn_id=msg.txn_id,
            )
            self.obs.dir_txn_end(self.node, msg.block)

    def _grant_write(self, entry, msg, decision, upgrade_grant, inval_wait, acks_pending=False):
        requester = msg.src
        self.policy.on_exclusive_grant(entry, requester)
        entry.state = DIR_EXCLUSIVE
        entry.owner = requester
        entry.sharers = 0
        entry.shared_si = False
        entry.idle_flavor = FLAVOR_PLAIN
        entry.last_writer = requester
        kind = MsgKind.UPGRADE_ACK if upgrade_grant else MsgKind.DATA_EX
        self.network.send(
            Message(
                kind,
                msg.block,
                src=self.node,
                dst=requester,
                version=entry.version,
                si=decision.si,
                inval_wait=inval_wait,
                data=entry.data,
                acks_pending=acks_pending,
                carries_data=kind is MsgKind.DATA_EX,
                txn_id=msg.txn_id,
            )
        )
        if self.obs is not None:
            self.obs.dir_grant(
                self.node, msg.block, requester,
                "upgrade" if upgrade_grant else "write", bool(decision.si), False,
                txn_id=msg.txn_id,
            )
            if not acks_pending:
                self.obs.dir_txn_end(self.node, msg.block)

    def _send_inv(self, block, target, txn=None):
        if self.obs is not None:
            self.obs.inv_sent(self.node, block, target, txn_id=txn)
        self.network.send(
            Message(MsgKind.INV, block, src=self.node, dst=target, txn_id=txn)
        )

    def _drain_deferred(self, entry):
        while entry.deferred and not entry.busy:
            msg = entry.deferred.popleft()
            self._dispatch(_MSG_EVENTS[msg.kind], _Ctx(self, entry, msg))

    # ------------------------------------------------------------------
    # Relaxed-engine lanes (Message-free uncontended requests)
    # ------------------------------------------------------------------
    # Under ExecutionMode.RELAXED the cache controllers route plain
    # GETS/GETX/UPGRADE requests here without building a Message.  Each
    # lane occupies the controller resource exactly like ``receive``,
    # then either retires the request with a straight-line replica of the
    # uncontended table rows (classify, grant, lane response) or *bails*:
    # it materializes the Message it never built and runs the reference
    # ``_process`` at the very point the reference engine would have,
    # which makes a bail exact by construction.  Lanes are never active
    # under instrumentation, the invariant monitor, or Tardis.

    def _lane_gets(self, block, src, version):
        self.network.in_flight -= 1
        self._submit(self._dcc, self._lane_gets_work, block, src, version)

    def _lane_gets_work(self, block, src, version):
        entry = self.entry_for(block)
        if entry.busy or entry.migratory or entry.state == DIR_EXCLUSIVE:
            self._process(
                Message(MsgKind.GETS, block, src=src, dst=self.node, version=version)
            )
            return
        # GETS x Idle/Shared: every matching row is a lone grant action,
        # and the tracked/tear-off grant actions share one body
        # (``_grant_read``, replicated here without the Message).
        decision = self._classify_read(entry, src, version)
        tearoff = bool(decision.si and self._tearoff_cfg)
        self.policy.on_shared_grant(entry, src, tearoff)
        if not tearoff:
            entry.add_sharer(src)
            if entry.state != DIR_SHARED:
                entry.state = DIR_SHARED
                entry.idle_flavor = FLAVOR_PLAIN
                entry.shared_si = False
            if decision.si and self._states_scheme:
                entry.shared_si = True  # enter Shared_SI
        cache = self.network.cache_sinks[src]
        args = (block, entry.data, entry.version, decision.si, tearoff)
        if src == self.node:
            self.network.relaxed_send_local("DATA", True, cache._lane_data, args)
        else:
            self.network.relaxed_send_remote(
                "DATA", self.node, True, cache._lane_data, args
            )

    def _lane_write(self, block, src, version, upgrade):
        self.network.in_flight -= 1
        self._submit(self._dcc, self._lane_write_work, block, src, version, upgrade)

    def _lane_write_work(self, block, src, version, upgrade):
        entry = self.entry_for(block)
        state = entry.state
        if (
            entry.busy
            or state == DIR_EXCLUSIVE
            or (state == DIR_SHARED
                and any(n != src for n in entry.sharer_list()))
        ):
            self._process(
                Message(
                    MsgKind.UPGRADE if upgrade else MsgKind.GETX,
                    block, src=src, dst=self.node, version=version,
                )
            )
            return
        # GETX/UPGRADE x Idle, or the requester holds the only tracked
        # copy: the lone GRANT_WRITE row (DETECT_MIGRATORY first on the
        # migratory tables' sole-sharer UPGRADE row).
        upgrade_grant = upgrade and state == DIR_SHARED and entry.has_sharer(src)
        if (
            self._migratory_variant
            and upgrade
            and state == DIR_SHARED
            and not entry.migratory
            and upgrade_grant
            and entry.last_writer not in (None, src)
        ):
            entry.migratory = True
        decision = self._classify_write(entry, src, version, upgrade_grant)
        self.policy.on_exclusive_grant(entry, src)
        entry.state = DIR_EXCLUSIVE
        entry.owner = src
        entry.sharers = 0
        entry.shared_si = False
        entry.idle_flavor = FLAVOR_PLAIN
        entry.last_writer = src
        cache = self.network.cache_sinks[src]
        args = (block, entry.data, entry.version, decision.si)
        if upgrade_grant:
            arrival, carries, name = cache._lane_upgrade_ack, False, "UPGRADE_ACK"
        else:
            arrival, carries, name = cache._lane_data_ex, True, "DATA_EX"
        if src == self.node:
            self.network.relaxed_send_local(name, carries, arrival, args)
        else:
            self.network.relaxed_send_remote(name, self.node, carries, arrival, args)

    # ------------------------------------------------------------------
    def deadlock_diagnostic(self):
        return directory_diagnostic(self)


#: DirAction -> unbound action method, resolved once at import time.
_ACTIONS = {action: getattr(DirectoryController, f"_act_{action.value}") for action in A}


def _annotate_row(transition, row):
    """Precompute the dir_txn_begin probe label (None = no span starts)."""
    if (
        transition.event in _REQUESTS
        and transition.actions
        and transition.actions[0] is not A.DEFER
    ):
        row.txn_kind = _REQ_KIND[transition.event]


#: one compiled table per variant, shared by every home node
_COMPILED = {}


def compiled_dir_table(variant):
    """The compiled (integer-indexed) form of ``dir_table(variant)``."""
    compiled = _COMPILED.get(variant)
    if compiled is None:
        compiled = compile_table(
            dir_table(variant), DIR_STATES, DIR_EVENTS, _Ctx, _ACTIONS,
            annotate=_annotate_row,
        )
        _COMPILED[variant] = compiled
    return compiled

"""The full-map directory controller.

One controller per node; it owns the directory entries of the blocks whose
home is that node.  Every incoming message occupies the controller for
``dir_ctrl_cycles`` (10) cycles — this occupancy, together with the FIFO
queueing in front of it, is the directory contention the paper models.

Protocol summary
----------------
* **GETS** — Idle/Shared: respond immediately.  Exclusive: invalidate the
  owner, collect the data, then respond (both SC and WC: the data must
  come from the owner).
* **GETX/UPGRADE** — Idle: respond immediately.  Shared: under SC,
  invalidate every sharer, collect all acks, then respond; under WC, grant
  immediately (in parallel with the invalidations) and forward a single
  ACK_DONE to the new owner once all acks arrive.  Exclusive: invalidate
  the owner first (data needed).
* While a transaction is collecting acknowledgments the entry is *busy*
  and later requests for the block are deferred in arrival order.
* Replacement notifications (WB/REPL) and self-invalidation notifications
  (SI_NOTIFY) may race with invalidations.  They are *applied* on arrival
  (owner/sharers dropped, data captured) but never consumed as
  acknowledgment substitutes: a cache acknowledges every INV it receives
  — with INV_ACK even when the copy is already gone — so acknowledgments
  pair one-to-one with invalidations, arrive in INV order on each
  node-pair FIFO, and can never alias across the block's serialized
  transactions.  (Consuming a crossing notification as an ack would let a
  *stale* INV_ACK, still in flight from the previous transaction,
  complete the next transaction early — without the new owner's data.)

DSI hooks
---------
The response to every miss is classified by the configured identification
policy (:mod:`repro.core.identify`).  The two §4.1 special cases are
applied here: requests from the home node itself are never marked, and —
under SC — an upgrade by the sole sharer is not marked.  When tear-off
mode is on (WC), marked *shared* responses become tear-off blocks: the
requester is not recorded in the full map.
"""

from repro.config import Consistency, IdentifyScheme
from repro.directory.state import (
    DIR_EXCLUSIVE,
    DIR_IDLE,
    DIR_SHARED,
    FLAVOR_PLAIN,
    FLAVOR_S,
    FLAVOR_SI,
    FLAVOR_X,
)
from repro.directory.state import DirEntry
from repro.engine.resource import Resource
from repro.errors import ProtocolError
from repro.network.message import Message, MsgKind


class Transaction:
    """An in-flight invalidation/collection for one block."""

    __slots__ = (
        "kind",
        "msg",
        "decision",
        "upgrade_grant",
        "pending_inv",
        "inv_sent_at",
        "wc_parallel",
        "waiting_wb",
        "migratory_read",
    )

    def __init__(self, kind, msg, decision, upgrade_grant=False):
        self.kind = kind  # "read" | "write"
        self.msg = msg
        self.decision = decision
        self.upgrade_grant = upgrade_grant
        self.pending_inv = set()
        self.inv_sent_at = 0
        self.wc_parallel = False
        self.waiting_wb = False
        self.migratory_read = False  # a read served with an exclusive copy


class DirectoryController:
    """Directory controller for one home node."""

    def __init__(self, sim, config, node, network, policy, instrument=None):
        self.sim = sim
        self.config = config
        self.node = node
        self.network = network
        self.policy = policy
        self.obs = instrument
        self.resource = Resource(sim, name=f"dir{node}")
        self.entries = {}
        self.stale_messages = 0
        self._wc = config.consistency is Consistency.WC
        self._states_scheme = config.identify is IdentifyScheme.STATES

    # ------------------------------------------------------------------
    # Entry management
    # ------------------------------------------------------------------
    def entry_for(self, block):
        entry = self.entries.get(block)
        if entry is None:
            entry = DirEntry()
            self.entries[block] = entry
        return entry

    # ------------------------------------------------------------------
    # Message intake
    # ------------------------------------------------------------------
    def receive(self, msg):
        """Entry point from the network: queue behind the controller."""
        self.resource.submit(self.config.dir_ctrl_cycles, self._process, msg)

    def _process(self, msg):
        if msg.kind in (MsgKind.GETS, MsgKind.GETX, MsgKind.UPGRADE):
            entry = self.entry_for(msg.block)
            if entry.busy:
                entry.deferred.append(msg)
            else:
                self._start(entry, msg)
        else:
            self._notification(msg)

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def _start(self, entry, msg):
        if self.obs is not None:
            kind = (
                "read" if msg.kind is MsgKind.GETS
                else ("upgrade" if msg.kind is MsgKind.UPGRADE else "write")
            )
            self.obs.dir_txn_begin(self.node, msg.block, kind, msg.src)
        if msg.kind is MsgKind.GETS:
            self._start_read(entry, msg)
        else:
            self._start_write(entry, msg)

    def _classify_read(self, entry, msg):
        decision = self.policy.classify_read(entry, msg.src, msg.version)
        if self.config.home_exclusion and msg.src == self.node:
            decision.si = False
        return decision

    def _classify_write(self, entry, msg, upgrade_grant):
        decision = self.policy.classify_write(entry, msg.src, msg.version)
        if self.config.home_exclusion and msg.src == self.node:
            decision.si = False
        if (
            decision.si
            and not self._wc
            and self.config.sc_upgrade_special_case
            and upgrade_grant
            and entry.sharer_count() == 1
        ):
            # §4.1: an upgrade by the sole sharer would needlessly
            # self-invalidate the exclusive copy under SC.
            decision.si = False
        return decision

    def _start_read(self, entry, msg):
        decision = self._classify_read(entry, msg)
        if self.config.migratory and entry.migratory:
            if entry.state == DIR_SHARED:
                # Multiple readers: the migration pattern broke.
                entry.migratory = False
            else:
                self._start_migratory_read(entry, msg, decision)
                return
        if entry.state == DIR_EXCLUSIVE:
            txn = Transaction("read", msg, decision)
            entry.busy = True
            entry.txn = txn
            if entry.owner == msg.src:
                # Late-writeback race: the owner's WB is in flight.
                txn.waiting_wb = True
                return
            txn.pending_inv.add(entry.owner)
            txn.inv_sent_at = self.sim.now
            self._send_inv(msg.block, entry.owner)
            return
        self._grant_read(entry, msg, decision, inval_wait=0)

    def _start_migratory_read(self, entry, msg, decision):
        """Serve a read of a detected-migratory block with an *exclusive*
        copy, eliminating the upgrade the reader would otherwise issue
        (Cox & Fowler / Stenström et al.; cited as complementary in §2)."""
        txn = Transaction("write", msg, decision)
        txn.migratory_read = True
        if entry.state == DIR_EXCLUSIVE:
            entry.busy = True
            entry.txn = txn
            if entry.owner == msg.src:
                txn.waiting_wb = True
                return
            txn.pending_inv.add(entry.owner)
            txn.inv_sent_at = self.sim.now
            self._send_inv(msg.block, entry.owner)
            return
        # Idle (any flavor): grant directly.
        self._grant_write(entry, msg, decision, upgrade_grant=False, inval_wait=0)

    def _start_write(self, entry, msg):
        requester = msg.src
        upgrade_grant = (
            msg.kind is MsgKind.UPGRADE
            and entry.state == DIR_SHARED
            and entry.has_sharer(requester)
        )
        if (
            self.config.migratory
            and not entry.migratory
            and upgrade_grant
            and entry.sharer_count() == 1
            and entry.last_writer not in (None, requester)
        ):
            # The Cox-Fowler signature: the sole reader of a block last
            # written by someone else now writes it — migration detected.
            entry.migratory = True
        decision = self._classify_write(entry, msg, upgrade_grant)
        if entry.state == DIR_EXCLUSIVE:
            txn = Transaction("write", msg, decision)
            entry.busy = True
            entry.txn = txn
            if entry.owner == requester:
                txn.waiting_wb = True
                return
            txn.pending_inv.add(entry.owner)
            txn.inv_sent_at = self.sim.now
            self._send_inv(msg.block, entry.owner)
            return
        if entry.state == DIR_SHARED:
            targets = [n for n in entry.sharer_list() if n != requester]
            if not targets:
                self._grant_write(entry, msg, decision, upgrade_grant, inval_wait=0)
                return
            txn = Transaction("write", msg, decision, upgrade_grant)
            txn.pending_inv.update(targets)
            entry.busy = True
            entry.txn = txn
            txn.inv_sent_at = self.sim.now
            if self._wc:
                # Parallel grant: respond now, forward one ACK_DONE later.
                txn.wc_parallel = True
                self._grant_write(
                    entry, msg, decision, upgrade_grant, inval_wait=0, acks_pending=True
                )
            for target in targets:
                self._send_inv(msg.block, target)
            return
        # Idle
        self._grant_write(entry, msg, decision, upgrade_grant=False, inval_wait=0)

    # ------------------------------------------------------------------
    # Grants
    # ------------------------------------------------------------------
    def _grant_read(self, entry, msg, decision, inval_wait):
        requester = msg.src
        tearoff = bool(decision.si and (self.config.tearoff or self.config.sc_tearoff))
        self.policy.on_shared_grant(entry, requester, tearoff)
        if tearoff:
            if entry.state == DIR_EXCLUSIVE and entry.owner is None:
                # The previous owner was just invalidated and the only copy
                # handed out is untracked: the entry is idle.  Idle_X keeps
                # the additional-states scheme marking subsequent requests.
                entry.state = DIR_IDLE
                entry.idle_flavor = FLAVOR_X
        else:
            entry.add_sharer(requester)
            if entry.state != DIR_SHARED:
                entry.state = DIR_SHARED
                entry.idle_flavor = FLAVOR_PLAIN
                entry.shared_si = False
            if decision.si and self._states_scheme:
                entry.shared_si = True  # enter Shared_SI
        self.network.send(
            Message(
                MsgKind.DATA,
                msg.block,
                src=self.node,
                dst=requester,
                version=entry.version,
                si=decision.si,
                tearoff=tearoff,
                inval_wait=inval_wait,
                data=entry.data,
                carries_data=True,
            )
        )
        if self.obs is not None:
            self.obs.dir_txn_end(self.node, msg.block)

    def _grant_write(self, entry, msg, decision, upgrade_grant, inval_wait, acks_pending=False):
        requester = msg.src
        self.policy.on_exclusive_grant(entry, requester)
        entry.state = DIR_EXCLUSIVE
        entry.owner = requester
        entry.sharers = 0
        entry.shared_si = False
        entry.idle_flavor = FLAVOR_PLAIN
        entry.last_writer = requester
        kind = MsgKind.UPGRADE_ACK if upgrade_grant else MsgKind.DATA_EX
        self.network.send(
            Message(
                kind,
                msg.block,
                src=self.node,
                dst=requester,
                version=entry.version,
                si=decision.si,
                inval_wait=inval_wait,
                data=entry.data,
                acks_pending=acks_pending,
                carries_data=kind is MsgKind.DATA_EX,
            )
        )
        if self.obs is not None and not acks_pending:
            self.obs.dir_txn_end(self.node, msg.block)

    def _send_inv(self, block, target):
        if self.obs is not None:
            self.obs.inv_sent(self.node, block, target)
        self.network.send(Message(MsgKind.INV, block, src=self.node, dst=target))

    # ------------------------------------------------------------------
    # Notifications and acknowledgments
    # ------------------------------------------------------------------
    def _notification(self, msg):
        entry = self.entry_for(msg.block)
        txn = entry.txn
        if entry.busy and txn is not None:
            src = msg.src
            if txn.waiting_wb and src == entry.owner and msg.kind in (
                MsgKind.WB,
                MsgKind.SI_NOTIFY,
                MsgKind.REPL,
            ):
                self._apply_notification(entry, msg)
                request = txn.msg
                entry.busy = False
                entry.txn = None
                self._start(entry, request)
                self._drain_deferred(entry)
                return
            if src in txn.pending_inv and msg.kind in (
                MsgKind.INV_ACK,
                MsgKind.INV_ACK_DATA,
            ):
                txn.pending_inv.discard(src)
                if self.obs is not None:
                    self.obs.inv_acked(self.node, msg.block, src)
                if msg.carries_data:
                    entry.data = msg.data
                elif txn.migratory_read and entry.owner == src:
                    # The previous "migratory" owner never wrote its
                    # exclusive copy: the prediction was wrong.
                    entry.migratory = False
                if entry.owner == src:
                    entry.owner = None
                entry.remove_sharer(src)
                if not txn.pending_inv:
                    self._complete(entry)
                return
            if msg.kind in (MsgKind.INV_ACK, MsgKind.INV_ACK_DATA):
                # An acknowledgment from a node this transaction is not
                # waiting on cannot occur (acks pair 1:1 with INVs and the
                # block's transactions serialize).
                raise ProtocolError(
                    f"unexpected acknowledgment from node {src} for block "
                    f"{msg.block} (transaction pending on {sorted(txn.pending_inv)})"
                )
            # A racing notification (replacement or self-invalidation):
            # apply it, but keep waiting for the actual acknowledgments.
            self._apply_notification(entry, msg)
            return
        if msg.kind in (MsgKind.INV_ACK, MsgKind.INV_ACK_DATA):
            # Acks pair 1:1 with INVs, so one can never outlive its
            # transaction.
            raise ProtocolError(
                f"acknowledgment for block {msg.block} from node {msg.src} "
                "with no transaction in flight"
            )
        self._apply_notification(entry, msg)

    def _apply_notification(self, entry, msg):
        src = msg.src
        if msg.carries_data:  # WB or dirty SI_NOTIFY: an exclusive copy returns
            if entry.owner != src:
                self.stale_messages += 1
                return
            entry.data = msg.data
            entry.owner = None
            entry.state = DIR_IDLE
            if msg.kind is MsgKind.SI_NOTIFY:
                entry.idle_flavor = FLAVOR_X
            else:
                entry.idle_flavor = FLAVOR_SI if msg.si_marked else FLAVOR_PLAIN
            return
        # Clean shared copy leaving the cache.
        if entry.owner == src:
            # Defensive: a clean notification from the exclusive owner
            # (the protocol writes on every exclusive grant, so this should
            # not occur, but dropping the owner keeps the entry consistent).
            entry.owner = None
            entry.state = DIR_IDLE
            entry.idle_flavor = (
                FLAVOR_X if msg.kind is MsgKind.SI_NOTIFY
                else (FLAVOR_SI if msg.si_marked else FLAVOR_PLAIN)
            )
            return
        if not entry.has_sharer(src):
            self.stale_messages += 1
            return
        entry.remove_sharer(src)
        if entry.sharers == 0 and entry.state == DIR_SHARED:
            entry.state = DIR_IDLE
            entry.shared_si = False
            if msg.kind is MsgKind.SI_NOTIFY:
                entry.idle_flavor = FLAVOR_S
            else:
                entry.idle_flavor = FLAVOR_SI if msg.si_marked else FLAVOR_PLAIN

    def _complete(self, entry):
        txn = entry.txn
        inval_wait = self.sim.now - txn.inv_sent_at
        entry.busy = False
        entry.txn = None
        if txn.wc_parallel:
            self.network.send(
                Message(
                    MsgKind.ACK_DONE,
                    txn.msg.block,
                    src=self.node,
                    dst=txn.msg.src,
                )
            )
            if self.obs is not None:
                self.obs.dir_txn_end(self.node, txn.msg.block)
        elif txn.kind == "read":
            self._grant_read(entry, txn.msg, txn.decision, inval_wait)
        else:
            self._grant_write(entry, txn.msg, txn.decision, txn.upgrade_grant, inval_wait)
        self._drain_deferred(entry)

    def _drain_deferred(self, entry):
        while entry.deferred and not entry.busy:
            self._start(entry, entry.deferred.popleft())

    # ------------------------------------------------------------------
    def deadlock_diagnostic(self):
        busy = [block for block, entry in self.entries.items() if entry.busy]
        if busy:
            return f"dir{self.node}: busy entries for blocks {busy[:8]}"
        return None

"""Exception hierarchy for the DSI reproduction library."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """An internal inconsistency was detected while simulating."""


class DeadlockError(SimulationError):
    """The event queue drained while some component was still waiting."""


class ProtocolError(SimulationError):
    """A coherence-protocol invariant was violated."""


class AuditError(SimulationError):
    """The runtime accounting audit (repro.obs.audit) found the machine's
    observable behaviour inconsistent: a message received but never sent,
    an invalidation never acknowledged, or directory state diverging from
    the actual cache contents at quiesce."""


class ConfigError(ReproError):
    """A SystemConfig or experiment configuration is invalid."""


class TraceError(ReproError):
    """A trace is malformed or refers to invalid processors/addresses."""

"""System configuration.

A :class:`SystemConfig` describes one simulated machine: the node count,
cache geometry, controller occupancies, network timing, the consistency
model, and — the subject of the paper — which dynamic self-invalidation
scheme is active.  The defaults reproduce the machine of the paper's §5.1
methodology (32 processors, 4-way caches with 32-byte blocks, 3-cycle
cache controller, 10-cycle directory controller, 3(+8)-cycle injection,
constant 100-cycle network).
"""

import enum
import os
from dataclasses import dataclass, replace

from repro.errors import ConfigError

KB = 1024
MB = 1024 * KB


class Consistency(enum.Enum):
    """Memory consistency model (paper §2, §5.1)."""

    SC = "sc"  # sequential consistency: stall on every miss
    WC = "wc"  # weak consistency: 16-entry coalescing write buffer


class IdentifyScheme(enum.Enum):
    """How blocks are identified for self-invalidation.

    STATES and VERSION are the paper's two directory-side schemes (§4.1).
    CACHE is the cache-side alternative §3.1 sketches but does not
    evaluate: the cache controller keeps a history of recently invalidated
    blocks and marks its own fills once a block has been invalidated
    under it ``cache_inval_threshold`` times.
    """

    NONE = "none"  # base protocol, no DSI
    STATES = "states"  # four additional directory states
    VERSION = "version"  # 4-bit version numbers + 2-bit read counter
    CACHE = "cache"  # cache-side invalidation-count history (§3.1)


class SIMechanism(enum.Enum):
    """How the cache controller performs self-invalidation (§4.2)."""

    SYNC_FLUSH = "sync-flush"  # selective flush at synchronization operations
    FIFO = "fifo"  # 64-entry FIFO; invalidate on overflow, flush at sync


class ExecutionMode(enum.Enum):
    """Which execution engine retires coherence transactions.

    REFERENCE is the bit-identical oracle: every message hop, resource
    occupancy and quantum boundary fires as a discrete event through the
    full Message/table machinery, exactly as the interpreter always has.
    RELAXED runs the same event *structure* (hop for hop — elision of
    any intermediate event was tried and is provably order-unsafe, see
    ``repro.network.network``) on two cheaper substrates: a per-cycle
    bucketed event queue, and straight-line Message-free *lanes* that
    retire uncontended transactions (miss -> home -> grant) without
    building Message objects, contexts or table rows.  A transaction
    that meets a contention hazard (busy directory entry, exclusive
    owner, sharer fan-out, raced MSHR) *bails*: the lane materializes
    the Message it never built and hands it to the reference handler at
    the exact point the reference engine would have processed it.
    Relaxed runs are proven *observationally* equal to reference runs
    (every measured RunRecord field except ``events_fired``) by
    ``repro.harness.equivalence --observational``.
    """

    REFERENCE = "reference"
    RELAXED = "relaxed"


@dataclass(frozen=True)
class SystemConfig:
    """Full description of one simulated machine + protocol."""

    # --- machine ------------------------------------------------------
    n_processors: int = 32
    cache_size: int = 256 * KB
    cache_assoc: int = 4
    block_size: int = 32
    cache_ctrl_cycles: int = 3  # cache-controller occupancy per miss/message
    dir_ctrl_cycles: int = 10  # directory-controller occupancy per message
    inject_cycles: int = 3  # network-interface injection overhead
    inject_data_cycles: int = 8  # additional injection cycles w/ a data block
    network_latency: int = 100  # constant message latency (no switch contention)
    local_latency: int = 1  # intra-node (cache <-> home directory) hop
    barrier_latency: int = 100  # hardware barrier: cycles from last arrival
    cache_hit_cycles: int = 1  # folded into computation time

    # --- consistency model --------------------------------------------
    consistency: Consistency = Consistency.SC
    write_buffer_entries: int = 16  # WC coalescing write buffer depth

    # --- dynamic self-invalidation -------------------------------------
    identify: IdentifyScheme = IdentifyScheme.NONE
    version_bits: int = 4
    read_counter_bits: int = 2
    si_mechanism: SIMechanism = SIMechanism.SYNC_FLUSH
    fifo_entries: int = 64
    tearoff: bool = False  # untracked shared copies (WC only; §3.3)
    # Extension (§3.3): tear-off blocks under sequential consistency —
    # at most ONE untracked copy per cache, invalidated at the next cache
    # miss (Scheurich's condition) and at synchronization operations.
    sc_tearoff: bool = False
    # Cache-side identification (§3.1): mark fills of blocks this cache
    # has seen explicitly invalidated at least this many times.
    cache_inval_threshold: int = 2
    cache_history_entries: int = 1024  # invalidation-history table size
    # Migratory-data optimization (paper §2 cites Cox & Fowler / Stenström
    # et al. as complementary): the directory detects read-then-write
    # migration and answers *reads* of migratory blocks with an exclusive
    # copy, eliminating the later upgrade.  Composable with DSI.
    migratory: bool = False
    # §4.1 special cases (both default on; ablation A3/A4 toggle them)
    sc_upgrade_special_case: bool = True
    home_exclusion: bool = True
    si_flush_cycles_per_block: int = 3  # controller cost per self-invalidated block

    # --- Tardis leased timestamps (Yu & Devadas, PACT'15) ---------------
    # Replaces sharer tracking with logical leases: reads lease a block
    # until wts + lease, writes jump the block's timestamp past every
    # outstanding lease, and self-invalidation falls out of lease expiry
    # with zero invalidation traffic.  Mutually exclusive with the DSI
    # identification schemes, tear-off copies and the migratory
    # optimization (Tardis *is* the self-invalidation mechanism).
    tardis: bool = False
    lease: int = 8  # static lease length, in logical timestamp ticks
    lease_adaptive: bool = False  # per-block adaptive lease predictor
    lease_min: int = 2  # adaptive predictor floor
    lease_max: int = 64  # adaptive predictor ceiling

    # --- simulation ----------------------------------------------------
    quantum: int = 100  # max cycles of hit-processing per processor event
    check_invariants: bool = False  # enable the SWMR/value protocol monitor
    max_events: int = 0  # 0 = unlimited; else abort after this many events
    # Execution engine (repro.coherence.compile / repro.processor.fastpath).
    # Both default on; the interpreted paths stay bit-identical and remain
    # as the reference side of the equivalence harness.  The DSI_NO_FASTPATH
    # environment variable (any non-empty value) forces both off — the
    # runtime escape hatch behind ``dsi-sim run --no-fastpath``.
    compiled_dispatch: bool = True  # table lowered to integer-indexed dispatch
    direct_execution: bool = True  # batch private/valid hits outside the engine
    # Transaction-retirement engine (see ExecutionMode).  REFERENCE stays
    # the default: it is the oracle every other path is proven against.
    # The DSI_MODE environment variable ("relaxed" / "reference")
    # overrides the field process-wide — the runtime escape hatch behind
    # ``dsi-sim run --mode``.
    execution_mode: ExecutionMode = ExecutionMode.REFERENCE

    def __post_init__(self):
        if os.environ.get("DSI_NO_FASTPATH"):
            object.__setattr__(self, "compiled_dispatch", False)
            object.__setattr__(self, "direct_execution", False)
        env_mode = os.environ.get("DSI_MODE")
        if env_mode:
            try:
                object.__setattr__(self, "execution_mode", ExecutionMode(env_mode))
            except ValueError:
                raise ConfigError(
                    f"DSI_MODE must be 'reference' or 'relaxed', not {env_mode!r}"
                ) from None
        if self.n_processors < 1:
            raise ConfigError("n_processors must be >= 1")
        if self.block_size & (self.block_size - 1):
            raise ConfigError("block_size must be a power of two")
        if self.cache_size % (self.block_size * self.cache_assoc):
            raise ConfigError("cache_size must be a multiple of block_size * assoc")
        if self.version_bits < 1 or self.version_bits > 16:
            raise ConfigError("version_bits must be in [1, 16]")
        if self.read_counter_bits < 1 or self.read_counter_bits > 8:
            raise ConfigError("read_counter_bits must be in [1, 8]")
        if self.tearoff and self.consistency is Consistency.SC:
            raise ConfigError(
                "tear-off blocks require weak consistency (a sequentially "
                "consistent cache may hold at most one tear-off block; "
                "see §3.3 — use sc_tearoff for that variant)"
            )
        if self.tearoff and self.identify is IdentifyScheme.NONE:
            raise ConfigError("tear-off blocks require a DSI identification scheme")
        if self.sc_tearoff:
            if self.consistency is not Consistency.SC:
                raise ConfigError("sc_tearoff is the sequentially consistent variant")
            if self.identify is IdentifyScheme.NONE:
                raise ConfigError("sc_tearoff requires a DSI identification scheme")
            if self.identify is IdentifyScheme.CACHE:
                raise ConfigError(
                    "tear-off blocks need directory-side identification (the "
                    "directory must know not to track the copy)"
                )
        if self.tearoff and self.identify is IdentifyScheme.CACHE:
            raise ConfigError(
                "tear-off blocks need directory-side identification (the "
                "directory must know not to track the copy)"
            )
        if self.cache_inval_threshold < 1:
            raise ConfigError("cache_inval_threshold must be >= 1")
        if self.cache_history_entries < 1:
            raise ConfigError("cache_history_entries must be >= 1")
        if self.tardis:
            if self.identify is not IdentifyScheme.NONE:
                raise ConfigError(
                    "tardis replaces DSI identification (leases are the "
                    "self-invalidation mechanism); identify must be NONE"
                )
            if self.tearoff or self.sc_tearoff:
                raise ConfigError("tardis tracks no sharers; tear-off is meaningless")
            if self.migratory:
                raise ConfigError(
                    "the migratory optimization is not modelled under tardis"
                )
        if self.lease < 1:
            raise ConfigError("lease must be >= 1")
        if not 1 <= self.lease_min <= self.lease_max:
            raise ConfigError("need 1 <= lease_min <= lease_max")
        if self.quantum < 0:
            raise ConfigError("quantum must be >= 0")
        if self.write_buffer_entries < 1:
            raise ConfigError("write_buffer_entries must be >= 1")
        if self.fifo_entries < 1:
            raise ConfigError("fifo_entries must be >= 1")

    # --- derived geometry ----------------------------------------------
    @property
    def n_blocks(self):
        return self.cache_size // self.block_size

    @property
    def n_sets(self):
        return self.n_blocks // self.cache_assoc

    @property
    def block_shift(self):
        return self.block_size.bit_length() - 1

    @property
    def version_mask(self):
        return (1 << self.version_bits) - 1

    @property
    def read_counter_mask(self):
        return (1 << self.read_counter_bits) - 1

    @property
    def dsi_enabled(self):
        return self.identify is not IdentifyScheme.NONE

    def with_(self, **overrides):
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    def describe(self):
        """Short human-readable protocol label, e.g. ``SC+DSI(V)``."""
        label = self.consistency.name
        if self.tardis:
            label += f"+TARDIS{self.lease}"
            if self.lease_adaptive:
                label += "a"
            return label
        if self.dsi_enabled:
            scheme = {
                IdentifyScheme.STATES: "S",
                IdentifyScheme.VERSION: "V",
                IdentifyScheme.CACHE: "C",
            }[self.identify]
            label += f"+DSI({scheme})"
            if self.si_mechanism is SIMechanism.FIFO:
                label += f"+FIFO{self.fifo_entries}"
            if self.tearoff or self.sc_tearoff:
                label += "+TO"
        return label

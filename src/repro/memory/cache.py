"""The per-node cache: set-associative, LRU, with the DSI extensions.

Beyond a textbook cache this model carries the paper's hardware additions:

* an ``s`` bit per frame marking the block for self-invalidation (§4.2);
* a small version number per frame, retained *after* invalidation together
  with the tag so a subsequent miss can present it to the directory
  (§4.1, version-number scheme);
* a tear-off flag marking untracked copies (§3.3);
* the linked list of s-marked frames used by the selective-flush
  self-invalidation mechanism (modelled as a Python list, which is exactly
  the hardware linked list's behaviour: only marked frames are visited).

State is per-frame: INVALID, SHARED or EXCLUSIVE (the paper's "exclusive"
is writable-and-possibly-dirty, i.e. an M state).
"""

import numpy as np

from repro.errors import SimulationError

INVALID = 0
SHARED = 1
EXCLUSIVE = 2

_STATE_NAMES = {INVALID: "I", SHARED: "S", EXCLUSIVE: "E"}


class CacheFrame:
    """One cache frame (tag + state + DSI metadata).

    The tag and version survive invalidation (``valid = False`` but the tag
    sticks around) — that is what lets the version-number scheme send the
    stale version with the next miss.
    """

    __slots__ = (
        "tag",
        "valid",
        "state",
        "dirty",
        "s_bit",
        "tearoff",
        "version",
        "data",
        "lru",
        "pinned",
        "wts",
        "rts",
        "set_idx",
        "way",
    )

    def __init__(self):
        self.tag = -1
        self.set_idx = 0  # geometry slot; assigned by Cache
        self.way = 0
        self.valid = False
        self.state = INVALID
        self.dirty = False
        self.s_bit = False
        self.tearoff = False
        self.version = None
        self.data = 0
        self.lru = 0
        self.pinned = False  # an upgrade is outstanding; not evictable
        self.wts = 0  # (Tardis) logical write timestamp of the copy
        self.rts = 0  # (Tardis) lease: readable while pts <= rts

    def state_name(self):
        return _STATE_NAMES[self.state if self.valid else INVALID]

    def __repr__(self):
        return (
            f"CacheFrame(tag={self.tag}, {self.state_name()}"
            f"{', s' if self.s_bit else ''}{', tearoff' if self.tearoff else ''})"
        )


class Victim:
    """What got evicted to make room for a fill."""

    __slots__ = ("block", "state", "dirty", "s_bit", "tearoff", "data", "wts", "rts")

    def __init__(self, frame):
        self.block = frame.tag
        self.state = frame.state
        self.dirty = frame.dirty
        self.s_bit = frame.s_bit
        self.tearoff = frame.tearoff
        self.data = frame.data
        self.wts = frame.wts
        self.rts = frame.rts


class LazySets:
    """Cache sets materialized on first touch.

    Workloads touch a small fraction of the index space (a few hundred of
    2048 sets at the paper's scale), so frames are created per-set on the
    first access instead of eagerly — at 32 processors that turns ~260k
    ``CacheFrame`` constructions per run into a few thousand.  An
    untouched set is indistinguishable from an all-invalid one: indexing
    materializes it on demand, while iteration (tests, the coherence
    audit) visits only materialized sets in index order — untouched sets
    hold no valid frames, so nothing is missed.  The fast path
    (:mod:`repro.processor.fastpath`) reads the backing ``_sets`` dict
    directly and treats absence as all-invalid without materializing.
    """

    __slots__ = ("_sets", "_n_sets", "_assoc")

    def __init__(self, n_sets, assoc):
        self._sets = {}
        self._n_sets = n_sets
        self._assoc = assoc

    def __len__(self):
        return self._n_sets

    def __getitem__(self, set_idx):
        frames = self._sets.get(set_idx)
        if frames is None:
            frames = [CacheFrame() for _ in range(self._assoc)]
            for way, frame in enumerate(frames):
                frame.set_idx = set_idx
                frame.way = way
            self._sets[set_idx] = frames
        return frames

    def __iter__(self):
        sets = self._sets
        return iter([sets[set_idx] for set_idx in sorted(sets)])


class Cache:
    """A 4-way (configurable) set-associative LRU cache."""

    def __init__(self, config, node):
        self.node = node
        self.n_sets = config.n_sets
        self.assoc = config.cache_assoc
        self.sets = LazySets(self.n_sets, self.assoc)
        self._sets_map = self.sets._sets  # direct dict view for hot lookups
        self._clock = 0
        # Direct-execution snapshot (repro.processor.fastpath): per-slot tag
        # matrices the batcher classifies whole op windows against with one
        # vectorized compare.  ``tag_read[s, w]`` holds the frame's tag when
        # a load of it is a plain hit (valid, no s bit, no tear-off — marked
        # blocks always take the scalar path), ``tag_write`` additionally
        # requires EXCLUSIVE; -1 = not a fast hit.  ``set_gens[s]`` bumps on
        # every eligibility change in set ``s``: a window entry whose set
        # generation is unchanged since classification is still exact, so
        # the batcher skips per-op re-verification for it.
        self.tag_read = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self.tag_write = np.full((self.n_sets, self.assoc), -1, dtype=np.int64)
        self.set_gens = [0] * self.n_sets
        # Frames currently holding s-marked valid blocks — the hardware
        # linked list of §4.2, modelled as an insertion-ordered dict (a
        # plain set would iterate in id() order, making runs
        # irreproducible and unlike the hardware).
        self.si_frames = {}

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def set_index(self, block):
        return block % self.n_sets

    def lookup(self, block, touch=True):
        """Return the valid frame holding ``block``, or None on a miss.

        Reads through the lazy-set dict without materializing: an
        untouched set holds no valid frames, so a missing entry is a miss.
        """
        frames = self._sets_map.get(block % self.n_sets)
        if frames is None:
            return None
        for frame in frames:
            if frame.tag == block and frame.valid:
                if touch:
                    self._clock += 1
                    frame.lru = self._clock
                return frame
        return None

    def stored_version(self, block):
        """Version retained with a matching tag (valid or not), else None."""
        frames = self._sets_map.get(block % self.n_sets)
        if frames is None:
            return None
        for frame in frames:
            if frame.tag == block:
                return frame.version
        return None

    def stored_wts(self, block):
        """(Tardis) write timestamp retained with a matching tag, else 0.

        Like the version number, ``wts`` survives invalidation: a renewal
        miss presents the expired copy's ``wts`` so the home can tell a
        wasted expiry (block unchanged) from a justified one."""
        frames = self._sets_map.get(block % self.n_sets)
        if frames is None:
            return 0
        for frame in frames:
            if frame.tag == block:
                return frame.wts
        return 0

    # ------------------------------------------------------------------
    # Fill / evict
    # ------------------------------------------------------------------
    def fill(self, block, state, data, version=None, s_bit=False, tearoff=False, dirty=False):
        """Install ``block``; returns ``(frame, victim_or_None)``.

        Returns ``(None, None)`` if every frame in the set is pinned by an
        outstanding transaction (the caller must retry later).
        """
        frames = self.sets[block % self.n_sets]
        target = None
        # Prefer the frame already holding this tag (keeps history compact),
        # then any invalid frame, then the LRU unpinned frame.
        for frame in frames:
            if frame.tag == block:
                target = frame
                break
        if target is None:
            # Prefer an invalid frame (no eviction needed); among several,
            # the least-recently-used one — recently invalidated frames keep
            # their tag+version history alive for the version-number scheme.
            invalid = [f for f in frames if not f.valid and not f.pinned]
            if invalid:
                target = min(invalid, key=lambda f: f.lru)
        victim = None
        if target is None:
            candidates = [f for f in frames if not f.pinned]
            if not candidates:
                return None, None
            target = min(candidates, key=lambda f: f.lru)
            if target.valid:
                victim = Victim(target)
        elif target.valid:
            if target.tag == block:
                raise SimulationError(f"fill of block {block} already valid in cache {self.node}")
            victim = Victim(target)
        if victim is not None or target.valid:
            self._drop_si(target)
        target.tag = block
        target.valid = True
        target.state = state
        target.dirty = dirty
        target.data = data
        target.version = version
        target.tearoff = tearoff
        target.s_bit = s_bit
        self._clock += 1
        target.lru = self._clock
        if s_bit:
            self.si_frames[target] = None
        self._sync_fast(target)
        return target, victim

    def invalidate(self, frame, keep_version=True):
        """Drop a copy (explicit INV, replacement, or self-invalidation).

        The tag — and, per the version-number scheme, the version — remain
        in the frame so a later miss can present the stale version.
        """
        self._drop_si(frame)
        frame.valid = False
        frame.state = INVALID
        frame.dirty = False
        frame.tearoff = False
        # Note: ``pinned`` is left alone — the cache controller manages pins
        # (an upgrade MSHR keeps its frame reserved across an invalidation).
        if not keep_version:
            frame.version = None
        self._sync_fast(frame)

    def mark_si(self, frame, marked=True):
        """Set/clear the s bit, maintaining the selective-flush list."""
        if marked and frame.valid:
            frame.s_bit = True
            self.si_frames[frame] = None
            self._sync_fast(frame)
        else:
            self._drop_si(frame)

    def _drop_si(self, frame):
        if frame.s_bit:
            frame.s_bit = False
            self.si_frames.pop(frame, None)
            self._sync_fast(frame)

    # ------------------------------------------------------------------
    # Direct-execution snapshot maintenance
    # ------------------------------------------------------------------
    def _sync_fast(self, frame):
        readable = frame.valid and not frame.s_bit and not frame.tearoff
        set_idx, way = frame.set_idx, frame.way
        self.tag_read[set_idx, way] = frame.tag if readable else -1
        self.tag_write[set_idx, way] = (
            frame.tag if readable and frame.state == EXCLUSIVE else -1
        )
        self.set_gens[set_idx] += 1

    def note_frame_changed(self, frame):
        """Re-derive the fast-path snapshot after an out-of-cache state
        change (the controller's in-place upgrade promotion)."""
        self._sync_fast(frame)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def valid_blocks(self):
        """{block: frame} for every valid copy (test/monitor helper)."""
        return {
            frame.tag: frame
            for cache_set in self.sets
            for frame in cache_set
            if frame.valid
        }

    def snapshot(self):
        """{block: (state letter, dirty, s bit, tearoff)} for every valid
        copy — a plain-value view used by the quiesce-time coherence audit
        (:func:`repro.obs.audit.audit_coherence`) to diff directory state
        against actual cache contents."""
        return {
            frame.tag: (frame.state_name(), frame.dirty, frame.s_bit, frame.tearoff)
            for cache_set in self.sets
            for frame in cache_set
            if frame.valid
        }

    def occupancy(self):
        return sum(1 for s in self.sets for f in s if f.valid)

"""Address arithmetic, home-node mapping and workload allocation.

The machine distributes directory entries (and backing memory) across the
nodes.  Two placement policies are provided:

* :class:`RoundRobinHome` — block-interleaved (``home = block % n``), the
  default when a workload has no locality structure.
* :class:`SegmentHome` — the address space is carved into fixed-size
  per-node segments and a workload allocates each processor's data in its
  own segment ("local allocation", as EM3D does in the paper).

:class:`Allocator` is a per-node bump allocator used by the workload
generators.
"""

from repro.errors import TraceError

#: log2 of a home segment (4 MiB): addresses in segment ``p`` live on node ``p``.
SEGMENT_SHIFT = 22
SEGMENT_BYTES = 1 << SEGMENT_SHIFT


class RoundRobinHome:
    """Block-interleaved home mapping: ``home(block) = block % n``."""

    def __init__(self, n_nodes):
        self.n_nodes = n_nodes

    def home_of(self, block):
        return block % self.n_nodes


class SegmentHome:
    """Segment-based home mapping for local allocation.

    Address ``a`` lives on node ``a >> SEGMENT_SHIFT``; workloads place
    processor-local data in the owning processor's segment.
    """

    def __init__(self, n_nodes, block_shift):
        self.n_nodes = n_nodes
        self.block_shift = block_shift
        self._seg_blocks_shift = SEGMENT_SHIFT - block_shift

    def home_of(self, block):
        home = block >> self._seg_blocks_shift
        if home >= self.n_nodes:
            raise TraceError(
                f"block {block:#x} maps to segment {home}, but the machine has "
                f"only {self.n_nodes} nodes"
            )
        return home


class Allocator:
    """Bump allocator over per-node segments.

    >>> alloc = Allocator(n_nodes=4, block_size=32)
    >>> a = alloc.alloc(node=1, nbytes=64)
    >>> a >> SEGMENT_SHIFT
    1
    """

    def __init__(self, n_nodes, block_size):
        self.n_nodes = n_nodes
        self.block_size = block_size
        # Stagger each node's base within its segment.  Segment bases are
        # large powers of two, so without this every node's data would map
        # onto the *same* cache sets and conflict-thrash — real programs
        # don't alias like that (virtual mappings / page coloring spread
        # them).  The stagger is a golden-ratio hash, block-aligned.
        self._next = [
            (node << SEGMENT_SHIFT)
            + ((node * 0x9E3779B1) % (1 << 14)) * block_size
            for node in range(n_nodes)
        ]
        self._base = list(self._next)

    def alloc(self, node, nbytes, align_block=True):
        """Reserve ``nbytes`` on ``node``; returns the base byte address."""
        if node < 0 or node >= self.n_nodes:
            raise TraceError(f"no such node {node}")
        base = self._next[node]
        if align_block:
            base = -(-base // self.block_size) * self.block_size
        end = base + nbytes
        if end > ((node + 1) << SEGMENT_SHIFT):
            raise TraceError(
                f"segment overflow on node {node}: workload needs more than "
                f"{SEGMENT_BYTES} bytes of node-local data"
            )
        self._next[node] = end
        return base

    def alloc_blocks(self, node, n_blocks):
        """Reserve ``n_blocks`` whole blocks; returns the first block number."""
        base = self.alloc(node, n_blocks * self.block_size, align_block=True)
        return base // self.block_size

    def bytes_used(self, node):
        return self._next[node] - self._base[node]

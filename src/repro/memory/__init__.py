"""Memory-side substrates: addressing, caches, write buffers."""

from repro.memory.address import Allocator, RoundRobinHome, SegmentHome
from repro.memory.cache import Cache, CacheFrame, EXCLUSIVE, INVALID, SHARED
from repro.memory.write_buffer import CoalescingWriteBuffer, WriteBufferEntry

__all__ = [
    "Allocator",
    "Cache",
    "CacheFrame",
    "CoalescingWriteBuffer",
    "EXCLUSIVE",
    "INVALID",
    "RoundRobinHome",
    "SHARED",
    "SegmentHome",
    "WriteBufferEntry",
]

"""The weak-consistency coalescing write buffer (paper §5.1).

Sixteen entries, each holding an entire cache block.  A write miss
allocates an entry and the processor continues; further writes to the same
block merge into the existing entry.  An entry retires once the block's
data has arrived *and* the directory has confirmed that every stale copy
was invalidated (the single forwarded acknowledgment).  The processor
stalls when the buffer is full, and drains the buffer at synchronization
operations.
"""

from collections import OrderedDict

from repro.errors import SimulationError

WAIT_DATA = 0  # request issued, data not yet arrived
WAIT_ACK = 1  # data arrived, invalidation acks still being collected


class WriteBufferEntry:
    __slots__ = ("block", "status", "data", "merged_writes", "issued_at")

    def __init__(self, block, data, issued_at):
        self.block = block
        self.status = WAIT_DATA
        self.data = data
        self.merged_writes = 0
        self.issued_at = issued_at


class CoalescingWriteBuffer:
    """Block-granular coalescing write buffer with completion callbacks."""

    def __init__(self, capacity, node=None, instrument=None):
        self.capacity = capacity
        self.node = node
        self.obs = instrument
        self.entries = OrderedDict()  # block -> WriteBufferEntry
        self._on_space = []  # callbacks waiting for a free entry
        self._on_empty = []  # callbacks waiting for a full drain
        self.peak_occupancy = 0
        self.total_merges = 0

    def __len__(self):
        return len(self.entries)

    @property
    def full(self):
        return len(self.entries) >= self.capacity

    @property
    def empty(self):
        return not self.entries

    def get(self, block):
        return self.entries.get(block)

    def allocate(self, block, data, now):
        if self.full:
            raise SimulationError("write buffer overflow (caller must stall first)")
        if block in self.entries:
            raise SimulationError(f"duplicate write-buffer entry for block {block}")
        entry = WriteBufferEntry(block, data, now)
        self.entries[block] = entry
        self.peak_occupancy = max(self.peak_occupancy, len(self.entries))
        if self.obs is not None:
            self.obs.wb_fill(self.node, len(self.entries), block=block)
        return entry

    def merge(self, block, data):
        """Coalesce a new write into an outstanding entry."""
        entry = self.entries[block]
        entry.data = data
        entry.merged_writes += 1
        self.total_merges += 1
        return entry

    def mark_data_arrived(self, block):
        entry = self.entries.get(block)
        if entry is not None and entry.status == WAIT_DATA:
            entry.status = WAIT_ACK

    def retire(self, block):
        """Remove a completed entry and wake anyone waiting for space/drain."""
        if block not in self.entries:
            raise SimulationError(f"retiring unknown write-buffer entry {block}")
        del self.entries[block]
        if self.obs is not None:
            self.obs.wb_drain(self.node, len(self.entries), block=block)
        if self._on_space:
            waiters, self._on_space = self._on_space, []
            for callback in waiters:
                callback()
        if self.empty and self._on_empty:
            waiters, self._on_empty = self._on_empty, []
            for callback in waiters:
                callback()

    def when_space(self, callback):
        """Call ``callback()`` once an entry frees (immediately if not full)."""
        if not self.full:
            callback()
        else:
            self._on_space.append(callback)

    def when_empty(self, callback):
        """Call ``callback()`` once the buffer has fully drained."""
        if self.empty:
            callback()
        else:
            self._on_empty.append(callback)

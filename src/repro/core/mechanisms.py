"""Self-invalidation mechanisms: the DSI schemes (§4.2) and Tardis leases.

The directory marks a response; the cache controller must *record* which
resident blocks carry the ``s`` bit and invalidate them at a good time.

:class:`SyncFlushMechanism`
    The custom-hardware scheme: a linked list threads every s-marked frame
    (modelled by the cache's ``si_frames`` set); at each synchronization
    operation the list is walked and every marked block is invalidated.
    Utilises the full capacity of the cache.

:class:`FifoMechanism`
    A small FIFO (64 entries by default) records the identity of blocks
    received with the ``s`` bit.  When the FIFO overflows, the oldest
    entry is self-invalidated immediately — potentially long before the
    next synchronization point, which is the mechanism's fundamental
    weakness (Figure 5: Sparse).  The FIFO is also flushed at every
    synchronization operation.

:class:`StaticLeasePolicy` / :class:`AdaptiveLeasePolicy`
    The Tardis counterpart: self-invalidation *is* lease expiry, so the
    "mechanism" decides lease lengths at the home instead of walking
    frames at the cache.  The static policy grants a fixed lease; the
    adaptive one keeps a per-block predictor (``DirEntry.lease``) that
    grows when an expiry turns out wasted (the renewal finds the block
    unchanged) and shrinks when a write lands on a block whose leases
    barely get used — steering each block's lease toward its observed
    write interval.
"""

from collections import deque

from repro.config import SIMechanism
from repro.errors import ConfigError


class SyncFlushMechanism:
    """Selective flush at synchronization operations via a hardware list."""

    name = "sync-flush"

    def __init__(self, cache):
        self.cache = cache

    def on_si_fill(self, frame):
        """A self-invalidate block arrived.  Returns a frame to invalidate
        immediately, or None (this mechanism never invalidates early)."""
        return None

    def sync_frames(self):
        """Frames to self-invalidate at a synchronization point."""
        return list(self.cache.si_frames)


class FifoMechanism:
    """Finite FIFO of self-invalidate block identities."""

    name = "fifo"

    def __init__(self, cache, capacity, node=None, instrument=None):
        if capacity < 1:
            raise ConfigError("FIFO capacity must be >= 1")
        self.cache = cache
        self.capacity = capacity
        self.node = node
        self.obs = instrument
        self.fifo = deque()
        self.overflows = 0

    def on_si_fill(self, frame):
        """Record the new block; on overflow return the evicted frame (to be
        self-invalidated *now*) if it is still resident and still marked."""
        self.fifo.append(frame.tag)
        if self.obs is not None:
            self.obs.fifo_push(self.node, len(self.fifo), block=frame.tag)
        if len(self.fifo) <= self.capacity:
            return None
        victim_block = self.fifo.popleft()
        self.overflows += 1
        if self.obs is not None:
            self.obs.fifo_overflow(self.node, block=victim_block)
            self.obs.fifo_pop(self.node, len(self.fifo), block=victim_block)
        victim = self.cache.lookup(victim_block, touch=False)
        if victim is not None and victim.s_bit:
            return victim
        return None  # stale entry: the block already left the cache

    def sync_frames(self):
        """Flush the FIFO at a synchronization point."""
        frames = []
        drained = bool(self.fifo)
        while self.fifo:
            block = self.fifo.popleft()
            frame = self.cache.lookup(block, touch=False)
            if frame is not None and frame.s_bit:
                frames.append(frame)
        if drained and self.obs is not None:
            self.obs.fifo_pop(self.node, 0)
        # Defensive sweep: any marked frame missed by stale FIFO entries.
        for frame in list(self.cache.si_frames):
            if frame not in frames:
                frames.append(frame)
        return frames


def make_mechanism(config, cache, node=None, instrument=None):
    """Instantiate the self-invalidation mechanism selected by ``config``."""
    if config.si_mechanism is SIMechanism.SYNC_FLUSH:
        return SyncFlushMechanism(cache)
    if config.si_mechanism is SIMechanism.FIFO:
        return FifoMechanism(cache, config.fifo_entries, node=node, instrument=instrument)
    raise ConfigError(f"unknown self-invalidation mechanism {config.si_mechanism!r}")


# ----------------------------------------------------------------------
# Tardis lease policies
# ----------------------------------------------------------------------
class StaticLeasePolicy:
    """Every read grant extends the block's lease by a fixed length."""

    name = "static-lease"

    def __init__(self, lease):
        if lease < 1:
            raise ConfigError("lease must be >= 1")
        self.lease = lease
        self.renewals_unchanged = 0  # expiry was wasted: same wts re-leased
        self.renewals_changed = 0  # expiry was justified: the block had moved

    def lease_for(self, entry):
        return self.lease

    def on_read_grant(self, entry, renewed, changed):
        """A read grant happened.  ``renewed`` means the requester held an
        expired copy of this block (its stale ``wts`` rode the GETS);
        ``changed`` means that copy's ``wts`` no longer matches memory."""
        if renewed:
            if changed:
                self.renewals_changed += 1
            else:
                self.renewals_unchanged += 1

    def on_write_grant(self, entry, slack):
        """A write grant happened; ``slack = rts - wts`` at the home just
        before the write's timestamp jump (how far outstanding leases
        forced the write into the logical future)."""


class AdaptiveLeasePolicy(StaticLeasePolicy):
    """Per-block lease predictor (``DirEntry.lease``; 0 = unprimed).

    Doubles a block's lease when a renewal finds it unchanged (the expiry
    bought nothing — the lease was too short), halves it when a write
    jumps over a mostly-idle lease window (read-write sharing — long
    leases just deepen the stale window).
    """

    name = "adaptive-lease"

    def __init__(self, lease, lease_min, lease_max):
        super().__init__(lease)
        if not 1 <= lease_min <= lease_max:
            raise ConfigError("need 1 <= lease_min <= lease_max")
        self.lease_min = lease_min
        self.lease_max = lease_max
        self.grows = 0
        self.shrinks = 0

    def lease_for(self, entry):
        return entry.lease or self.lease

    def on_read_grant(self, entry, renewed, changed):
        super().on_read_grant(entry, renewed, changed)
        if renewed and not changed:
            grown = min(self.lease_for(entry) * 2, self.lease_max)
            if grown != entry.lease:
                self.grows += 1
            entry.lease = grown

    def on_write_grant(self, entry, slack):
        if slack <= self.lease_for(entry) // 2:
            shrunk = max(self.lease_for(entry) // 2, self.lease_min)
            if shrunk != self.lease_for(entry):
                self.shrinks += 1
                entry.lease = shrunk


def make_lease_policy(config):
    """Instantiate the Tardis lease policy selected by ``config``."""
    if config.lease_adaptive:
        return AdaptiveLeasePolicy(config.lease, config.lease_min, config.lease_max)
    return StaticLeasePolicy(config.lease)

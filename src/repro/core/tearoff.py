"""Tear-off block accounting (paper §3.3).

A tear-off block is a shared-readable copy the directory hands out
*without recording the requester in the full map*.  Because the receiving
cache guarantees to self-invalidate the copy at its next synchronization
point (under weak consistency), the directory never needs to invalidate it
— eliminating both the invalidation and the acknowledgment message.

The directory keeps one extra bit per entry ("more than one outstanding
tear-off block", §4.1).  The additional-states identification scheme uses
that bit to classify a write request from a processor that itself held a
tear-off copy: with at least two tear-off copies outstanding the new
exclusive block is a self-invalidation candidate even though the full map
looks quiet.
"""


class TearoffTracker:
    """Per-directory-entry tear-off bookkeeping.

    ``multi`` is the hardware bit (>= 2 tear-off copies handed out since
    the last exclusive grant); ``count`` is kept for statistics only — real
    hardware stores just the bit.
    """

    __slots__ = ("count", "multi")

    def __init__(self):
        self.count = 0
        self.multi = False

    def on_grant(self):
        """A tear-off copy was handed out."""
        self.count += 1
        if self.count >= 2:
            self.multi = True

    def on_exclusive_grant(self):
        """An exclusive copy was granted; outstanding tear-offs will be
        flushed by their holders' next synchronization point, so the history
        resets."""
        self.count = 0
        self.multi = False

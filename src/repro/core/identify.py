"""Directory-side identification of blocks for self-invalidation (§4.1).

Both schemes speculate from sharing history: a block that has recently had
conflicting accesses — and hence would have needed explicit invalidations
— is a candidate for self-invalidation.  Shared-readable blocks are marked
if they have been modified since the requesting processor's last
reference; exclusive blocks are marked if a different processor has read
or written the block since the writer's last access.

The two special cases of §4.1 (never self-invalidate out of the home
node's own cache; under SC don't mark exclusive blocks obtained by a sole
sharer's upgrade) are applied uniformly in
:class:`~repro.directory.controller.DirectoryController`, not here, since
they are scheme-independent.
"""

from repro.config import IdentifyScheme
from repro.directory.state import (
    DIR_EXCLUSIVE,
    DIR_IDLE,
    DIR_SHARED,
    FLAVOR_S,
    FLAVOR_SI,
    FLAVOR_X,
)
from repro.errors import ConfigError


class IdentifyDecision:
    """Outcome of classifying one request."""

    __slots__ = ("si",)

    def __init__(self, si):
        self.si = si

    def __repr__(self):
        return f"IdentifyDecision(si={self.si})"


class NoIdentify:
    """Base protocol: nothing is ever marked for self-invalidation."""

    name = "none"

    def classify_read(self, entry, requester, req_version):
        return IdentifyDecision(False)

    def classify_write(self, entry, requester, req_version):
        return IdentifyDecision(False)

    def on_shared_grant(self, entry, requester, tearoff):
        pass

    def on_exclusive_grant(self, entry, requester):
        pass


class StatesIdentify:
    """The additional-states scheme.

    Four extra directory states (encoded as flavors on
    :class:`~repro.directory.state.DirEntry`):

    * reads obtain a self-invalidate block when the current state is
      Exclusive, Idle_X, Shared_SI or Idle_SI;
    * writes obtain one when the current state is Shared, Shared_SI,
      Exclusive, Idle_S, Idle_SI, or Idle_X where a *different* processor
      had the block exclusive;
    * handing out a self-invalidate shared block enters Shared_SI so all
      subsequent readers also receive self-invalidate blocks.

    All processors make the same decision — the entry state is global —
    which is the scheme's weakness relative to version numbers.
    """

    name = "states"

    def classify_read(self, entry, requester, req_version):
        state = entry.state
        if state == DIR_EXCLUSIVE and entry.owner != requester:
            return IdentifyDecision(True)
        if state == DIR_SHARED and entry.shared_si:
            return IdentifyDecision(True)
        if state == DIR_IDLE and entry.idle_flavor in (FLAVOR_X, FLAVOR_SI):
            return IdentifyDecision(True)
        return IdentifyDecision(False)

    def classify_write(self, entry, requester, req_version):
        state = entry.state
        if state == DIR_SHARED:  # plain Shared or Shared_SI
            return IdentifyDecision(True)
        if state == DIR_EXCLUSIVE and entry.owner != requester:
            return IdentifyDecision(True)
        if state == DIR_IDLE:
            if entry.idle_flavor in (FLAVOR_S, FLAVOR_SI):
                return IdentifyDecision(True)
            if entry.idle_flavor == FLAVOR_X and entry.last_writer != requester:
                return IdentifyDecision(True)
            if entry.tearoff.multi:
                # The §4.1 extra bit: more than one tear-off copy is out,
                # so the full map under-reports the sharing.
                return IdentifyDecision(True)
        return IdentifyDecision(False)

    def on_shared_grant(self, entry, requester, tearoff):
        if tearoff:
            entry.tearoff.on_grant()

    def on_exclusive_grant(self, entry, requester):
        entry.last_writer = requester
        entry.tearoff.on_exclusive_grant()


class VersionIdentify:
    """The version-number scheme.

    The directory keeps a small wrap-around version per block, incremented
    on every exclusive grant.  Caches retain the version with the tag even
    after invalidation and present it with the next miss; a mismatch means
    the block was modified since this processor's last reference, so the
    response is marked for self-invalidation.  A request without a version
    (no tag match — the block left the cache by capacity, not coherence)
    gets a normal block.  Processors therefore decide *independently*,
    unlike the states scheme.

    Exclusive identification additionally uses a small shift counter of
    shared grants for the current version: a write request obtains a
    self-invalidate exclusive block if the versions differ *or* the current
    version has been read by at least ``read_counter_bits`` processors
    (which may include the writer itself).
    """

    name = "version"

    def __init__(self, version_mask, read_counter_mask):
        if version_mask < 1:
            raise ConfigError("version mask must be non-trivial")
        self.version_mask = version_mask
        self.read_counter_mask = read_counter_mask

    def classify_read(self, entry, requester, req_version):
        si = req_version is not None and req_version != entry.version
        return IdentifyDecision(si)

    def classify_write(self, entry, requester, req_version):
        if req_version is not None and req_version != entry.version:
            return IdentifyDecision(True)
        if entry.read_ctr == self.read_counter_mask:
            return IdentifyDecision(True)
        return IdentifyDecision(False)

    def on_shared_grant(self, entry, requester, tearoff):
        entry.read_ctr = ((entry.read_ctr << 1) | 1) & self.read_counter_mask
        if tearoff:
            entry.tearoff.on_grant()

    def on_exclusive_grant(self, entry, requester):
        entry.version = (entry.version + 1) & self.version_mask
        entry.read_ctr = 0
        entry.last_writer = requester
        entry.tearoff.on_exclusive_grant()


class InvalidationHistory:
    """Cache-side identification (§3.1).

    A bounded table of per-block explicit-invalidation counts kept by the
    cache controller ("maintaining information for recently invalidated
    blocks, e.g. the number of times a block is invalidated").  Once a
    block has been invalidated under this cache ``threshold`` times, the
    controller marks its future fills for self-invalidation on its own —
    no directory support needed.  The table evicts its least recently
    updated entry when full.
    """

    def __init__(self, capacity, threshold):
        if capacity < 1 or threshold < 1:
            raise ConfigError("history capacity and threshold must be >= 1")
        self.capacity = capacity
        self.threshold = threshold
        self._counts = {}  # insertion-ordered: oldest first

    def record(self, block):
        """An explicit invalidation of ``block`` arrived."""
        count = self._counts.pop(block, 0) + 1
        self._counts[block] = count
        if len(self._counts) > self.capacity:
            oldest = next(iter(self._counts))
            del self._counts[oldest]

    def should_mark(self, block):
        return self._counts.get(block, 0) >= self.threshold

    def count(self, block):
        return self._counts.get(block, 0)

    def __len__(self):
        return len(self._counts)


def make_policy(config):
    """Instantiate the *directory-side* identification policy.

    The CACHE scheme needs no directory cooperation, so its directory
    policy is the no-op; the marking lives in the cache controller's
    :class:`InvalidationHistory`.
    """
    if config.identify in (IdentifyScheme.NONE, IdentifyScheme.CACHE):
        return NoIdentify()
    if config.identify is IdentifyScheme.STATES:
        return StatesIdentify()
    if config.identify is IdentifyScheme.VERSION:
        return VersionIdentify(config.version_mask, config.read_counter_mask)
    raise ConfigError(f"unknown identification scheme {config.identify!r}")

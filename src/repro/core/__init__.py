"""Dynamic self-invalidation — the paper's contribution.

This package holds the pieces the paper adds on top of a conventional
full-map write-invalidate protocol:

* :mod:`repro.core.identify` — how the **directory** decides, while
  servicing a miss, whether the response should be marked for
  self-invalidation: the additional-states scheme and the version-number
  scheme of §4.1 (plus the no-op policy for the base protocol).
* :mod:`repro.core.mechanisms` — how the **cache controller** later
  performs the self-invalidation: selective flush at synchronization
  operations, or a finite FIFO buffer (§4.2).
* :mod:`repro.core.tearoff` — tear-off block accounting (§3.3): untracked
  copies that eliminate acknowledgment messages under weak consistency.
"""

from repro.core.identify import (
    IdentifyDecision,
    NoIdentify,
    StatesIdentify,
    VersionIdentify,
    make_policy,
)
from repro.core.mechanisms import FifoMechanism, SyncFlushMechanism, make_mechanism
from repro.core.tearoff import TearoffTracker

__all__ = [
    "FifoMechanism",
    "IdentifyDecision",
    "NoIdentify",
    "StatesIdentify",
    "SyncFlushMechanism",
    "TearoffTracker",
    "VersionIdentify",
    "make_policy",
    "make_mechanism",
]

"""Statistics: message counters and execution-time breakdowns."""

from repro.stats.breakdown import Breakdown, CATEGORIES
from repro.stats.counters import MessageCounters, MissCounters
from repro.stats.report import RunResult, format_breakdown_table, format_table

__all__ = [
    "Breakdown",
    "CATEGORIES",
    "MessageCounters",
    "MissCounters",
    "RunResult",
    "format_breakdown_table",
    "format_table",
]

"""Statistics: message counters, execution-time breakdowns, run records."""

from repro.stats.breakdown import Breakdown, CATEGORIES
from repro.stats.counters import MessageCounters, MissCounters
from repro.stats.record import RunRecord
from repro.stats.report import RunResult, format_breakdown_table, format_table

__all__ = [
    "Breakdown",
    "CATEGORIES",
    "MessageCounters",
    "MissCounters",
    "RunRecord",
    "RunResult",
    "format_breakdown_table",
    "format_table",
]

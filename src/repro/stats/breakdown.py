"""Execution-time breakdown, mirroring the categories of the paper's Figure 3.

Every cycle of every processor's execution is attributed to exactly one
category:

``compute``
    Instruction execution, including cache hits.
``sync``
    Stalled at synchronization operations (lock wait, barrier wait, and the
    coherence misses of the lock words themselves).
``read_inval`` / ``write_inval``
    The portion of a read/write miss spent *waiting at the directory for
    outstanding copies to be invalidated* — the maximum time DSI can
    eliminate.
``read_other`` / ``write_other``
    The remainder of read/write miss latency (network, occupancies,
    queueing, data transfer).
``synch_wb``
    (WC) waiting at a synchronization point for the write buffer to drain.
``read_wb``
    (WC) read miss to a block with an outstanding write miss.
``wb_full``
    (WC) stalled because the 16-entry write buffer was full.
``dsi``
    Waiting for self-invalidation to complete at a synchronization point.
"""

CATEGORIES = (
    "compute",
    "sync",
    "read_inval",
    "read_other",
    "write_inval",
    "write_other",
    "synch_wb",
    "read_wb",
    "wb_full",
    "dsi",
)


class Breakdown:
    """Per-processor (or aggregated) cycle counts by category."""

    __slots__ = CATEGORIES

    def __init__(self):
        for name in CATEGORIES:
            setattr(self, name, 0)

    def add(self, category, cycles):
        setattr(self, category, getattr(self, category) + cycles)

    def total(self):
        return sum(getattr(self, name) for name in CATEGORIES)

    def merge(self, other):
        """Accumulate another breakdown into this one (for aggregation)."""
        for name in CATEGORIES:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self):
        return {name: getattr(self, name) for name in CATEGORIES}

    def fractions(self):
        """Category shares of the total (all zero if the total is zero)."""
        total = self.total()
        if total == 0:
            return {name: 0.0 for name in CATEGORIES}
        return {name: getattr(self, name) / total for name in CATEGORIES}

    def copy(self):
        clone = Breakdown()
        clone.merge(self)
        return clone

    def __repr__(self):
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items() if v)
        return f"Breakdown({parts})"

"""Durable run records.

A :class:`RunRecord` is the portable form of a
:class:`~repro.stats.report.RunResult`: the same measured quantities —
execution time, per-processor stall breakdowns, message counts, cache
statistics — detached from the live machine, pickle-safe for process
pools and JSON round-trippable (:meth:`RunRecord.to_dict` /
:meth:`RunRecord.from_dict`) for the on-disk result cache.

It subclasses ``RunResult``, so every consumer of a live result
(``normalized_to``, ``aggregate_breakdown``, ``messages.invalidations()``,
``misses.fifo_overflows``, ...) reads a record identically.
"""

import math

from repro.stats.breakdown import CATEGORIES, Breakdown
from repro.stats.counters import MessageCounters, MissCounters
from repro.stats.report import RunResult


class RunRecord(RunResult):
    """Everything measured in one simulation run, in portable form.

    Beyond the simulated quantities a record carries *run telemetry* —
    ``wall_time_s`` (host seconds the simulation took) and
    ``sim_cycles_per_s`` (simulated cycles per host second) — populated
    by whoever executed the run (:func:`repro.harness.runpool.execute_spec`
    in pool workers, the CLI for one-off runs).  Telemetry is volatile
    (two identical simulations have different wall times), so it is
    excluded from record equality.
    """

    __slots__ = ("wall_time_s", "sim_cycles_per_s")

    def __init__(self, *args, wall_time_s=None, sim_cycles_per_s=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.wall_time_s = wall_time_s
        self.sim_cycles_per_s = sim_cycles_per_s

    def set_timing(self, wall_time_s):
        """Record how long the simulation took on the host.

        ``sim_cycles_per_s`` is left ``None`` — never raised on, never
        ``inf``/``nan`` — when the wall time is missing, non-finite, or
        zero/sub-resolution (a sufficiently fast run can land inside one
        clock tick), so BENCH JSON stays schema-valid and downstream
        ratio math can simply skip the entry."""
        self.wall_time_s = wall_time_s
        rate = None
        if wall_time_s is not None and math.isfinite(wall_time_s) and wall_time_s > 0:
            rate = self.exec_time / wall_time_s
            if not math.isfinite(rate):
                rate = None
        self.sim_cycles_per_s = rate

    @classmethod
    def from_result(cls, result):
        """Extract a record from a finished run (shares no machine state —
        a ``RunResult``'s fields are already plain data)."""
        return cls(
            label=result.label,
            workload=result.workload,
            exec_time=result.exec_time,
            per_proc_time=list(result.per_proc_time),
            breakdowns=[b.copy() for b in result.breakdowns],
            messages=_copy_messages(result.messages),
            misses=_copy_misses(result.misses),
            events_fired=result.events_fired,
            dir_busy_cycles=result.dir_busy_cycles,
            ni_busy_cycles=result.ni_busy_cycles,
        )

    def to_dict(self):
        """JSON-serializable dict; inverse of :meth:`from_dict`."""
        return {
            "label": self.label,
            "workload": self.workload,
            "exec_time": self.exec_time,
            "per_proc_time": list(self.per_proc_time),
            "breakdowns": [b.as_dict() for b in self.breakdowns],
            "messages": {
                "network": dict(self.messages.network),
                "local": dict(self.messages.local),
                "data_blocks_sent": self.messages.data_blocks_sent,
            },
            "misses": self.misses.as_dict(),
            "events_fired": self.events_fired,
            "dir_busy_cycles": self.dir_busy_cycles,
            "ni_busy_cycles": self.ni_busy_cycles,
            "wall_time_s": self.wall_time_s,
            "sim_cycles_per_s": self.sim_cycles_per_s,
        }

    @classmethod
    def from_dict(cls, payload):
        breakdowns = []
        for entry in payload["breakdowns"]:
            breakdown = Breakdown()
            for category in CATEGORIES:
                breakdown.add(category, entry.get(category, 0))
            breakdowns.append(breakdown)
        messages = MessageCounters()
        messages.network.update(payload["messages"]["network"])
        messages.local.update(payload["messages"]["local"])
        messages.data_blocks_sent = payload["messages"]["data_blocks_sent"]
        misses = MissCounters()
        for name, value in payload["misses"].items():
            setattr(misses, name, value)
        return cls(
            label=payload["label"],
            workload=payload["workload"],
            exec_time=payload["exec_time"],
            per_proc_time=list(payload["per_proc_time"]),
            breakdowns=breakdowns,
            messages=messages,
            misses=misses,
            events_fired=payload["events_fired"],
            dir_busy_cycles=payload["dir_busy_cycles"],
            ni_busy_cycles=payload["ni_busy_cycles"],
            wall_time_s=payload.get("wall_time_s"),
            sim_cycles_per_s=payload.get("sim_cycles_per_s"),
        )

    def _measured_dict(self):
        """to_dict minus the volatile run telemetry (equality basis)."""
        payload = self.to_dict()
        payload.pop("wall_time_s", None)
        payload.pop("sim_cycles_per_s", None)
        return payload

    def __eq__(self, other):
        if not isinstance(other, RunRecord):
            return NotImplemented
        return self._measured_dict() == other._measured_dict()

    def __ne__(self, other):
        equal = self.__eq__(other)
        return NotImplemented if equal is NotImplemented else not equal

    __hash__ = None

    def __repr__(self):
        return (
            f"RunRecord({self.workload!r}, {self.label!r}, "
            f"exec_time={self.exec_time})"
        )


def _copy_messages(messages):
    clone = MessageCounters()
    clone.network.update(messages.network)
    clone.local.update(messages.local)
    clone.data_blocks_sent = messages.data_blocks_sent
    return clone


def _copy_misses(misses):
    clone = MissCounters()
    for name in MissCounters.__slots__:
        setattr(clone, name, getattr(misses, name))
    return clone

"""Event counters: messages by kind, cache events, DSI events."""

from collections import Counter


class MessageCounters:
    """Counts every message, split into network (inter-node) and local
    (cache <-> co-resident home directory) traffic.

    Table 3 of the paper reports *network* messages; the invalidation
    column is the count of INV messages.
    """

    __slots__ = ("network", "local", "data_blocks_sent")

    def __init__(self):
        self.network = Counter()
        self.local = Counter()
        self.data_blocks_sent = 0

    def count(self, kind_name, is_network, carries_data):
        if is_network:
            self.network[kind_name] += 1
        else:
            self.local[kind_name] += 1
        if carries_data and is_network:
            self.data_blocks_sent += 1

    def total_network(self):
        return sum(self.network.values())

    def invalidations(self):
        """Explicit invalidation messages sent over the network."""
        return self.network.get("INV", 0)

    def acknowledgments(self):
        return self.network.get("INV_ACK", 0) + self.network.get("INV_ACK_DATA", 0)

    def as_dict(self):
        return {
            "network": dict(self.network),
            "local": dict(self.local),
            "total_network": self.total_network(),
            "invalidations": self.invalidations(),
        }


class MissCounters:
    """Cache-side event counts (aggregated over all processors)."""

    __slots__ = (
        "read_hits",
        "read_misses",
        "write_hits",
        "write_misses",
        "upgrades",
        "replacements",
        "self_invalidations",
        "tearoff_fills",
        "si_marked_fills",
        "misses_after_self_inval",
        "fifo_overflows",
        "explicit_invalidations",
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, 0)

    def bump(self, name, amount=1):
        setattr(self, name, getattr(self, name) + amount)

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def miss_rate(self):
        accesses = self.read_hits + self.read_misses + self.write_hits + self.write_misses
        if accesses == 0:
            return 0.0
        return (self.read_misses + self.write_misses) / accesses

"""Terminal rendering of the paper's stacked-bar figures.

Figure 3/4/6 of the paper are stacked bars of normalized execution time.
:func:`stacked_bars` renders the same thing in plain text: one bar per
run, length proportional to normalized time, partitioned into breakdown
categories by per-category glyphs.
"""

from repro.stats.breakdown import CATEGORIES

#: glyph per category, in stacking order (compute first, like the paper)
GLYPHS = {
    "compute": "#",
    "sync": "%",
    "read_inval": "R",
    "read_other": "r",
    "write_inval": "W",
    "write_other": "w",
    "synch_wb": "b",
    "read_wb": "d",
    "wb_full": "f",
    "dsi": "s",
}


def stacked_bar(fractions, scale, width):
    """One bar: ``fractions`` of a total that is ``scale`` of full width."""
    total_chars = int(round(scale * width))
    bar = []
    remaining = total_chars
    for category in CATEGORIES:
        share = fractions.get(category, 0.0)
        chars = int(round(share * total_chars))
        chars = min(chars, remaining)
        bar.append(GLYPHS[category] * chars)
        remaining -= chars
    if remaining > 0 and total_chars > 0:
        # rounding slack goes to the largest category
        largest = max(CATEGORIES, key=lambda c: fractions.get(c, 0.0))
        bar.append(GLYPHS[largest] * remaining)
    return "".join(bar)


def stacked_bars(results, base=None, width=60, title=None):
    """Render runs as stacked bars normalized to ``base`` (default: first).

    >>> # doctest-free: see tests/test_stats.py
    """
    if not results:
        return title or ""
    base = base or results[0]
    label_width = max(len(r.label) for r in results)
    lines = []
    if title:
        lines.append(title)
    for result in results:
        scale = result.normalized_to(base)
        fractions = result.aggregate_breakdown().fractions()
        bar = stacked_bar(fractions, scale, width)
        lines.append(f"{result.label.ljust(label_width)} |{bar} {scale:.2f}")
    legend = "  ".join(f"{GLYPHS[c]}={c}" for c in CATEGORIES)
    lines.append(f"[{legend}]")
    return "\n".join(lines)


def progress_bar(fraction, width=20):
    """A fixed-width ``[####----]`` progress cell for ``fraction`` in
    [0, 1] (clamped); the harness live dashboard's building block."""
    fraction = min(max(fraction, 0.0), 1.0)
    filled = int(round(fraction * width))
    return f"[{'#' * filled}{'-' * (width - filled)}]"


def bar_chart(labels_values, width=50, title=None):
    """Simple horizontal bar chart for (label, value) pairs."""
    if not labels_values:
        return title or ""
    peak = max(value for _label, value in labels_values) or 1
    label_width = max(len(str(label)) for label, _value in labels_values)
    lines = []
    if title:
        lines.append(title)
    for label, value in labels_values:
        chars = int(round(width * value / peak))
        lines.append(f"{str(label).ljust(label_width)} |{'#' * chars} {value}")
    return "\n".join(lines)

"""Static sharing-pattern analysis of a program (no simulation).

:func:`analyze_program` walks the traces and summarises the properties
that determine coherence behaviour — per-block reader/writer sets,
sharing degree, producer/consumer vs migratory ratios, working sets,
synchronization density.  The workload generators are validated against
the paper's Table-1 descriptions with these profiles, and
``dsi-sim describe --workload X`` prints them.
"""

from collections import Counter

import numpy as np

from repro.stats.report import format_table
from repro.trace.ops import OP_LOCK, OP_READ, OP_UNLOCK, OP_WRITE


class ProgramProfile:
    """Summary statistics of one program's sharing pattern."""

    def __init__(self, program, block_shift=5):
        self.name = program.name
        self.n_procs = program.n_procs
        self.block_shift = block_shift
        self.total_ops = 0
        self.reads = 0
        self.writes = 0
        self.locks = 0
        self.barriers = program.traces[0].barrier_count()
        self.compute_cycles = 0
        self.readers = {}  # block -> set of procs
        self.writers = {}  # block -> set of procs
        self.proc_blocks = [set() for _ in range(program.n_procs)]
        self._walk(program)

    def _walk(self, program):
        shift = self.block_shift
        for proc, trace in enumerate(program.traces):
            self.total_ops += len(trace)
            self.compute_cycles += trace.total_compute()
            kinds = trace.kinds
            addrs = trace.addrs
            read_blocks = set(
                (addrs[kinds == OP_READ] >> shift).tolist()
            )
            # Lock words are swapped (read-modify-written) by their users.
            write_blocks = set(
                (addrs[(kinds == OP_WRITE) | (kinds == OP_LOCK) | (kinds == OP_UNLOCK)] >> shift).tolist()
            )
            self.reads += int(np.count_nonzero(kinds == OP_READ))
            self.writes += int(np.count_nonzero(kinds == OP_WRITE))
            self.locks += int(np.count_nonzero(kinds == OP_LOCK))
            for block in read_blocks:
                self.readers.setdefault(block, set()).add(proc)
            for block in write_blocks:
                self.writers.setdefault(block, set()).add(proc)
            self.proc_blocks[proc] |= read_blocks | write_blocks

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    def blocks(self):
        """Every block the program touches."""
        return set(self.readers) | set(self.writers)

    def shared_blocks(self):
        """Blocks touched by more than one processor."""
        return {
            block
            for block in self.blocks()
            if len(self.readers.get(block, set()) | self.writers.get(block, set())) > 1
        }

    def sharing_degree(self):
        """Histogram: number of processors touching each block."""
        histogram = Counter()
        for block in self.blocks():
            touching = self.readers.get(block, set()) | self.writers.get(block, set())
            histogram[len(touching)] += 1
        return dict(histogram)

    def producer_consumer_blocks(self):
        """Blocks with exactly one writer and at least one other reader."""
        out = set()
        for block, writers in self.writers.items():
            if len(writers) != 1:
                continue
            others = self.readers.get(block, set()) - writers
            if others:
                out.add(block)
        return out

    def migratory_blocks(self):
        """Blocks written by more than one processor."""
        return {block for block, writers in self.writers.items() if len(writers) > 1}

    def working_set_bytes(self, proc):
        return len(self.proc_blocks[proc]) << self.block_shift

    def max_working_set(self):
        return max(self.working_set_bytes(p) for p in range(self.n_procs))

    def sync_density(self):
        """Synchronization operations per thousand memory references."""
        refs = self.reads + self.writes
        if refs == 0:
            return 0.0
        return 1000.0 * (self.locks * 2 + self.barriers * self.n_procs) / refs

    def shared_fraction(self):
        total = len(self.blocks())
        if total == 0:
            return 0.0
        return len(self.shared_blocks()) / total

    # ------------------------------------------------------------------
    def summary(self):
        return {
            "name": self.name,
            "n_procs": self.n_procs,
            "total_ops": self.total_ops,
            "reads": self.reads,
            "writes": self.writes,
            "locks": self.locks,
            "barriers": self.barriers,
            "blocks": len(self.blocks()),
            "shared_blocks": len(self.shared_blocks()),
            "shared_fraction": round(self.shared_fraction(), 3),
            "producer_consumer_blocks": len(self.producer_consumer_blocks()),
            "migratory_blocks": len(self.migratory_blocks()),
            "max_working_set_kb": self.max_working_set() // 1024,
            "sync_per_kiloref": round(self.sync_density(), 2),
        }

    def format(self):
        rows = [[key, value] for key, value in self.summary().items()]
        lines = [format_table(["property", "value"], rows, title=f"profile: {self.name}")]
        degree_rows = sorted(self.sharing_degree().items())
        lines.append("")
        lines.append(
            format_table(
                ["processors touching", "blocks"],
                degree_rows,
                title="sharing degree",
            )
        )
        return "\n".join(lines)


def analyze_program(program, block_shift=5):
    """Build a :class:`ProgramProfile` for a program."""
    return ProgramProfile(program, block_shift=block_shift)

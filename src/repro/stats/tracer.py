"""Protocol event tracing.

A :class:`MessageTracer` attached to a machine records every message the
network carries — timestamp, kind, endpoints, block, flags — optionally
filtered to a block set.  Useful for debugging protocol behaviour and for
teaching: ``dsi-sim run --show-trace 40`` prints the first messages of a
run, and :meth:`MessageTracer.block_history` reconstructs one block's
whole coherence life.
"""

from repro.stats.report import format_table


class TraceEvent:
    """One recorded message."""

    __slots__ = ("time", "kind", "src", "dst", "block", "flags", "local", "txn_id")

    def __init__(self, time, kind, src, dst, block, flags, local, txn_id=None):
        self.time = time
        self.kind = kind
        self.src = src
        self.dst = dst
        self.block = block
        self.flags = flags
        self.local = local
        self.txn_id = txn_id

    def row(self):
        path = f"{self.src}->{self.dst}" + (" (local)" if self.local else "")
        txn = "" if self.txn_id is None else self.txn_id
        return [self.time, self.kind, path, self.block, txn, self.flags]

    def __repr__(self):
        return f"TraceEvent({self.time}, {self.kind}, {self.src}->{self.dst}, blk={self.block})"


#: Default bound on retained events.  A full-scale barnes run sends every
#: message through the tracer; unbounded retention used to hold all of
#: them in RAM.
DEFAULT_MAX_EVENTS = 100_000


class MessageTracer:
    """Records messages as they are sent.

    Parameters
    ----------
    blocks:
        Optional iterable of block numbers; only messages for these blocks
        are recorded.
    txns:
        Optional iterable of causal transaction ids (``Message.txn_id``);
        only messages carrying one of these ids are recorded.  Ids are only
        assigned when an :class:`~repro.obs.instrument.Instrument` is
        attached to the machine, and are deterministic across instrumented
        re-runs of the same configuration — so an id reported by
        ``dsi-sim why`` can be replayed with ``dsi-sim trace --txn``.
    max_events:
        Retain at most this many events; further matching messages are
        *counted* (``dropped``) but not stored, and the drop count is
        reported by :meth:`format`.  ``None`` applies the default bound
        (100k); 0 means unbounded.
    limit:
        Backwards-compatible alias for ``max_events`` (the pre-cap
        keyword); ignored when ``max_events`` is given explicitly.
    """

    def __init__(self, blocks=None, limit=0, max_events=None, txns=None):
        self.blocks = set(blocks) if blocks is not None else None
        self.txns = set(txns) if txns is not None else None
        if max_events is None:
            max_events = limit if limit else DEFAULT_MAX_EVENTS
        self.max_events = max_events
        self.dropped = 0
        self.events = []

    @property
    def limit(self):
        return self.max_events

    @property
    def full(self):
        return bool(self.max_events) and len(self.events) >= self.max_events

    def record(self, time, msg, is_local):
        if self.blocks is not None and msg.block not in self.blocks:
            return
        if self.txns is not None and msg.txn_id not in self.txns:
            return
        if self.full:
            self.dropped += 1
            return
        flags = []
        if msg.si:
            flags.append("si")
        if msg.tearoff:
            flags.append("tearoff")
        if msg.dirty:
            flags.append("dirty")
        if msg.acks_pending:
            flags.append("acks_pending")
        if msg.version is not None and msg.kind.name in ("GETS", "GETX", "UPGRADE"):
            flags.append(f"v{msg.version}")
        self.events.append(
            TraceEvent(
                time,
                msg.kind.name,
                msg.src,
                msg.dst,
                msg.block,
                ",".join(flags),
                is_local,
                txn_id=msg.txn_id,
            )
        )

    # ------------------------------------------------------------------
    def block_history(self, block):
        """Every recorded event touching one block, in time order."""
        return [e for e in self.events if e.block == block]

    def between(self, src, dst):
        """Events on one directed channel."""
        return [e for e in self.events if e.src == src and e.dst == dst]

    def format(self, limit=None):
        rows = [event.row() for event in self.events[: limit or len(self.events)]]
        text = format_table(["time", "message", "path", "block", "txn", "flags"], rows)
        if self.dropped:
            text += (
                f"\n... {self.dropped} further event(s) dropped "
                f"(max_events={self.max_events})"
            )
        return text

    def __len__(self):
        return len(self.events)


def attach_tracer(machine, tracer):
    """Wrap the machine's network so every send is recorded."""
    network = machine.network
    original_send = network.send

    def traced_send(msg, on_injected=None):
        tracer.record(network.sim.now, msg, msg.src == msg.dst)
        return original_send(msg, on_injected=on_injected)

    network.send = traced_send
    return tracer

"""Run results and plain-text table formatting for the harness."""

from repro.stats.breakdown import CATEGORIES, Breakdown


class RunResult:
    """Everything measured in one simulation run."""

    __slots__ = (
        "label",
        "workload",
        "exec_time",
        "per_proc_time",
        "breakdowns",
        "messages",
        "misses",
        "events_fired",
        "dir_busy_cycles",
        "ni_busy_cycles",
    )

    def __init__(
        self,
        label,
        workload,
        exec_time,
        per_proc_time,
        breakdowns,
        messages,
        misses,
        events_fired,
        dir_busy_cycles=0,
        ni_busy_cycles=0,
    ):
        self.label = label
        self.workload = workload
        self.exec_time = exec_time
        self.per_proc_time = per_proc_time
        self.breakdowns = breakdowns
        self.messages = messages
        self.misses = misses
        self.events_fired = events_fired
        self.dir_busy_cycles = dir_busy_cycles
        self.ni_busy_cycles = ni_busy_cycles

    def dir_occupancy(self):
        """Mean directory-controller utilisation across the machine.

        Table 3's discussion: eliminating messages reduces directory
        occupancy "by the same amount" to first order — this lets the
        harness check that claim directly.
        """
        if self.exec_time == 0 or not self.per_proc_time:
            return 0.0
        return self.dir_busy_cycles / (self.exec_time * len(self.per_proc_time))

    def aggregate_breakdown(self):
        total = Breakdown()
        for breakdown in self.breakdowns:
            total.merge(breakdown)
        return total

    def normalized_to(self, base):
        """Execution time normalized to a baseline run."""
        if base.exec_time == 0:
            return 0.0
        return self.exec_time / base.exec_time

    def summary(self):
        agg = self.aggregate_breakdown()
        return {
            "label": self.label,
            "workload": self.workload,
            "exec_time": self.exec_time,
            "messages": self.messages.total_network(),
            "invalidations": self.messages.invalidations(),
            "miss_rate": self.misses.miss_rate(),
            "breakdown": agg.as_dict(),
        }


def format_table(headers, rows, title=None):
    """Render a plain-text table with right-aligned numeric columns."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in text_rows:
        lines.append(
            "  ".join(
                cell.rjust(widths[i]) if _numeric(row[i]) else cell.ljust(widths[i])
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(lines)


def format_breakdown_table(results, base=None, title=None):
    """One row per run: normalized time plus category fractions.

    ``base`` defaults to the first result; normalization is relative to it.
    """
    if not results:
        return title or ""
    base = base or results[0]
    headers = ["run", "norm_time"] + list(CATEGORIES)
    rows = []
    for result in results:
        fractions = result.aggregate_breakdown().fractions()
        norm = result.normalized_to(base)
        rows.append(
            [result.label, f"{norm:.3f}"] + [f"{fractions[c]:.3f}" for c in CATEGORIES]
        )
    return format_table(headers, rows, title=title)


def _fmt(cell):
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def _numeric(text):
    try:
        float(text)
    except ValueError:
        return False
    return True

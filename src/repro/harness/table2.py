"""Table 2: weakly consistent DSI normalized execution time.

WC+DSI (version numbers, tear-off) over plain WC for all four
(cache, network) configurations, next to the paper's published values.
"""

from repro.harness import paper_reference
from repro.harness.configs import FAST_NET, LARGE_CACHE, SLOW_NET, SMALL_CACHE, WORKLOADS, paper_config
from repro.harness.experiment import ExperimentResult

EXPERIMENT_ID = "table2"

CONFIGS = (
    ("small", SMALL_CACHE, FAST_NET),
    ("large", LARGE_CACHE, FAST_NET),
    ("small", SMALL_CACHE, SLOW_NET),
    ("large", LARGE_CACHE, SLOW_NET),
)


def specs(runner):
    """Plan: WC and WC+DSI at all four (cache, network) points."""
    return [
        runner.spec(workload, paper_config(protocol, cache=cache, latency=latency, n_procs=runner.n_procs))
        for workload in WORKLOADS
        for _label, cache, latency in CONFIGS
        for protocol in ("W", "W+V")
    ]


def run(runner):
    runner.prefetch(specs(runner))
    headers = ["workload", "cache", "network", "norm_time", "paper"]
    rows = []
    for workload in WORKLOADS:
        for cache_label, cache, latency in CONFIGS:
            base = runner.run(workload, paper_config("W", cache=cache, latency=latency, n_procs=runner.n_procs))
            dsi = runner.run(workload, paper_config("W+V", cache=cache, latency=latency, n_procs=runner.n_procs))
            ref = paper_reference.TABLE2[(cache_label, latency)].get(workload)
            rows.append(
                [
                    workload,
                    cache_label,
                    latency,
                    f"{dsi.normalized_to(base):.2f}",
                    paper_reference.fmt(ref),
                ]
            )
    return ExperimentResult(
        EXPERIMENT_ID,
        "Weakly consistent DSI normalized execution time (WC+DSI / WC)",
        headers,
        rows,
    )

"""Figure 5: self-invalidation mechanisms.

FIFO buffer (64 entries, flushed at sync) versus selective flush at
synchronization operations, both with version-number identification, at
the large cache and 100-cycle network.  The paper finds little difference
except Sparse, where the FIFO cannot hold the program's self-invalidate
working set and invalidates too early.
"""

from repro.harness import paper_reference
from repro.harness.configs import FAST_NET, LARGE_CACHE, WORKLOADS, paper_config
from repro.harness.experiment import ExperimentResult

EXPERIMENT_ID = "figure5"

_PROTOCOLS = ("SC", "V", "V-FIFO")


def specs(runner):
    """Plan: SC base, flush-at-sync and FIFO variants per workload."""
    return [
        runner.spec(
            workload,
            paper_config(protocol, cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs),
        )
        for workload in WORKLOADS
        for protocol in _PROTOCOLS
    ]


def run(runner):
    runner.prefetch(specs(runner))
    headers = ["workload", "flush_norm", "fifo_norm", "fifo_overflows", "paper_fifo_matches"]
    rows = []
    for workload in WORKLOADS:
        base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs))
        flush = runner.run(workload, paper_config("V", cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs))
        fifo = runner.run(workload, paper_config("V-FIFO", cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs))
        rows.append(
            [
                workload,
                f"{flush.normalized_to(base):.2f}",
                f"{fifo.normalized_to(base):.2f}",
                fifo.misses.fifo_overflows,
                "yes" if paper_reference.FIGURE5_FIFO_MATCHES_FLUSH[workload] else "NO (collapses)",
            ]
        )
    return ExperimentResult(
        EXPERIMENT_ID,
        "Self-invalidation mechanisms: FIFO vs flush-at-sync (DSI-V, large cache)",
        headers,
        rows,
        notes=(
            "Normalized to base SC.  The paper reports the FIFO matching the flush "
            "everywhere except Sparse, where overflow self-invalidates too early."
        ),
    )

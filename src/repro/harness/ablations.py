"""Ablations of the paper's design choices (DESIGN.md A1–A5).

These go beyond the paper's published data, probing the design space the
paper discusses qualitatively: version-number width, FIFO depth, the two
§4.1 special cases, and the read-counter width used for exclusive-block
identification.

Every ablation is two-phase: a ``*_specs`` planner declares the full
sweep as RunSpecs (so the CLI can prefetch several ablations as one
parallel batch), and the collector reads the records back into a table.
"""

from repro.harness.configs import LARGE_CACHE, WORKLOADS, paper_config
from repro.harness.experiment import ExperimentResult


def _base_spec(runner, workload, n_procs=None, **overrides):
    n = n_procs or runner.n_procs
    return runner.spec(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=n, **overrides), n_procs=n)


def _v_spec(runner, workload, n_procs=None, **overrides):
    n = n_procs or runner.n_procs
    return runner.spec(workload, paper_config("V", cache=LARGE_CACHE, n_procs=n, **overrides), n_procs=n)


# ----------------------------------------------------------------------
# A1: version-number width
# ----------------------------------------------------------------------
def version_bits_specs(runner, workload="sparse", widths=(1, 2, 3, 4, 6)):
    return [_base_spec(runner, workload)] + [
        _v_spec(runner, workload, version_bits=bits) for bits in widths
    ]


def version_bits(runner, workload="sparse", widths=(1, 2, 3, 4, 6)):
    """A1: how small can the version number get before wrap-around aliasing
    erodes the benefit?  (The paper uses 4 bits.)"""
    runner.prefetch(version_bits_specs(runner, workload, widths))
    base = runner.run_spec(_base_spec(runner, workload))
    headers = ["version_bits", "norm_time", "invalidations"]
    rows = []
    for bits in widths:
        result = runner.run_spec(_v_spec(runner, workload, version_bits=bits))
        rows.append([bits, f"{result.normalized_to(base):.3f}", result.messages.invalidations()])
    return ExperimentResult(
        "ablation:version_bits",
        f"Version-number width sweep ({workload})",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A2: FIFO depth
# ----------------------------------------------------------------------
def fifo_depth_specs(runner, workload="sparse", depths=(8, 16, 32, 64, 128, 256, 512)):
    specs = [_base_spec(runner, workload)]
    for depth in depths:
        config = paper_config("V-FIFO", cache=LARGE_CACHE, n_procs=runner.n_procs, fifo_entries=depth)
        specs.append(runner.spec(workload, config))
    return specs


def fifo_depth(runner, workload="sparse", depths=(8, 16, 32, 64, 128, 256, 512)):
    """A2: FIFO depth sweep — where does the FIFO stop self-invalidating
    too early?  (The paper uses 64 entries.)"""
    runner.prefetch(fifo_depth_specs(runner, workload, depths))
    base = runner.run_spec(_base_spec(runner, workload))
    headers = ["fifo_entries", "norm_time", "overflows"]
    rows = []
    for depth in depths:
        config = paper_config("V-FIFO", cache=LARGE_CACHE, n_procs=runner.n_procs, fifo_entries=depth)
        result = runner.run_spec(runner.spec(workload, config))
        rows.append([depth, f"{result.normalized_to(base):.3f}", result.misses.fifo_overflows])
    return ExperimentResult(
        "ablation:fifo_depth",
        f"FIFO depth sweep ({workload})",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A3: the §4.1 SC upgrade special case
# ----------------------------------------------------------------------
def upgrade_case_specs(runner, workloads=("em3d", "sparse", "tomcatv")):
    specs = []
    for workload in workloads:
        specs.append(_base_spec(runner, workload))
        specs.append(_v_spec(runner, workload))
        specs.append(_v_spec(runner, workload, sc_upgrade_special_case=False))
    return specs


def upgrade_case(runner, workloads=("em3d", "sparse", "tomcatv")):
    """A3: the §4.1 SC special case — don't mark exclusive blocks obtained
    by a sole sharer's upgrade.  The paper found disabling it degrades some
    programs under SC."""
    runner.prefetch(upgrade_case_specs(runner, workloads))
    headers = ["workload", "with_case", "without_case"]
    rows = []
    for workload in workloads:
        base = runner.run_spec(_base_spec(runner, workload))
        on = runner.run_spec(_v_spec(runner, workload))
        off = runner.run_spec(_v_spec(runner, workload, sc_upgrade_special_case=False))
        rows.append([workload, f"{on.normalized_to(base):.3f}", f"{off.normalized_to(base):.3f}"])
    return ExperimentResult(
        "ablation:upgrade_case",
        "SC upgrade special case on/off (DSI-V)",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A4: home-node exclusion
# ----------------------------------------------------------------------
def home_exclusion_specs(runner, workloads=("em3d", "sparse")):
    specs = []
    for workload in workloads:
        specs.append(_base_spec(runner, workload))
        specs.append(_v_spec(runner, workload))
        specs.append(_v_spec(runner, workload, home_exclusion=False))
    return specs


def home_exclusion(runner, workloads=("em3d", "sparse")):
    """A4: the §4.1 rule that blocks are never self-invalidated from the
    home node's own cache."""
    runner.prefetch(home_exclusion_specs(runner, workloads))
    headers = ["workload", "with_exclusion", "without_exclusion"]
    rows = []
    for workload in workloads:
        base = runner.run_spec(_base_spec(runner, workload))
        on = runner.run_spec(_v_spec(runner, workload))
        off = runner.run_spec(_v_spec(runner, workload, home_exclusion=False))
        rows.append([workload, f"{on.normalized_to(base):.3f}", f"{off.normalized_to(base):.3f}"])
    return ExperimentResult(
        "ablation:home_exclusion",
        "Home-node exclusion on/off (DSI-V)",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A5: read-counter width
# ----------------------------------------------------------------------
def read_counter_specs(runner, workload="sparse", widths=(1, 2, 3, 4)):
    return [_base_spec(runner, workload)] + [
        _v_spec(runner, workload, read_counter_bits=bits) for bits in widths
    ]


def read_counter(runner, workload="sparse", widths=(1, 2, 3, 4)):
    """A5: width of the shared-copy shift counter used to identify
    exclusive blocks for self-invalidation (the paper uses 2 bits =
    'read by at least two processors')."""
    runner.prefetch(read_counter_specs(runner, workload, widths))
    base = runner.run_spec(_base_spec(runner, workload))
    headers = ["read_counter_bits", "norm_time", "self_invalidations"]
    rows = []
    for bits in widths:
        result = runner.run_spec(_v_spec(runner, workload, read_counter_bits=bits))
        rows.append([bits, f"{result.normalized_to(base):.3f}", result.misses.self_invalidations])
    return ExperimentResult(
        "ablation:read_counter",
        f"Exclusive-identification read-counter width ({workload})",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A6 (extension): cache-side identification
# ----------------------------------------------------------------------
def cache_side_specs(runner, workloads=("em3d", "sparse", "ocean")):
    specs = []
    for workload in workloads:
        specs.append(_base_spec(runner, workload))
        specs.append(runner.spec(workload, paper_config("S", cache=LARGE_CACHE, n_procs=runner.n_procs)))
        specs.append(_v_spec(runner, workload))
        specs.append(runner.spec(workload, _cache_side_config(runner)))
    return specs


def _cache_side_config(runner):
    return paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs).with_(
        identify=_cache_scheme()
    )


def cache_side(runner, workloads=("em3d", "sparse", "ocean")):
    """A6 (extension): cache-side identification (§3.1) vs the paper's
    directory-side schemes.  The cache marks blocks from its own
    invalidation-count history — no directory support at all."""
    runner.prefetch(cache_side_specs(runner, workloads))
    headers = ["workload", "states", "version", "cache_side"]
    rows = []
    for workload in workloads:
        base = runner.run_spec(_base_spec(runner, workload))
        states = runner.run_spec(
            runner.spec(workload, paper_config("S", cache=LARGE_CACHE, n_procs=runner.n_procs))
        )
        version = runner.run_spec(_v_spec(runner, workload))
        cache = runner.run_spec(runner.spec(workload, _cache_side_config(runner)))
        rows.append(
            [
                workload,
                f"{states.normalized_to(base):.3f}",
                f"{version.normalized_to(base):.3f}",
                f"{cache.normalized_to(base):.3f}",
            ]
        )
    return ExperimentResult(
        "ablation:cache_side",
        "Cache-side vs directory-side identification (normalized to SC)",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A7 (extension): tear-off under SC
# ----------------------------------------------------------------------
def sc_tearoff_specs(runner, workloads=("em3d", "sparse")):
    specs = []
    for workload in workloads:
        specs.append(_base_spec(runner, workload))
        specs.append(_v_spec(runner, workload))
        specs.append(_v_spec(runner, workload, sc_tearoff=True))
    return specs


def sc_tearoff(runner, workloads=("em3d", "sparse")):
    """A7 (extension): tear-off blocks under sequential consistency —
    at most one untracked copy per cache, dropped at the next miss."""
    runner.prefetch(sc_tearoff_specs(runner, workloads))
    headers = ["workload", "dsi_v", "dsi_v_tearoff", "msg_red_%"]
    rows = []
    for workload in workloads:
        base = runner.run_spec(_base_spec(runner, workload))
        version = runner.run_spec(_v_spec(runner, workload))
        tear = runner.run_spec(_v_spec(runner, workload, sc_tearoff=True))
        base_msgs = version.messages.total_network()
        tear_msgs = tear.messages.total_network()
        reduction = 100.0 * (base_msgs - tear_msgs) / max(base_msgs, 1)
        rows.append(
            [
                workload,
                f"{version.normalized_to(base):.3f}",
                f"{tear.normalized_to(base):.3f}",
                f"{reduction:.0f}",
            ]
        )
    return ExperimentResult(
        "ablation:sc_tearoff",
        "Tear-off blocks under SC (extension; messages vs plain DSI-V)",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A8: machine-size scaling
# ----------------------------------------------------------------------
def scaling_specs(runner, workload="sparse", proc_counts=(4, 8, 16, 32)):
    specs = []
    for n_procs in proc_counts:
        for protocol in ("SC", "W", "V"):
            config = paper_config(protocol, cache=LARGE_CACHE, n_procs=n_procs)
            specs.append(runner.spec(workload, config, n_procs=n_procs))
    return specs


def scaling(runner, workload="sparse", proc_counts=(4, 8, 16, 32)):
    """A8: DSI benefit vs machine size.  More processors pile more readers
    behind each invalidation (sparse's convoy), so the benefit grows —
    the paper's scalability argument made quantitative.

    Machine size changes the workload, so each spec carries its own
    ``n_procs`` — the pool runs all sizes as one batch.
    """
    runner.prefetch(scaling_specs(runner, workload, proc_counts))
    headers = ["procs", "W", "V", "V_saving_%"]
    rows = []
    for n_procs in proc_counts:
        def record(protocol):
            config = paper_config(protocol, cache=LARGE_CACHE, n_procs=n_procs)
            return runner.run_spec(runner.spec(workload, config, n_procs=n_procs))

        base = record("SC")
        weak = record("W")
        version = record("V")
        rows.append(
            [
                n_procs,
                f"{weak.normalized_to(base):.3f}",
                f"{version.normalized_to(base):.3f}",
                f"{(1 - version.normalized_to(base)) * 100:.0f}",
            ]
        )
    return ExperimentResult(
        "ablation:scaling",
        f"DSI benefit vs machine size ({workload})",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A9: cache-block size
# ----------------------------------------------------------------------
def block_size_specs(runner, workload="ocean", sizes=(32, 64, 128)):
    specs = []
    for size in sizes:
        specs.append(_base_spec(runner, workload, block_size=size))
        specs.append(_v_spec(runner, workload, block_size=size))
    return specs


def block_size(runner, workload="ocean", sizes=(32, 64, 128)):
    """A9: cache-block size.  Bigger blocks mean more false sharing on the
    boundary rows and more invalidation traffic per conflict."""
    runner.prefetch(block_size_specs(runner, workload, sizes))
    headers = ["block_bytes", "SC_exec", "invalidations", "V_norm"]
    rows = []
    for size in sizes:
        base = runner.run_spec(_base_spec(runner, workload, block_size=size))
        version = runner.run_spec(_v_spec(runner, workload, block_size=size))
        rows.append(
            [
                size,
                base.exec_time,
                base.messages.invalidations(),
                f"{version.normalized_to(base):.3f}",
            ]
        )
    return ExperimentResult(
        "ablation:block_size",
        f"Cache-block size sweep ({workload})",
        headers,
        rows,
        notes="The workload assumes 32-byte blocks for its layout; larger "
        "blocks add false sharing on adjacent data.",
    )


# ----------------------------------------------------------------------
# A10: the migratory optimization
# ----------------------------------------------------------------------
def migratory_specs(runner, workloads=("barnes", "sparse")):
    specs = []
    for workload in workloads:
        specs.append(_base_spec(runner, workload))
        specs.append(_v_spec(runner, workload))
        specs.append(_base_spec(runner, workload, migratory=True))
        specs.append(_v_spec(runner, workload, migratory=True))
    return specs


def migratory_combo(runner, workloads=("barnes", "sparse")):
    """A10: the migratory-data optimization §2 cites as complementary —
    alone, and combined with DSI-V."""
    runner.prefetch(migratory_specs(runner, workloads))
    headers = ["workload", "dsi_v", "migratory", "combined", "upgr_base", "upgr_mig"]
    rows = []
    for workload in workloads:
        base = runner.run_spec(_base_spec(runner, workload))
        version = runner.run_spec(_v_spec(runner, workload))
        mig = runner.run_spec(_base_spec(runner, workload, migratory=True))
        combo = runner.run_spec(_v_spec(runner, workload, migratory=True))
        rows.append(
            [
                workload,
                f"{version.normalized_to(base):.3f}",
                f"{mig.normalized_to(base):.3f}",
                f"{combo.normalized_to(base):.3f}",
                base.misses.upgrades,
                mig.misses.upgrades,
            ]
        )
    return ExperimentResult(
        "ablation:migratory",
        "Migratory optimization vs DSI vs both (normalized to SC)",
        headers,
        rows,
    )


# ----------------------------------------------------------------------
# A11 (extension): Tardis vs DSI vs baseline
# ----------------------------------------------------------------------
def _tardis_spec(runner, workload, protocol="TARDIS", **overrides):
    config = paper_config(protocol, cache=LARGE_CACHE, n_procs=runner.n_procs, **overrides)
    return runner.spec(workload, config)


def tardis_vs_dsi_specs(runner, workloads=WORKLOADS, lease=8):
    specs = []
    for workload in workloads:
        specs.append(_base_spec(runner, workload))
        specs.append(_v_spec(runner, workload))
        specs.append(_tardis_spec(runner, workload, lease=lease))
        specs.append(_tardis_spec(runner, workload, "W+TARDIS", lease=lease))
    return specs


def tardis_vs_dsi(runner, workloads=WORKLOADS, lease=8):
    """A11 (extension): Tardis leased logical timestamps vs the paper's
    DSI vs the SC baseline, on all five applications.  Tardis tracks no
    sharers and so sends zero invalidations by construction (the
    ``tardis_inv`` column stays 0); its cost shows up as lease-expiry
    reload misses (``expiries``) instead.  See docs/PROTOCOL.md for the
    transition tables."""
    runner.prefetch(tardis_vs_dsi_specs(runner, workloads, lease=lease))
    headers = ["workload", "dsi_v", "tardis", "w_tardis", "tardis_inv", "expiries"]
    rows = []
    for workload in workloads:
        base = runner.run_spec(_base_spec(runner, workload))
        version = runner.run_spec(_v_spec(runner, workload))
        tardis = runner.run_spec(_tardis_spec(runner, workload, lease=lease))
        w_tardis = runner.run_spec(_tardis_spec(runner, workload, "W+TARDIS", lease=lease))
        rows.append(
            [
                workload,
                f"{version.normalized_to(base):.3f}",
                f"{tardis.normalized_to(base):.3f}",
                f"{w_tardis.normalized_to(base):.3f}",
                tardis.messages.invalidations(),
                tardis.misses.self_invalidations,
            ]
        )
    return ExperimentResult(
        "ablation:tardis_vs_dsi",
        f"Tardis (lease {lease}) vs DSI-V vs base (normalized to SC)",
        headers,
        rows,
    )


def _cache_scheme():
    from repro.config import IdentifyScheme

    return IdentifyScheme.CACHE


ALL = {
    "version_bits": version_bits,
    "fifo_depth": fifo_depth,
    "upgrade_case": upgrade_case,
    "home_exclusion": home_exclusion,
    "read_counter": read_counter,
    "cache_side": cache_side,
    "sc_tearoff": sc_tearoff,
    "scaling": scaling,
    "migratory": migratory_combo,
    "block_size": block_size,
    "tardis_vs_dsi": tardis_vs_dsi,
}

#: Plan-phase counterpart of :data:`ALL` — the CLI unions these spec
#: lists and prefetches every selected ablation as one parallel batch.
SPECS = {
    "version_bits": version_bits_specs,
    "fifo_depth": fifo_depth_specs,
    "upgrade_case": upgrade_case_specs,
    "home_exclusion": home_exclusion_specs,
    "read_counter": read_counter_specs,
    "cache_side": cache_side_specs,
    "sc_tearoff": sc_tearoff_specs,
    "scaling": scaling_specs,
    "migratory": migratory_specs,
    "block_size": block_size_specs,
    "tardis_vs_dsi": tardis_vs_dsi_specs,
}

"""Ablations of the paper's design choices (DESIGN.md A1–A5).

These go beyond the paper's published data, probing the design space the
paper discusses qualitatively: version-number width, FIFO depth, the two
§4.1 special cases, and the read-counter width used for exclusive-block
identification.
"""

from repro.harness.configs import FAST_NET, LARGE_CACHE, paper_config
from repro.harness.experiment import ExperimentResult


def version_bits(runner, workload="sparse", widths=(1, 2, 3, 4, 6)):
    """A1: how small can the version number get before wrap-around aliasing
    erodes the benefit?  (The paper uses 4 bits.)"""
    base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
    headers = ["version_bits", "norm_time", "invalidations"]
    rows = []
    for bits in widths:
        config = paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, version_bits=bits)
        result = runner.run(workload, config)
        rows.append([bits, f"{result.normalized_to(base):.3f}", result.messages.invalidations()])
    return ExperimentResult(
        "ablation:version_bits",
        f"Version-number width sweep ({workload})",
        headers,
        rows,
    )


def fifo_depth(runner, workload="sparse", depths=(8, 16, 32, 64, 128, 256, 512)):
    """A2: FIFO depth sweep — where does the FIFO stop self-invalidating
    too early?  (The paper uses 64 entries.)"""
    base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
    headers = ["fifo_entries", "norm_time", "overflows"]
    rows = []
    for depth in depths:
        config = paper_config("V-FIFO", cache=LARGE_CACHE, n_procs=runner.n_procs, fifo_entries=depth)
        result = runner.run(workload, config)
        rows.append([depth, f"{result.normalized_to(base):.3f}", result.misses.fifo_overflows])
    return ExperimentResult(
        "ablation:fifo_depth",
        f"FIFO depth sweep ({workload})",
        headers,
        rows,
    )


def upgrade_case(runner, workloads=("em3d", "sparse", "tomcatv")):
    """A3: the §4.1 SC special case — don't mark exclusive blocks obtained
    by a sole sharer's upgrade.  The paper found disabling it degrades some
    programs under SC."""
    headers = ["workload", "with_case", "without_case"]
    rows = []
    for workload in workloads:
        base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
        on = runner.run(workload, paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs))
        off = runner.run(
            workload,
            paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, sc_upgrade_special_case=False),
        )
        rows.append([workload, f"{on.normalized_to(base):.3f}", f"{off.normalized_to(base):.3f}"])
    return ExperimentResult(
        "ablation:upgrade_case",
        "SC upgrade special case on/off (DSI-V)",
        headers,
        rows,
    )


def home_exclusion(runner, workloads=("em3d", "sparse")):
    """A4: the §4.1 rule that blocks are never self-invalidated from the
    home node's own cache."""
    headers = ["workload", "with_exclusion", "without_exclusion"]
    rows = []
    for workload in workloads:
        base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
        on = runner.run(workload, paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs))
        off = runner.run(
            workload, paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, home_exclusion=False)
        )
        rows.append([workload, f"{on.normalized_to(base):.3f}", f"{off.normalized_to(base):.3f}"])
    return ExperimentResult(
        "ablation:home_exclusion",
        "Home-node exclusion on/off (DSI-V)",
        headers,
        rows,
    )


def read_counter(runner, workload="sparse", widths=(1, 2, 3, 4)):
    """A5: width of the shared-copy shift counter used to identify
    exclusive blocks for self-invalidation (the paper uses 2 bits =
    'read by at least two processors')."""
    base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
    headers = ["read_counter_bits", "norm_time", "self_invalidations"]
    rows = []
    for bits in widths:
        config = paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, read_counter_bits=bits)
        result = runner.run(workload, config)
        rows.append([bits, f"{result.normalized_to(base):.3f}", result.misses.self_invalidations])
    return ExperimentResult(
        "ablation:read_counter",
        f"Exclusive-identification read-counter width ({workload})",
        headers,
        rows,
    )


def cache_side(runner, workloads=("em3d", "sparse", "ocean")):
    """A6 (extension): cache-side identification (§3.1) vs the paper's
    directory-side schemes.  The cache marks blocks from its own
    invalidation-count history — no directory support at all."""
    headers = ["workload", "states", "version", "cache_side"]
    rows = []
    for workload in workloads:
        base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
        states = runner.run(workload, paper_config("S", cache=LARGE_CACHE, n_procs=runner.n_procs))
        version = runner.run(workload, paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs))
        cache = runner.run(
            workload,
            paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs).with_(
                identify=_cache_scheme()
            ),
        )
        rows.append(
            [
                workload,
                f"{states.normalized_to(base):.3f}",
                f"{version.normalized_to(base):.3f}",
                f"{cache.normalized_to(base):.3f}",
            ]
        )
    return ExperimentResult(
        "ablation:cache_side",
        "Cache-side vs directory-side identification (normalized to SC)",
        headers,
        rows,
    )


def sc_tearoff(runner, workloads=("em3d", "sparse")):
    """A7 (extension): tear-off blocks under sequential consistency —
    at most one untracked copy per cache, dropped at the next miss."""
    headers = ["workload", "dsi_v", "dsi_v_tearoff", "msg_red_%"]
    rows = []
    for workload in workloads:
        base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
        version = runner.run(workload, paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs))
        tear = runner.run(
            workload,
            paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, sc_tearoff=True),
        )
        base_msgs = version.messages.total_network()
        tear_msgs = tear.messages.total_network()
        reduction = 100.0 * (base_msgs - tear_msgs) / max(base_msgs, 1)
        rows.append(
            [
                workload,
                f"{version.normalized_to(base):.3f}",
                f"{tear.normalized_to(base):.3f}",
                f"{reduction:.0f}",
            ]
        )
    return ExperimentResult(
        "ablation:sc_tearoff",
        "Tear-off blocks under SC (extension; messages vs plain DSI-V)",
        headers,
        rows,
    )


def scaling(runner, workload="sparse", proc_counts=(4, 8, 16, 32)):
    """A8: DSI benefit vs machine size.  More processors pile more readers
    behind each invalidation (sparse's convoy), so the benefit grows —
    the paper's scalability argument made quantitative.

    Machine size changes the workload, so this builds its own runners.
    """
    from repro.harness.experiment import ExperimentRunner

    headers = ["procs", "W", "V", "V_saving_%"]
    rows = []
    for n_procs in proc_counts:
        sub = ExperimentRunner(n_procs=n_procs, quick=runner.quick, verbose=runner.verbose)
        base = sub.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=n_procs))
        weak = sub.run(workload, paper_config("W", cache=LARGE_CACHE, n_procs=n_procs))
        version = sub.run(workload, paper_config("V", cache=LARGE_CACHE, n_procs=n_procs))
        rows.append(
            [
                n_procs,
                f"{weak.normalized_to(base):.3f}",
                f"{version.normalized_to(base):.3f}",
                f"{(1 - version.normalized_to(base)) * 100:.0f}",
            ]
        )
    return ExperimentResult(
        "ablation:scaling",
        f"DSI benefit vs machine size ({workload})",
        headers,
        rows,
    )


def block_size(runner, workload="ocean", sizes=(32, 64, 128)):
    """A9: cache-block size.  Bigger blocks mean more false sharing on the
    boundary rows and more invalidation traffic per conflict."""
    headers = ["block_bytes", "SC_exec", "invalidations", "V_norm"]
    rows = []
    for size in sizes:
        base_config = paper_config(
            "SC", cache=LARGE_CACHE, n_procs=runner.n_procs, block_size=size
        )
        base = runner.run(workload, base_config)
        version = runner.run(
            workload,
            paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, block_size=size),
        )
        rows.append(
            [
                size,
                base.exec_time,
                base.messages.invalidations(),
                f"{version.normalized_to(base):.3f}",
            ]
        )
    return ExperimentResult(
        "ablation:block_size",
        f"Cache-block size sweep ({workload})",
        headers,
        rows,
        notes="The workload assumes 32-byte blocks for its layout; larger "
        "blocks add false sharing on adjacent data.",
    )


def migratory_combo(runner, workloads=("barnes", "sparse")):
    """A10: the migratory-data optimization §2 cites as complementary —
    alone, and combined with DSI-V."""
    headers = ["workload", "dsi_v", "migratory", "combined", "upgr_base", "upgr_mig"]
    rows = []
    for workload in workloads:
        base = runner.run(workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs))
        version = runner.run(workload, paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs))
        mig = runner.run(
            workload, paper_config("SC", cache=LARGE_CACHE, n_procs=runner.n_procs, migratory=True)
        )
        combo = runner.run(
            workload,
            paper_config("V", cache=LARGE_CACHE, n_procs=runner.n_procs, migratory=True),
        )
        rows.append(
            [
                workload,
                f"{version.normalized_to(base):.3f}",
                f"{mig.normalized_to(base):.3f}",
                f"{combo.normalized_to(base):.3f}",
                base.misses.upgrades,
                mig.misses.upgrades,
            ]
        )
    return ExperimentResult(
        "ablation:migratory",
        "Migratory optimization vs DSI vs both (normalized to SC)",
        headers,
        rows,
    )


def _cache_scheme():
    from repro.config import IdentifyScheme

    return IdentifyScheme.CACHE


ALL = {
    "version_bits": version_bits,
    "fifo_depth": fifo_depth,
    "upgrade_case": upgrade_case,
    "home_exclusion": home_exclusion,
    "read_counter": read_counter,
    "cache_side": cache_side,
    "sc_tearoff": sc_tearoff,
    "scaling": scaling,
    "migratory": migratory_combo,
    "block_size": block_size,
}

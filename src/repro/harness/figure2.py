"""Figure 2: anatomy of coherence overhead.

The paper's Figure 2 illustrates why invalidations hurt: a write request
to a block with outstanding copies costs request + invalidation +
acknowledgment + response, and under SC the requester stalls for all of
it.  This experiment measures that anatomy directly on the simulator with
the ``write_conflict`` two-processor micro-program: P1 writes a block
currently shared (or held exclusive) by P2, with and without the
conflicting copy, and with DSI (which self-invalidates the copy before
the write arrives).
"""

from repro.config import IdentifyScheme, SystemConfig
from repro.harness.experiment import ExperimentResult, ExperimentRunner

EXPERIMENT_ID = "figure2"

#: The micro-program always runs on three nodes (writer, reader, home).
N_PROCS = 3

WORKLOAD = "write_conflict"


def _spec(runner, config, conflict, rounds):
    return runner.spec(WORKLOAD, config, n_procs=N_PROCS, conflict=conflict, rounds=rounds)


def specs(runner):
    """Plan: every (config, conflict, rounds) point the table needs."""
    base = SystemConfig(n_processors=N_PROCS)
    dsi = base.with_(identify=IdentifyScheme.VERSION)
    out = [_spec(runner, base, conflict=False, rounds=1)]
    for config in (base, dsi):
        for rounds in (1, 2):
            out.append(_spec(runner, config, conflict=True, rounds=rounds))
    return out


def _write_stall(runner, config, conflict, rounds=1):
    record = runner.run_spec(_spec(runner, config, conflict, rounds))
    breakdown = record.breakdowns[0]
    return breakdown.write_inval + breakdown.write_other


def _steady_state_stall(runner, config, conflict):
    """Stall of the *second* conflict round — after DSI's sharing history
    has warmed up (the first round necessarily gets an unmarked block)."""
    return _write_stall(runner, config, conflict, rounds=2) - _write_stall(
        runner, config, conflict, rounds=1
    )


def run(runner=None):
    if runner is None:
        runner = ExperimentRunner(n_procs=N_PROCS)
    runner.prefetch(specs(runner))
    base = SystemConfig(n_processors=N_PROCS)
    dsi = base.with_(identify=IdentifyScheme.VERSION)
    # Idle reference: a cold write to an uncached block (directory Idle) —
    # request + response only.  The conflicting scenarios use the marginal
    # cost of the second round, after DSI's sharing history has warmed up.
    idle = _write_stall(runner, base, conflict=False, rounds=1)
    shared = _steady_state_stall(runner, base, conflict=True)
    dsi_stall = _steady_state_stall(runner, dsi, conflict=True)
    headers = ["scenario", "write_stall_cycles", "vs_idle"]
    rows = [
        ["write, no outstanding copy (Idle)", idle, "1.00x"],
        ["write, outstanding shared copy", shared, f"{shared / idle:.2f}x"],
        ["write, copy self-invalidated (DSI)", dsi_stall, f"{dsi_stall / idle:.2f}x"],
    ]
    return ExperimentResult(
        EXPERIMENT_ID,
        "Coherence overhead anatomy: cost of one conflicting write",
        headers,
        rows,
        notes=(
            "The 'outstanding copy' write pays request + INV + ACK + response; "
            "DSI returns it to the Idle cost (modulo the first, unmarked round)."
        ),
    )

"""Figure 2: anatomy of coherence overhead.

The paper's Figure 2 illustrates why invalidations hurt: a write request
to a block with outstanding copies costs request + invalidation +
acknowledgment + response, and under SC the requester stalls for all of
it.  This experiment measures that anatomy directly on the simulator with
a two-processor micro-program: P1 writes a block currently shared (or
held exclusive) by P2, with and without the conflicting copy, and with
DSI (which self-invalidates the copy before the write arrives).
"""

from repro.config import IdentifyScheme, SystemConfig
from repro.harness.experiment import ExperimentResult
from repro.system import Machine
from repro.workloads.base import WorkloadContext

EXPERIMENT_ID = "figure2"


def _program(conflict, rounds):
    """``rounds`` rounds of: P2 reads the block (optional), barrier, P1
    writes it, barrier.  The block is homed on node 2 so both request
    paths traverse the network."""
    ctx = WorkloadContext("figure2", 3, seed=7)
    addr = ctx.alloc_words(2, 8)
    ctx.barrier_all()
    for _round in range(rounds):
        if conflict:
            ctx.builders[1].read(addr)
        ctx.barrier_all()
        ctx.builders[0].compute(10).write(addr)
        ctx.barrier_all()
    return ctx.program()


def _write_stall(config, conflict, rounds=1):
    program = _program(conflict, rounds)
    result = Machine(config, program).run()
    breakdown = result.breakdowns[0]
    return breakdown.write_inval + breakdown.write_other


def _steady_state_stall(config, conflict):
    """Stall of the *second* conflict round — after DSI's sharing history
    has warmed up (the first round necessarily gets an unmarked block)."""
    return _write_stall(config, conflict, rounds=2) - _write_stall(config, conflict, rounds=1)


def run(runner=None):
    base = SystemConfig(n_processors=3)
    dsi = base.with_(identify=IdentifyScheme.VERSION)
    # Idle reference: a cold write to an uncached block (directory Idle) —
    # request + response only.  The conflicting scenarios use the marginal
    # cost of the second round, after DSI's sharing history has warmed up.
    idle = _write_stall(base, conflict=False, rounds=1)
    shared = _steady_state_stall(base, conflict=True)
    dsi_stall = _steady_state_stall(dsi, conflict=True)
    headers = ["scenario", "write_stall_cycles", "vs_idle"]
    rows = [
        ["write, no outstanding copy (Idle)", idle, "1.00x"],
        ["write, outstanding shared copy", shared, f"{shared / idle:.2f}x"],
        ["write, copy self-invalidated (DSI)", dsi_stall, f"{dsi_stall / idle:.2f}x"],
    ]
    return ExperimentResult(
        EXPERIMENT_ID,
        "Coherence overhead anatomy: cost of one conflicting write",
        headers,
        rows,
        notes=(
            "The 'outstanding copy' write pays request + INV + ACK + response; "
            "DSI returns it to the Idle cost (modulo the first, unmarked round)."
        ),
    )

"""The harness observatory: a schema-versioned event stream for sweeps.

The simulated machine has been deeply observable since the probe bus
(PR 2), but the harness *running* it was a black box: a
:class:`~repro.harness.runpool.RunPool` sweep was hundreds of worker
runs visible only as optional stderr lines.  This module is the
telemetry substrate underneath every harness verb:

Event stream
    One JSON object per harness happening — ``sweep_begin``/``sweep_end``
    bracketing each batch, ``run_queued``/``run_started``/``run_cached``/
    ``run_finished``/``run_failed`` per spec, and periodic ``heartbeat``
    events carrying live simulation counters sampled inside the worker
    (see :class:`HeartbeatSampler`).  Every event carries
    ``schema == TELEMETRY_SCHEMA_VERSION`` and is validated on emission.

Sinks
    :class:`JsonlSink` (``--log FILE`` / ``DSI_LOG``) appends one line
    per event, flushed immediately so a crashed sweep still leaves a
    readable log; :class:`VerboseSink` renders the classic ``--verbose``
    lines from the same events (one code path, single parent-side
    writer, so process-pool output never interleaves);
    :class:`LiveDashboard` (``--live``) repaints an in-place terminal
    view with per-worker lanes, aggregate simulation speed, cache hit
    ratio, an ETA and straggler flags.

Transport
    Workers ship events over a ``multiprocessing.Queue``; the parent's
    :class:`TelemetryHub` pumps the queue from a background thread,
    stamps a total-order ``seq`` and the active sweep id, and fans out
    to the sinks.  Telemetry never influences results: the sampler only
    *reads* machine counters, profiling wraps the worker in ``cProfile``
    without touching the simulation, and none of it enters the result
    cache's code fingerprint (``tests/test_telemetry.py`` and
    ``repro.harness.equivalence --telemetry`` prove both).

Post-hoc analysis
    :func:`load_log` + :func:`sweep_report` power ``dsi-sim report``:
    worker utilization, queue-wait vs execute time, cache-hit breakdown,
    top-K stragglers, and a Perfetto export of the harness spans
    (:func:`sweep_to_perfetto`) so a sweep renders as worker lanes.
    :func:`reconcile` cross-checks a log against
    :meth:`~repro.harness.runpool.RunPool.manifest` — every spec exactly
    once, zero lost events.

Host profiling
    ``--profile cprofile`` wraps each worker run and writes a per-run
    ``pstats`` sidecar keyed by the RunSpec content hash
    (:func:`profile_sidecar`); :func:`profile_table` merges any number
    of sidecars into one top-N hot-function table for ``dsi-sim
    report`` and ``dsi-sim bench``.
"""

import cProfile
import json
import multiprocessing
import os
import pstats
import sys
import threading
import time
import uuid

from repro.errors import ConfigError, ReproError
from repro.stats.ascii_chart import progress_bar
from repro.stats.report import format_table

#: Version of the harness event-stream layout.  Bump on any field
#: rename/removal; adding optional fields is compatible.
TELEMETRY_SCHEMA_VERSION = 1

#: Fields every event carries (``seq`` and ``sweep`` are stamped by the
#: hub, so pre-hub events legitimately lack them).
COMMON_FIELDS = ("schema", "type", "ts")

#: Required type-specific fields, per event type.  This *is* the schema:
#: :func:`validate_event` checks membership and presence against it.
EVENT_FIELDS = {
    "sweep_begin": ("sweep", "specs", "pending", "jobs", "fingerprint"),
    "run_queued": ("sweep", "spec_key", "workload", "label"),
    "run_cached": (
        "sweep", "spec_key", "workload", "label", "cache_kb", "net",
        "exec_time", "wall_time_s",
    ),
    "run_started": ("sweep", "spec_key", "workload", "label", "worker"),
    "heartbeat": (
        "sweep", "spec_key", "worker", "sim_cycles", "events_fired",
        "ops_retired", "ops_total",
    ),
    "run_finished": (
        "sweep", "spec_key", "workload", "label", "cache_kb", "net",
        "exec_time", "wall_time_s", "sim_cycles_per_s", "profile",
    ),
    "run_failed": ("sweep", "spec_key", "workload", "label", "error", "traceback"),
    "sweep_end": ("sweep", "executed", "cache_hits", "failed", "wall_s"),
}

#: Event types that terminate a spec's life in a sweep (reconciliation
#: demands exactly one of these per spec per sweep).
TERMINAL_TYPES = ("run_cached", "run_finished", "run_failed")

#: Sentinel shipped through the worker queue to stop the pump thread.
_STOP = "__dsi_telemetry_stop__"


class TelemetryError(ReproError):
    """A harness telemetry event or log failed schema validation."""


def make_event(type_, **fields):
    """A new event of ``type_``, stamped with schema version and wall
    clock.  Field *presence* is checked at emission/validation time, so
    builders can stay minimal (the hub adds ``sweep`` and ``seq``)."""
    if type_ not in EVENT_FIELDS:
        raise TelemetryError(f"unknown telemetry event type {type_!r}")
    event = {"schema": TELEMETRY_SCHEMA_VERSION, "type": type_, "ts": time.time()}
    event.update(fields)
    return event


def validate_event(event):
    """Raise :class:`TelemetryError` unless ``event`` is schema-valid;
    returns the event for chaining."""
    if not isinstance(event, dict):
        raise TelemetryError(f"telemetry event is not an object: {event!r}")
    type_ = event.get("type")
    if type_ not in EVENT_FIELDS:
        raise TelemetryError(f"unknown telemetry event type {type_!r}")
    if event.get("schema") != TELEMETRY_SCHEMA_VERSION:
        raise TelemetryError(
            f"telemetry schema {event.get('schema')!r} != {TELEMETRY_SCHEMA_VERSION}"
            f" on {type_} event"
        )
    missing = [
        field
        for field in COMMON_FIELDS + EVENT_FIELDS[type_]
        if field not in event
    ]
    if missing:
        raise TelemetryError(f"{type_} event missing {missing}")
    if not isinstance(event["ts"], (int, float)):
        raise TelemetryError(f"{type_} event ts is not a number: {event['ts']!r}")
    if "seq" in event and (not isinstance(event["seq"], int) or event["seq"] < 0):
        raise TelemetryError(f"{type_} event seq invalid: {event['seq']!r}")
    if type_ == "heartbeat":
        for field in ("sim_cycles", "events_fired", "ops_retired", "ops_total"):
            value = event[field]
            if not isinstance(value, int) or value < 0:
                raise TelemetryError(f"heartbeat {field} invalid: {value!r}")
    return event


def load_log(path):
    """Read one JSONL telemetry log, validating every line; returns the
    event list in file order."""
    events, problems = load_log_lenient(path)
    if problems:
        raise TelemetryError(problems[0])
    return events


def load_log_lenient(path):
    """Read a JSONL telemetry log, keeping every valid line.

    Returns ``(events, problems)``: schema-valid events in file order,
    plus one human-readable string per malformed or invalid line.  A log
    from a crashed or still-running sweep legitimately ends mid-line, so
    consumers (``dsi-sim report``) analyze the valid prefix and surface
    the damage instead of refusing the whole file."""
    events = []
    problems = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    problems.append(f"{path}:{lineno}: not JSON: {exc}")
                    continue
                try:
                    events.append(validate_event(event))
                except TelemetryError as exc:
                    problems.append(f"{path}:{lineno}: {exc}")
    except OSError as exc:
        raise ConfigError(f"cannot read telemetry log {path}: {exc}") from exc
    return events, problems


def profile_sidecar(profile_dir, spec_key):
    """The per-run pstats path for a spec: content-addressed by the
    RunSpec hash, so re-profiled runs of the same spec overwrite in
    place and the parent can name a worker's sidecar without a
    round-trip."""
    return os.path.join(profile_dir, spec_key[:32] + ".pstats")


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
class TelemetryConfig:
    """Harness telemetry settings carried by a RunPool.

    ``log_path``/``live``/``profile`` each independently activate the
    hub; ``heartbeat_interval`` (host seconds) throttles the worker
    sampler (``None``/``0`` disables heartbeats).  None of these fields
    may influence simulation results — the result cache's code
    fingerprint deliberately ignores them, and the equivalence harness
    proves records identical with and without telemetry.
    """

    def __init__(self, log_path=None, live=False, profile=None, profile_dir=None,
                 heartbeat_interval=0.5, stream=None):
        if profile not in (None, "cprofile"):
            raise ConfigError(f"unknown profiler {profile!r}; have: cprofile")
        self.log_path = log_path
        self.live = live
        self.profile = profile
        self.profile_dir = profile_dir or (
            (log_path + ".profiles") if (profile and log_path) else
            ("dsi-profiles" if profile else None)
        )
        self.heartbeat_interval = heartbeat_interval
        self.stream = stream

    @property
    def active(self):
        return bool(self.log_path or self.live or self.profile)

    @classmethod
    def resolve(cls, explicit=None):
        """The effective config: ``explicit`` wins; otherwise the
        ``DSI_LOG`` / ``DSI_PROFILE`` environment variables are
        consulted.  Returns ``None`` when telemetry is fully off."""
        if explicit is not None:
            return explicit if explicit.active else None
        log_path = os.environ.get("DSI_LOG")
        profile = os.environ.get("DSI_PROFILE") or None
        if not log_path and not profile:
            return None
        return cls(log_path=log_path or None, profile=profile)


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------
class TelemetrySink:
    """Consumes validated events; ``close`` flushes/releases resources."""

    def handle(self, event):
        raise NotImplementedError

    def close(self):
        pass


class JsonlSink(TelemetrySink):
    """One JSON line per event, flushed eagerly: a killed sweep still
    leaves every emitted event on disk, and because only the parent
    process writes, pool workers can never interleave lines."""

    def __init__(self, path):
        self.path = path
        self._handle = open(path, "w", encoding="utf-8")

    def handle(self, event):
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self):
        if not self._handle.closed:
            self._handle.close()


class BufferSink(TelemetrySink):
    """Keeps events in memory (the sweep service's status/replay store).

    Bounded: past ``max_events`` the oldest retained events are *not*
    evicted — new ones are counted in ``dropped`` instead, so a replay is
    always a prefix of the true stream and the truncation is visible."""

    def __init__(self, max_events=100_000):
        self.max_events = max_events
        self.events = []
        self.dropped = 0

    def handle(self, event):
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)


class VerboseSink(TelemetrySink):
    """The classic ``--verbose`` stderr lines, re-derived from the event
    stream (the satellite fix for the raw ``print`` that used to live in
    ``RunPool._log``)."""

    def __init__(self, stream=None):
        self.stream = stream
        self._runs = 0

    def _out(self):
        return self.stream if self.stream is not None else sys.stderr

    def handle(self, event):
        type_ = event["type"]
        if type_ == "run_failed":
            print(
                f"[FAIL] {event['workload']:10s} {event['label']:12s} "
                f"{event['error']}",
                file=self._out(), flush=True,
            )
            return
        if type_ not in ("run_finished", "run_cached"):
            return
        if type_ == "run_finished":
            self._runs += 1
            tag = f"run {self._runs}"
        else:
            tag = "hit"
        wall = event["wall_time_s"] or 0.0
        print(
            f"[{tag}] {event['workload']:10s} {event['label']:12s} "
            f"cache={event['cache_kb']}KB net={event['net']} "
            f"exec={event['exec_time']} ({wall:.1f}s)",
            file=self._out(), flush=True,
        )


class LiveDashboard(TelemetrySink):
    """In-place terminal dashboard for a running sweep (``--live``).

    One lane per worker process (current run, live sim-cycle counter and
    per-worker simulation speed from consecutive heartbeats), aggregate
    progress, cache-hit ratio, an ETA extrapolated from completed wall
    times, and straggler flagging (a run exceeding
    ``straggler_factor`` x the mean completed wall time).  On a TTY the
    frame repaints in place via ANSI cursor movement; otherwise a plain
    progress line is printed at most every ``interval`` seconds.
    """

    def __init__(self, stream=None, interval=0.25, straggler_factor=2.5,
                 clock=time.monotonic, width=68):
        self.stream = stream
        self.interval = interval
        self.straggler_factor = straggler_factor
        self.clock = clock
        self.width = width
        self._painted_lines = 0
        self._last_paint = 0.0
        # sweep state
        self.total = 0
        self.finished = 0
        self.cached = 0
        self.failed = 0
        self.wall_times = []
        self.running = {}  # spec_key -> {workload,label,ts,worker}
        self.workers = {}  # pid -> {"hb": last heartbeat, "rate": cycles/s}
        self.jobs = 1
        self._t0 = None

    def _out(self):
        return self.stream if self.stream is not None else sys.stderr

    # -- state ----------------------------------------------------------
    def handle(self, event):
        type_ = event["type"]
        if type_ == "sweep_begin":
            self.total += event["specs"]
            self.jobs = max(self.jobs, event["jobs"])
            if self._t0 is None:
                self._t0 = event["ts"]
        elif type_ == "run_started":
            self.running[event["spec_key"]] = event
            self.workers.setdefault(event["worker"], {"hb": None, "rate": None})
        elif type_ == "heartbeat":
            state = self.workers.setdefault(event["worker"], {"hb": None, "rate": None})
            last = state["hb"]
            if (
                last is not None
                and last["spec_key"] == event["spec_key"]
                and event["ts"] > last["ts"]
            ):
                state["rate"] = (
                    (event["sim_cycles"] - last["sim_cycles"])
                    / (event["ts"] - last["ts"])
                )
            state["hb"] = event
        elif type_ == "run_cached":
            self.cached += 1
        elif type_ == "run_finished":
            self.finished += 1
            started = self.running.pop(event["spec_key"], None)
            if started is not None:
                worker = self.workers.get(started["worker"])
                if worker is not None and worker["hb"] is not None \
                        and worker["hb"]["spec_key"] == event["spec_key"]:
                    worker["rate"] = None
            if event["wall_time_s"]:
                self.wall_times.append(event["wall_time_s"])
        elif type_ == "run_failed":
            self.failed += 1
            self.running.pop(event["spec_key"], None)
        self.repaint(final=(type_ == "sweep_end"), now=event["ts"])

    # -- rendering ------------------------------------------------------
    def _mean_wall(self):
        return sum(self.wall_times) / len(self.wall_times) if self.wall_times else None

    def eta_seconds(self, now):
        """Remaining runs x mean completed wall time / worker lanes."""
        mean = self._mean_wall()
        done = self.finished + self.cached + self.failed
        remaining = max(self.total - done, 0)
        if mean is None or not remaining:
            return None
        return remaining * mean / max(min(self.jobs, remaining), 1)

    def is_straggler(self, started_ts, now):
        mean = self._mean_wall()
        if mean is None or len(self.wall_times) < 3:
            return False
        return (now - started_ts) > self.straggler_factor * mean

    def render(self, now=None):
        """The current frame as text (pure; exercised directly by tests)."""
        now = self.clock() if now is None else now
        done = self.finished + self.cached + self.failed
        served = self.finished + self.cached
        hit = f"{self.cached / served:.0%}" if served else "-"
        eta = self.eta_seconds(now)
        eta_text = f"ETA {eta:.0f}s" if eta is not None else "ETA -"
        fraction = done / self.total if self.total else 0.0
        lines = [
            f"sweep {progress_bar(fraction, width=24)} {done}/{self.total} "
            f"done  {len(self.running)} running  {self.cached} cached "
            f"(hit {hit})  {self.failed} failed  {eta_text}"
        ]
        agg = sum(w["rate"] for w in self.workers.values() if w["rate"])
        by_worker = {}
        for spec_key, started in self.running.items():
            by_worker[started["worker"]] = (spec_key, started)
        for pid in sorted(self.workers):
            state = self.workers[pid]
            spec_key, started = by_worker.get(pid, (None, None))
            hb = state["hb"]
            if started is None and (hb is None or hb["spec_key"] not in self.running):
                label, bar, cyc, elapsed, flag = "idle", progress_bar(0.0, 10), "-", "", ""
            else:
                if started is None:
                    started = self.running.get(hb["spec_key"], hb)
                label = (
                    f"{started.get('workload', '?')}/{started.get('label', '?')}"
                    if "workload" in started else hb["spec_key"][:12]
                )
                ops_fraction = 0.0
                cyc = "-"
                if hb is not None and hb["spec_key"] == spec_key:
                    if hb["ops_total"]:
                        ops_fraction = hb["ops_retired"] / hb["ops_total"]
                    cyc = _kilo(hb["sim_cycles"])
                bar = progress_bar(ops_fraction, 10)
                elapsed = f"{now - started['ts']:5.1f}s" if "ts" in started else ""
                flag = (
                    "  !straggler"
                    if "ts" in started and self.is_straggler(started["ts"], now)
                    else ""
                )
            rate = f"{_kilo(state['rate'])} cyc/s" if state["rate"] else ""
            lines.append(
                f"  w{pid:<8} {label:<28.28s} {bar} {cyc:>8} {rate:>12} "
                f"{elapsed}{flag}"
            )
        mean = self._mean_wall()
        tail = f"aggregate {_kilo(agg)} cyc/s" if agg else "aggregate -"
        if mean is not None:
            tail += f", mean run {mean:.1f}s"
        lines.append(f"  {tail}")
        return "\n".join(lines)

    def repaint(self, final=False, now=None):
        out = self._out()
        tty = getattr(out, "isatty", lambda: False)()
        host_now = self.clock()
        if not final and host_now - self._last_paint < self.interval:
            return
        self._last_paint = host_now
        if tty:
            frame = self.render(now=now)
            if self._painted_lines:
                out.write(f"\x1b[{self._painted_lines}F\x1b[J")
            out.write(frame + "\n")
            self._painted_lines = frame.count("\n") + 1
        else:
            done = self.finished + self.cached + self.failed
            out.write(
                f"# sweep {done}/{self.total} done, {self.cached} cached, "
                f"{self.failed} failed\n"
            )
        out.flush()
        if final:
            self._painted_lines = 0

    def close(self):
        if self._painted_lines:
            self.repaint(final=True)


def _kilo(value):
    if value is None:
        return "-"
    if value >= 1_000_000:
        return f"{value / 1_000_000:.1f}M"
    if value >= 1_000:
        return f"{value / 1_000:.0f}k"
    return f"{value:.0f}" if isinstance(value, float) else str(value)


# ----------------------------------------------------------------------
# Hub: parent-side fan-out with worker-queue pump
# ----------------------------------------------------------------------
class TelemetryHub:
    """Serializes all telemetry through one writer.

    ``emit`` validates, stamps the total-order ``seq`` and the active
    sweep id, and fans out to every sink under a lock — the parent
    thread, the queue pump and (in serial mode) the in-process worker
    all funnel through here, which is what makes the JSONL log and the
    verbose stream flush-safe under process-pool interleaving.
    """

    def __init__(self, sinks=()):
        self.sinks = list(sinks)
        self.errors = []
        self._seq = 0
        self._sweep = None
        self._lock = threading.Lock()
        self._queue = None
        self._pump = None
        self._closed = False

    # -- sweep bracketing ---------------------------------------------
    def begin_sweep(self, sweep_id):
        self._sweep = sweep_id

    def end_sweep(self):
        self._sweep = None

    # -- emission ------------------------------------------------------
    def emit(self, event):
        with self._lock:
            event = dict(event)
            if self._sweep is not None:
                event.setdefault("sweep", self._sweep)
            event["seq"] = self._seq
            self._seq += 1
            validate_event(event)
            for sink in self.sinks:
                try:
                    sink.handle(event)
                except Exception as exc:  # a sink must never kill the sweep
                    self.errors.append(exc)

    # -- dynamic sinks (streaming subscribers) -------------------------
    def add_sink(self, sink, replay=None):
        """Attach a sink mid-stream; returns the replay list.

        ``replay`` is a callable (e.g. a :class:`BufferSink`'s event
        list) evaluated under the emission lock, so the snapshot and the
        attachment are atomic: a subscriber sees every event exactly
        once — the replayed prefix, then live fan-out."""
        with self._lock:
            events = list(replay()) if replay is not None else []
            self.sinks.append(sink)
        return events

    def remove_sink(self, sink):
        """Detach a sink (idempotent); returns True when it was attached.
        A disconnected streaming subscriber must land here, or the hub
        would keep fanning out to a dead queue forever."""
        with self._lock:
            try:
                self.sinks.remove(sink)
            except ValueError:
                return False
        return True

    # -- worker transport ----------------------------------------------
    def worker_queue(self):
        """The ``multiprocessing.Queue`` workers emit into; starts the
        pump thread on first use (and again after a ``stop_pump``)."""
        if self._queue is None:
            self._queue = multiprocessing.Queue()
        if self._pump is None:
            self._pump = threading.Thread(
                target=self._pump_loop, name="telemetry-pump", daemon=True
            )
            self._pump.start()
        return self._queue

    def _pump_loop(self):
        while True:
            item = self._queue.get()
            if item == _STOP:
                return
            try:
                self.emit(item)
            except Exception as exc:
                self.errors.append(exc)

    def stop_pump(self):
        """Drain the worker queue to the last enqueued event and park the
        pump.  Called after the process pool has shut down, so every
        worker byte is already in the pipe and FIFO order guarantees the
        sentinel is read last."""
        if self._pump is not None:
            self._queue.put(_STOP)
            self._pump.join(timeout=60)
            if self._pump.is_alive():  # pragma: no cover - defensive
                self.errors.append(TelemetryError("telemetry pump failed to stop"))
            self._pump = None

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.stop_pump()
        for sink in self.sinks:
            try:
                sink.close()
            except Exception as exc:  # pragma: no cover - defensive
                self.errors.append(exc)


def new_sweep_id():
    return uuid.uuid4().hex[:12]


# ----------------------------------------------------------------------
# Worker side: heartbeat sampling and profiling
# ----------------------------------------------------------------------
class HeartbeatSampler:
    """Samples live machine counters from a side thread while a spec runs.

    :meth:`attach` is the zero-overhead-when-disabled hook invoked by
    :meth:`repro.harness.runspec.RunSpec.execute` (guarded by
    ``observer is not None``, mirroring the probe bus's ``self.obs is
    not None`` idiom).  The sampler thread only *reads* the machine —
    ``Machine.progress()`` returns plain counter values — so the
    simulation's event stream, timing and results are untouched; a run
    shorter than one interval simply emits no heartbeats.
    """

    def __init__(self, emit, spec_key, worker=None, interval=0.5):
        self.emit = emit
        self.spec_key = spec_key
        self.worker = worker if worker is not None else os.getpid()
        self.interval = interval
        self.heartbeats = 0
        self._machine = None
        self._stop = threading.Event()
        self._thread = None

    # -- RunSpec.execute observer protocol ------------------------------
    def attach(self, machine):
        self._machine = machine
        if self.interval and self.interval > 0:
            self._thread = threading.Thread(
                target=self._loop, name="dsi-heartbeat", daemon=True
            )
            self._thread.start()

    def detach(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._machine = None

    # -- sampling -------------------------------------------------------
    def sample(self):
        """Emit one heartbeat from the current machine counters (called
        from the sampler thread; also directly by tests)."""
        machine = self._machine
        if machine is None:
            return None
        progress = machine.progress()
        event = make_event(
            "heartbeat",
            spec_key=self.spec_key,
            worker=self.worker,
            **progress,
        )
        self.emit(event)
        self.heartbeats += 1
        return event

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:  # pragma: no cover - a dying machine mid-read
                return


class WorkerTelemetry:
    """Per-process worker half of the observatory.

    Installed in every pool worker by the ``RunPool`` initializer (and
    parent-side for serial runs): emits ``run_started``, attaches a
    :class:`HeartbeatSampler`, and optionally wraps the run in
    ``cProfile``, dumping a pstats sidecar keyed by the spec hash.
    """

    def __init__(self, emit, heartbeat_interval=0.5, profile=None, profile_dir=None):
        self.emit = emit
        self.heartbeat_interval = heartbeat_interval
        self.profile = profile
        self.profile_dir = profile_dir

    def start_run(self, spec):
        self.emit(
            make_event(
                "run_started",
                spec_key=spec.key(),
                workload=spec.workload,
                label=spec.config.describe(),
                worker=os.getpid(),
            )
        )
        sampler = None
        if self.heartbeat_interval:
            sampler = HeartbeatSampler(
                self.emit, spec.key(), interval=self.heartbeat_interval
            )
        profiler = None
        if self.profile == "cprofile":
            profiler = cProfile.Profile()
            profiler.enable()
        return sampler, profiler

    def end_run(self, spec, sampler, profiler):
        """Stop instruments and write the profile sidecar; returns the
        sidecar path (``None`` when not profiling)."""
        if profiler is not None:
            profiler.disable()
        if sampler is not None:
            sampler.detach()
        if profiler is None:
            return None
        os.makedirs(self.profile_dir, exist_ok=True)
        path = profile_sidecar(self.profile_dir, spec.key())
        profiler.dump_stats(path)
        return path


# ----------------------------------------------------------------------
# Post-hoc: reconciliation, sweep report, Perfetto export, profiles
# ----------------------------------------------------------------------
def reconcile(events, manifest):
    """Cross-check a telemetry log against ``RunPool.manifest()``.

    Returns a list of problem strings; empty means the log and the
    manifest agree exactly: every manifest run appears in the log once
    with the same disposition (cached vs finished), no terminal event
    lacks a manifest row, and no heartbeat or start belongs to a spec
    that never terminated (zero lost events)."""
    problems = []
    log_terminal = {}
    started = set()
    sampled = set()
    for event in events:
        type_ = event["type"]
        if type_ in TERMINAL_TYPES:
            key = event["spec_key"][:16]
            log_terminal.setdefault(key, []).append(type_)
        elif type_ == "run_started":
            started.add(event["spec_key"][:16])
        elif type_ == "heartbeat":
            sampled.add(event["spec_key"][:16])
    manifest_by_key = {}
    for entry in manifest["runs"]:
        manifest_by_key.setdefault(entry["key"], []).append(
            "run_cached" if entry["cached"] else "run_finished"
        )
    for key, dispositions in sorted(manifest_by_key.items()):
        # Failures never reach the manifest (no record was served), so
        # they only terminate the spec — they don't have to match a row.
        logged = sorted(t for t in log_terminal.get(key, []) if t != "run_failed")
        if sorted(dispositions) != logged:
            problems.append(
                f"spec {key}: manifest says {sorted(dispositions)}, log says {logged}"
            )
    for key in sorted(set(log_terminal) - set(manifest_by_key)):
        served = [t for t in log_terminal[key] if t != "run_failed"]
        if served:
            problems.append(f"spec {key}: in log ({served}) but not in manifest")
    terminated = set(log_terminal)
    for key in sorted(started - terminated):
        problems.append(f"spec {key}: run_started but never terminated")
    for key in sorted(sampled - terminated):
        problems.append(f"spec {key}: heartbeats but never terminated")
    return problems


def sweep_report(events):
    """Post-hoc analysis of one telemetry log (``dsi-sim report``).

    Aggregates every sweep in the log: totals, cache-hit breakdown,
    queue-wait vs execute time per run, per-worker utilization and
    heartbeat statistics, and the top stragglers by wall time."""
    sweeps = {}
    runs = {}
    heartbeats = 0
    workers = {}
    for event in events:
        type_ = event["type"]
        sweep = event.get("sweep")
        if type_ == "sweep_begin":
            sweeps[sweep] = {
                "sweep": sweep,
                "begin_ts": event["ts"],
                "end_ts": None,
                "specs": event["specs"],
                "jobs": event["jobs"],
                "fingerprint": event["fingerprint"],
                "executed": 0,
                "cache_hits": 0,
                "failed": 0,
                "wall_s": None,
            }
        elif type_ == "sweep_end":
            entry = sweeps.setdefault(sweep, {"sweep": sweep, "begin_ts": None})
            entry.update(
                end_ts=event["ts"],
                executed=event["executed"],
                cache_hits=event["cache_hits"],
                failed=event["failed"],
                wall_s=event["wall_s"],
            )
        elif type_ in ("run_queued", "run_started", "run_cached",
                       "run_finished", "run_failed"):
            run = runs.setdefault(
                (sweep, event["spec_key"]),
                {
                    "sweep": sweep,
                    "spec_key": event["spec_key"],
                    "workload": event.get("workload"),
                    "label": event.get("label"),
                    "queued_ts": None,
                    "started_ts": None,
                    "end_ts": None,
                    "status": None,
                    "worker": None,
                    "wall_time_s": None,
                    "exec_time": None,
                    "sim_cycles_per_s": None,
                    "profile": None,
                    "heartbeats": 0,
                },
            )
            if event.get("workload"):
                run["workload"] = event["workload"]
                run["label"] = event.get("label", run["label"])
            if type_ == "run_queued":
                run["queued_ts"] = event["ts"]
            elif type_ == "run_started":
                run["started_ts"] = event["ts"]
                run["worker"] = event["worker"]
            else:
                run["end_ts"] = event["ts"]
                run["status"] = type_[len("run_"):]
                run["wall_time_s"] = event.get("wall_time_s")
                run["exec_time"] = event.get("exec_time")
                run["sim_cycles_per_s"] = event.get("sim_cycles_per_s")
                run["profile"] = event.get("profile")
        elif type_ == "heartbeat":
            heartbeats += 1
            run = runs.get((sweep, event["spec_key"]))
            if run is not None:
                run["heartbeats"] += 1
            state = workers.setdefault(
                event["worker"],
                {"worker": event["worker"], "runs": 0, "busy_s": 0.0,
                 "heartbeats": 0, "sim_cycles": 0},
            )
            state["heartbeats"] += 1
            state["sim_cycles"] = max(state["sim_cycles"], event["sim_cycles"])
    run_list = []
    for run in runs.values():
        if run["queued_ts"] is not None and run["started_ts"] is not None:
            run["queue_wait_s"] = run["started_ts"] - run["queued_ts"]
        else:
            run["queue_wait_s"] = None
        if run["started_ts"] is not None and run["end_ts"] is not None:
            run["execute_s"] = run["end_ts"] - run["started_ts"]
        else:
            run["execute_s"] = None
        if run["worker"] is not None:
            state = workers.setdefault(
                run["worker"],
                {"worker": run["worker"], "runs": 0, "busy_s": 0.0,
                 "heartbeats": 0, "sim_cycles": 0},
            )
            state["runs"] += 1
            if run["wall_time_s"]:
                state["busy_s"] += run["wall_time_s"]
        run_list.append(run)
    run_list.sort(key=lambda r: (r["sweep"] or "", r["queued_ts"] or r["end_ts"] or 0))
    statuses = {}
    for run in run_list:
        statuses[run["status"]] = statuses.get(run["status"], 0) + 1
    wall = sum(s["wall_s"] or 0 for s in sweeps.values())
    served = statuses.get("finished", 0) + statuses.get("cached", 0)
    lanes = max((s.get("jobs") or 1) for s in sweeps.values()) if sweeps else 1
    for state in workers.values():
        state["utilization"] = (state["busy_s"] / wall) if wall else None
    executed = [r for r in run_list if r["status"] == "finished" and r["wall_time_s"]]
    stragglers = sorted(executed, key=lambda r: -r["wall_time_s"])
    waits = [r["queue_wait_s"] for r in run_list if r["queue_wait_s"] is not None]
    return {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "sweeps": [sweeps[k] for k in sweeps],
        "totals": {
            "events": len(events),
            "runs": len(run_list),
            "executed": statuses.get("finished", 0),
            "cached": statuses.get("cached", 0),
            "failed": statuses.get("failed", 0),
            "unterminated": statuses.get(None, 0),
            "cache_hit_ratio": (statuses.get("cached", 0) / served) if served else None,
            "heartbeats": heartbeats,
            "wall_s": wall,
            "jobs": lanes,
            "sim_cycles": sum(r["exec_time"] or 0 for r in run_list),
        },
        "queue_wait": {
            "mean_s": (sum(waits) / len(waits)) if waits else None,
            "max_s": max(waits) if waits else None,
        },
        "workers": sorted(workers.values(), key=lambda w: w["worker"]),
        "runs": run_list,
        "stragglers": stragglers,
    }


def format_report(report, top=10):
    """Terminal rendering of :func:`sweep_report`."""
    totals = report["totals"]
    hit = (
        f"{totals['cache_hit_ratio']:.0%}"
        if totals["cache_hit_ratio"] is not None
        else "-"
    )
    lines = [
        f"sweeps: {len(report['sweeps'])}  runs: {totals['runs']} "
        f"({totals['executed']} executed, {totals['cached']} cached [{hit} hit], "
        f"{totals['failed']} failed)  heartbeats: {totals['heartbeats']}  "
        f"wall: {totals['wall_s']:.1f}s",
    ]
    waits = report["queue_wait"]
    if waits["mean_s"] is not None:
        lines.append(
            f"queue wait: mean {waits['mean_s'] * 1000:.0f}ms, "
            f"max {waits['max_s'] * 1000:.0f}ms"
        )
    if report["workers"]:
        rows = [
            [
                w["worker"],
                w["runs"],
                f"{w['busy_s']:.1f}",
                f"{w['utilization']:.0%}" if w["utilization"] is not None else "-",
                w["heartbeats"],
            ]
            for w in report["workers"]
        ]
        lines.append("")
        lines.append(
            format_table(
                ["worker", "runs", "busy_s", "util", "heartbeats"],
                rows,
                title="worker utilization (busy wall-seconds / sweep wall)",
            )
        )
    stragglers = report["stragglers"][:top]
    if stragglers:
        rows = [
            [
                r["workload"],
                r["label"],
                f"{r['wall_time_s']:.2f}",
                f"{r['queue_wait_s'] * 1000:.0f}ms" if r["queue_wait_s"] is not None else "-",
                r["worker"] if r["worker"] is not None else "-",
                r["heartbeats"],
            ]
            for r in stragglers
        ]
        lines.append("")
        lines.append(
            format_table(
                ["workload", "label", "wall_s", "queue_wait", "worker", "heartbeats"],
                rows,
                title=f"top {len(stragglers)} stragglers (by wall time)",
            )
        )
    failed = [r for r in report["runs"] if r["status"] == "failed"]
    if failed:
        lines.append("")
        lines.append("failed runs:")
        for r in failed:
            lines.append(f"  {r['workload']}/{r['label']} (spec {r['spec_key'][:12]})")
    return "\n".join(lines)


def sweep_to_perfetto(events):
    """Render harness telemetry as a Chrome/Perfetto trace dict: one
    lane per worker process (run slices + live sim-cycle counter track
    from heartbeats), a queue lane (queued -> started wait slices) and a
    cache lane (instant per hit), via the generic assembler in
    :mod:`repro.obs.export` — so a sweep renders with exactly the lane
    idiom the simulator traces use."""
    from repro.obs.export import PID_HARNESS, spans_to_perfetto

    report = sweep_report(events)
    t0 = min((e["ts"] for e in events), default=0.0)

    def us(ts):
        return int((ts - t0) * 1e6)

    worker_tid = {
        w["worker"]: tid for tid, w in enumerate(report["workers"], start=2)
    }
    threads = [(PID_HARNESS, 0, "harness", "queue"), (PID_HARNESS, 1, "harness", "cache")]
    for worker, tid in sorted(worker_tid.items(), key=lambda kv: kv[1]):
        threads.append((PID_HARNESS, tid, "harness", f"worker {worker}"))
    slices = []
    instants = []
    counters = []
    for run in report["runs"]:
        name = f"{run['workload']}/{run['label']}"
        if run["status"] == "cached":
            instants.append(("hit " + name, "cache", us(run["end_ts"]), PID_HARNESS, 1,
                             {"spec_key": run["spec_key"][:16]}))
            continue
        if run["queue_wait_s"] is not None:
            slices.append(
                ("wait " + name, "queue", us(run["queued_ts"]),
                 max(int(run["queue_wait_s"] * 1e6), 1), PID_HARNESS, 0,
                 {"spec_key": run["spec_key"][:16]}),
            )
        if run["started_ts"] is None or run["end_ts"] is None:
            continue
        tid = worker_tid.get(run["worker"], 0)
        slices.append(
            (name, "run" if run["status"] == "finished" else "failed",
             us(run["started_ts"]),
             max(int((run["end_ts"] - run["started_ts"]) * 1e6), 1),
             PID_HARNESS, tid,
             {
                 "spec_key": run["spec_key"][:16],
                 "status": run["status"],
                 "exec_time": run["exec_time"],
                 "heartbeats": run["heartbeats"],
             }),
        )
    for event in events:
        if event["type"] != "heartbeat":
            continue
        tid = worker_tid.get(event["worker"])
        if tid is None:
            continue
        counters.append(
            ("sim_cycles", us(event["ts"]), PID_HARNESS, tid,
             f"worker{event['worker']}", event["sim_cycles"]),
        )
    return spans_to_perfetto(
        threads, slices, counters=counters, instants=instants,
        other_data={
            "tool": "dsi-sim report",
            "runs": report["totals"]["runs"],
            "heartbeats": report["totals"]["heartbeats"],
        },
    )


def write_sweep_perfetto(events, path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sweep_to_perfetto(events), handle)


# ----------------------------------------------------------------------
# Profile aggregation
# ----------------------------------------------------------------------
def merge_profiles(paths):
    """One :class:`pstats.Stats` over every readable sidecar, or ``None``
    when nothing merged.  Returns ``(stats, merged_paths)``."""
    stats = None
    merged = []
    for path in paths:
        try:
            if stats is None:
                stats = pstats.Stats(path)
            else:
                stats.add(path)
        except (OSError, TypeError, ValueError):
            continue
        merged.append(path)
    return stats, merged


def profile_table(paths, top=15):
    """The merged top-``top`` hot functions across pstats sidecars.

    Returns ``(rows, merged_count)`` where each row is
    ``[function, ncalls, tottime_s, cumtime_s]`` sorted by cumulative
    time — the table ``dsi-sim report``/``bench`` print so perf PRs stop
    guessing where host time goes."""
    stats, merged = merge_profiles(paths)
    if stats is None:
        return [], 0
    rows = []
    for (filename, lineno, func), (cc, nc, tt, ct, _callers) in stats.stats.items():
        where = f"{os.path.basename(filename)}:{lineno}:{func}"
        rows.append([where, nc, tt, ct])
    rows.sort(key=lambda row: -row[3])
    rows = rows[:top]
    return [
        [name, ncalls, f"{tt:.3f}", f"{ct:.3f}"] for name, ncalls, tt, ct in rows
    ], len(merged)


def format_profile_table(rows, merged):
    if not rows:
        return "(no profile sidecars found)"
    return format_table(
        ["function", "ncalls", "tottime_s", "cumtime_s"],
        rows,
        title=f"merged host profile ({merged} sidecars, by cumulative time)",
    )

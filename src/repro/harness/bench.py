"""The benchmark observatory: pinned suites, BENCH snapshots, regression
comparison.

``dsi-sim bench`` runs one of the pinned suites below and writes a
schema-versioned ``BENCH_<timestamp>.json`` snapshot: per-run wall time,
simulation speed (simulated cycles per host second), execution time,
miss rate, self-invalidations and network-message counts, plus enough
host metadata to interpret drift.  ``dsi-sim bench --compare old new``
diffs two snapshots run-by-run and flags regressions; CI runs the quick
suite on every push and fails the build when simulation speed drops more
than the threshold against the cached baseline.

Two thresholds with different temperaments:

* ``threshold`` guards **host performance** (``sim_cycles_per_s``): this
  is noisy (machine load, thermal state), so only a *drop* beyond the
  threshold counts, improvements never fail, and the default is a
  generous 15%.
* ``sim_threshold`` (opt-in, ``None`` by default) guards **simulated
  quantities** (``exec_time``, network messages): these are deterministic,
  so *any* drift beyond the threshold — either direction — is flagged.
  Use it to catch unintended model changes, not host noise.
"""

import glob
import json
import os
import platform
import sys
import time
from dataclasses import replace

from repro.config import ExecutionMode
from repro.errors import ConfigError
from repro.harness.configs import PROTOCOLS, WORKLOADS, paper_config, workload_args
from repro.harness.runpool import RunPool
from repro.harness.runspec import RunSpec
from repro.stats.report import format_table

#: Version of the BENCH_*.json payload layout.  v2 added ``mode`` — the
#: execution engine (reference / relaxed) the suite ran under; snapshots
#: of different modes measure different engines and a comparison between
#: them is a *speedup report*, not a regression gate.
BENCH_SCHEMA_VERSION = 2

#: Pinned suites: (workload, protocol label) pairs.  Pinning matters —
#: a comparison is only meaningful between snapshots of the same suite,
#: matched run-by-run on (workload, protocol).
SUITES = {
    # Seconds on any host; sanity-checks the machinery itself.
    "smoke": (
        ("producer_consumer", "SC"),
        ("producer_consumer", "V"),
        ("producer_consumer", "TARDIS"),
    ),
    # CI gate: three paper workloads at quick scale across the base
    # protocol, weak consistency, DSI-with-versions and Tardis.
    "quick": tuple(
        (workload, protocol)
        for workload in ("em3d", "sparse", "tomcatv")
        for protocol in ("SC", "W", "V", "TARDIS")
    ),
    # The paper grid (Figure 3's bars at quick workload scale).
    "full": tuple(
        (workload, protocol) for workload in WORKLOADS for protocol in PROTOCOLS
    ),
}

#: Default processor counts per suite (overridable via ``procs``).
SUITE_PROCS = {"smoke": 4, "quick": 8, "full": 32}


def suite_specs(suite, procs=None, mode=None):
    """The pinned run list for a suite as ``(workload, protocol, spec)``
    triples.  ``mode`` (an :class:`~repro.config.ExecutionMode` or its
    string value) pins the execution engine; ``None`` keeps the config's
    own resolution (the ``DSI_MODE`` environment variable, else
    reference)."""
    if suite not in SUITES:
        raise ConfigError(f"unknown bench suite {suite!r}; have {sorted(SUITES)}")
    n_procs = procs if procs else SUITE_PROCS[suite]
    if mode is not None:
        mode = ExecutionMode(mode)
    triples = []
    for workload, protocol in SUITES[suite]:
        config = paper_config(protocol, n_procs=n_procs)
        if mode is not None:
            config = replace(config, execution_mode=mode)
        if workload in WORKLOADS:
            args = workload_args(workload, quick=True, n_procs=n_procs)
        else:
            args = {"n_procs": n_procs}
        triples.append((workload, protocol, RunSpec.create(workload, config, **args)))
    return triples


def default_path(when=None):
    """``BENCH_<timestamp>.json`` in the current directory."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.localtime(when))
    return f"BENCH_{stamp}.json"


def run_bench(suite="quick", procs=None, jobs=1, repeat=1, verbose=False, mode=None,
              telemetry=None):
    """Run one suite and return the snapshot payload.

    ``jobs`` defaults to 1 — serial execution is what makes wall times
    comparable across snapshots (parallel workers contend for the host).
    ``repeat`` re-runs the suite N times and keeps each run's *fastest*
    wall time, the standard defense against warm-up and scheduler noise;
    simulated quantities are deterministic so repeats agree on them.
    The result cache is bypassed: a benchmark that can be served from
    cache measures nothing.  ``mode`` pins the execution engine for the
    whole suite; the snapshot records the mode it actually ran under.

    ``telemetry`` (a :class:`~repro.harness.telemetry.TelemetryConfig`)
    attaches the harness observatory: one pool spans every repeat round,
    so a ``--log`` file captures the whole benchmark as one stream (one
    sweep per round) and ``--profile`` sidecars land once per spec; their
    paths are reported under the snapshot's ``profiles`` key.
    """
    if repeat < 1:
        raise ConfigError("repeat must be >= 1")
    triples = suite_specs(suite, procs=procs, mode=mode)
    resolved_mode = triples[0][2].config.execution_mode.value
    if mode is not None and resolved_mode != ExecutionMode(mode).value:
        # ``SystemConfig.__post_init__`` re-applies DSI_MODE on every
        # construction, so the environment silently outvotes an explicit
        # request — refuse rather than snapshot a mislabeled suite.
        raise ConfigError(
            f"requested mode {ExecutionMode(mode).value!r} but DSI_MODE="
            f"{os.environ.get('DSI_MODE')!r} forces {resolved_mode!r}; unset it first"
        )
    n_procs = procs if procs else SUITE_PROCS[suite]
    best = {}
    started = time.time()
    pool = RunPool(
        jobs=jobs, cache_dir=None, use_cache=False, verbose=verbose,
        telemetry=telemetry,
    )
    try:
        for _round in range(repeat):
            records = pool.run_batch([spec for _w, _p, spec in triples])
            for workload, protocol, spec in triples:
                record = records[spec]
                held = best.get(spec)
                if (
                    held is None
                    or (record.wall_time_s or 0) < (held.wall_time_s or float("inf"))
                ):
                    best[spec] = record
    finally:
        pool.close()
    profiles = None
    if pool.telemetry is not None and pool.telemetry.profile:
        from repro.harness.telemetry import profile_sidecar

        sidecars = [
            profile_sidecar(pool.telemetry.profile_dir, spec.key())
            for _w, _p, spec in triples
        ]
        profiles = {
            "dir": pool.telemetry.profile_dir,
            "sidecars": [path for path in sidecars if os.path.exists(path)],
        }
    runs = []
    for workload, protocol, spec in triples:
        record = best[spec]
        runs.append(
            {
                "workload": workload,
                "protocol": protocol,
                "label": spec.config.describe(),
                "key": spec.key()[:16],
                "exec_time": record.exec_time,
                "wall_time_s": record.wall_time_s,
                "sim_cycles_per_s": record.sim_cycles_per_s,
                "miss_rate": record.misses.miss_rate(),
                "self_invalidations": record.misses.self_invalidations,
                "network_messages": record.messages.total_network(),
                "data_blocks_sent": record.messages.data_blocks_sent,
            }
        )
    wall = sum(r["wall_time_s"] or 0 for r in runs)
    cycles = sum(r["exec_time"] for r in runs)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S", time.localtime(started)),
        "suite": suite,
        "mode": resolved_mode,
        "procs": n_procs,
        "jobs": jobs,
        "repeat": repeat,
        "host": {
            "python": sys.version.split()[0],
            "platform": platform.platform(),
            "cpus": os.cpu_count(),
        },
        "totals": {
            "wall_time_s": wall,
            "sim_cycles": cycles,
            "sim_cycles_per_s": (cycles / wall) if wall else None,
        },
        "runs": runs,
    }
    if profiles is not None:
        payload["profiles"] = profiles
    return payload


_RUN_FIELDS = (
    "workload",
    "protocol",
    "exec_time",
    "wall_time_s",
    "sim_cycles_per_s",
    "network_messages",
)


def validate_payload(payload):
    """Raise :class:`~repro.errors.ConfigError` unless ``payload`` is a
    well-formed BENCH snapshot this code can compare."""
    if not isinstance(payload, dict):
        raise ConfigError("bench payload is not a JSON object")
    version = payload.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ConfigError(
            f"bench payload schema_version {version!r} != {BENCH_SCHEMA_VERSION}"
        )
    for field in ("suite", "mode", "created", "runs", "totals", "host"):
        if field not in payload:
            raise ConfigError(f"bench payload missing {field!r}")
    if not isinstance(payload["runs"], list) or not payload["runs"]:
        raise ConfigError("bench payload has no runs")
    for i, run in enumerate(payload["runs"]):
        for field in _RUN_FIELDS:
            if field not in run:
                raise ConfigError(f"bench payload run #{i} missing {field!r}")
    return payload


def load_payload(path):
    """Read and validate one snapshot file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ConfigError(f"cannot read bench snapshot {path}: {exc}") from exc
    return validate_payload(payload)


def write_payload(payload, path):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _ratio(new, old):
    if old is None or new is None or not old:
        return None
    return new / old - 1.0


def compare(old, new, threshold=0.15, sim_threshold=None):
    """Diff two snapshots; returns ``(rows, regressions)``.

    Runs are matched on ``(workload, protocol)``.  A row regresses when
    ``sim_cycles_per_s`` *dropped* by more than ``threshold`` (host noise
    in the other direction is fine).  With ``sim_threshold`` set, any
    drift of the deterministic quantities (``exec_time``,
    ``network_messages``) beyond it also regresses the row — those should
    not move at all unless the simulator changed.
    """
    validate_payload(old)
    validate_payload(new)
    old_by = {(r["workload"], r["protocol"]): r for r in old["runs"]}
    new_by = {(r["workload"], r["protocol"]): r for r in new["runs"]}
    rows = []
    regressions = []
    for key in sorted(set(old_by) | set(new_by)):
        workload, protocol = key
        before, after = old_by.get(key), new_by.get(key)
        if before is None or after is None:
            rows.append(
                {
                    "workload": workload,
                    "protocol": protocol,
                    "status": "new" if before is None else "removed",
                    "old_cycles_per_s": before and before["sim_cycles_per_s"],
                    "new_cycles_per_s": after and after["sim_cycles_per_s"],
                    "speed_delta": None,
                    "exec_delta": None,
                    "message_delta": None,
                    "flags": [],
                }
            )
            continue
        speed = _ratio(after["sim_cycles_per_s"], before["sim_cycles_per_s"])
        exec_delta = _ratio(after["exec_time"], before["exec_time"])
        msg_delta = _ratio(after["network_messages"], before["network_messages"])
        flags = []
        if speed is not None and speed < -threshold:
            flags.append(f"cycles/s {speed:+.1%} (limit -{threshold:.0%})")
        if sim_threshold is not None:
            if exec_delta is not None and abs(exec_delta) > sim_threshold:
                flags.append(f"exec_time {exec_delta:+.1%}")
            if msg_delta is not None and abs(msg_delta) > sim_threshold:
                flags.append(f"messages {msg_delta:+.1%}")
        row = {
            "workload": workload,
            "protocol": protocol,
            "status": "REGRESSED" if flags else "ok",
            "old_cycles_per_s": before["sim_cycles_per_s"],
            "new_cycles_per_s": after["sim_cycles_per_s"],
            "speed_delta": speed,
            "exec_delta": exec_delta,
            "message_delta": msg_delta,
            "flags": flags,
        }
        rows.append(row)
        if flags:
            regressions.append(row)
    return rows, regressions


def _kcyc(value):
    return f"{value / 1000:.0f}k" if value else "-"


def _pct(value):
    return f"{value:+.1%}" if value is not None else "-"


def collect_history(directory="."):
    """Every readable ``BENCH_*.json`` under ``directory``, oldest first.

    Returns ``(snapshots, skipped)`` where ``snapshots`` is a list of
    ``(path, payload)`` pairs sorted by the payload's ``created`` stamp
    and ``skipped`` lists ``(path, reason)`` for files that failed
    validation (old schema versions land here rather than aborting the
    listing — a history directory legitimately spans schema bumps).
    """
    snapshots, skipped = [], []
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            snapshots.append((path, load_payload(path)))
        except ConfigError as exc:
            skipped.append((path, str(exc)))
    snapshots.sort(key=lambda pair: pair[1]["created"])
    return snapshots, skipped


def format_history(snapshots):
    """One line per snapshot: the drift of total simulation speed over
    time (the ``dsi-sim bench --history`` table)."""
    rows = []
    previous_speed = {}
    for path, payload in snapshots:
        totals = payload["totals"]
        speed = totals["sim_cycles_per_s"]
        suite_mode = (payload["suite"], payload["mode"])
        delta = _ratio(speed, previous_speed.get(suite_mode))
        if speed:
            previous_speed[suite_mode] = speed
        rows.append(
            [
                payload["created"],
                payload["suite"],
                payload["mode"],
                len(payload["runs"]),
                f"{totals['wall_time_s']:.1f}",
                _kcyc(speed),
                _pct(delta),
                os.path.basename(path),
            ]
        )
    return format_table(
        ["created", "suite", "mode", "runs", "wall_s", "cyc/s", "drift", "file"],
        rows,
        title="bench history (drift vs previous snapshot of the same suite+mode)",
    )


def format_compare(rows, threshold=0.15):
    """The regression table ``dsi-sim bench --compare`` prints."""
    table = format_table(
        ["workload", "proto", "old cyc/s", "new cyc/s", "speed", "exec", "msgs", "status"],
        [
            [
                row["workload"],
                row["protocol"],
                _kcyc(row["old_cycles_per_s"]),
                _kcyc(row["new_cycles_per_s"]),
                _pct(row["speed_delta"]),
                _pct(row["exec_delta"]),
                _pct(row["message_delta"]),
                row["status"] + ("" if not row["flags"] else f" [{'; '.join(row['flags'])}]"),
            ]
            for row in rows
        ],
        title=f"bench comparison (fail when cycles/s drops more than {threshold:.0%})",
    )
    return table

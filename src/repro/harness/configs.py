"""Paper configurations, scaled.

The paper simulates 32 processors with 256 KB and 2 MB caches.  Our
workloads are scaled down by 16x to keep trace-driven simulation fast, so
the cache pair scales identically: 16 KB stands in for 256 KB, 128 KB for
2 MB.  What the experiments depend on is the *ratio* of working set to
cache size, which the scaling preserves (see DESIGN.md, substitutions).

Protocol labels follow Figure 3: SC (base sequential consistency), W
(weak consistency with a 16-entry coalescing write buffer), S (SC + DSI
with additional states), V (SC + DSI with 4-bit version numbers).

Beyond the paper's own bars, TARDIS / W+TARDIS select the leased
logical-timestamp protocol (Yu & Devadas, PACT'15) as a comparison
point: no sharer tracking, no invalidation traffic — self-invalidation
falls out of lease expiry (see docs/PROTOCOL.md).
"""

from repro.config import Consistency, IdentifyScheme, KB, SIMechanism, SystemConfig
from repro.errors import ConfigError

SMALL_CACHE = 16 * KB  # stands for the paper's 256 KB
LARGE_CACHE = 128 * KB  # stands for the paper's 2 MB
FAST_NET = 100
SLOW_NET = 1000

#: Figure 3's four protocol bars.
PROTOCOLS = ("SC", "W", "S", "V")

#: The five applications of Table 1.
WORKLOADS = ("barnes", "em3d", "ocean", "sparse", "tomcatv")

_PROTOCOL_FIELDS = {
    "SC": {},
    "W": {"consistency": Consistency.WC},
    "S": {"identify": IdentifyScheme.STATES},
    "V": {"identify": IdentifyScheme.VERSION},
    # Weak consistency + DSI with tear-off blocks (§5.3).
    "W+V": {
        "consistency": Consistency.WC,
        "identify": IdentifyScheme.VERSION,
        "tearoff": True,
    },
    "W+S": {
        "consistency": Consistency.WC,
        "identify": IdentifyScheme.STATES,
        "tearoff": True,
    },
    # Figure 5's FIFO variant of V.
    "V-FIFO": {"identify": IdentifyScheme.VERSION, "si_mechanism": SIMechanism.FIFO},
    # Tardis leased logical timestamps (not a paper bar; ablation only).
    "TARDIS": {"tardis": True},
    "W+TARDIS": {"consistency": Consistency.WC, "tardis": True},
}


def paper_config(protocol="SC", cache=SMALL_CACHE, latency=FAST_NET, n_procs=32, **overrides):
    """A :class:`~repro.config.SystemConfig` for one paper data point."""
    protocol = protocol.upper()
    if protocol not in _PROTOCOL_FIELDS:
        raise ConfigError(f"unknown protocol label {protocol!r}; have {sorted(_PROTOCOL_FIELDS)}")
    fields = dict(_PROTOCOL_FIELDS[protocol])
    fields.update(overrides)
    return SystemConfig(
        n_processors=n_procs,
        cache_size=cache,
        network_latency=latency,
        **fields,
    )


#: Reduced workload parameters for quick runs (CI, pytest, benchmarks).
QUICK_WORKLOAD_ARGS = {
    "barnes": {"bodies_per_proc": 8, "cells": 48, "iterations": 2, "gather": 6},
    "em3d": {"nodes_per_proc": 48, "iterations": 3, "private_words": 256},
    "ocean": {"cols": 32, "days": 2, "sweeps_per_day": 3},
    # x_words stays large enough that the per-processor self-invalidate
    # set (~x_words/8 blocks) still overflows the 64-entry FIFO (Figure 5).
    "sparse": {"x_words": 1024, "iterations": 3, "a_words_per_proc": 256},
    "tomcatv": {"rows_per_proc": 6, "cols": 64, "iterations": 2},
}


def workload_args(name, quick=False, n_procs=32):
    """Keyword arguments for one workload generator at the chosen scale."""
    args = {"n_procs": n_procs}
    if quick:
        args.update(QUICK_WORKLOAD_ARGS.get(name, {}))
    return args

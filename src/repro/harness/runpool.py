"""Batch execution of :class:`~repro.harness.runspec.RunSpec` values.

Two layers:

:class:`ResultCache`
    A content-addressed on-disk cache.  Each record lands in
    ``<cache_dir>/<code fingerprint>/<spec key>.json`` — the fingerprint
    digests every source file of the ``repro`` package, so editing the
    simulator invalidates all cached results while repeated sweeps of an
    unchanged tree are pure cache hits.

:class:`RunPool`
    Executes a batch of specs: cache lookups first, then the misses via a
    ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers; ``1``
    keeps the in-process serial path for debugging), writing fresh
    records back to the cache.  Worker processes memoize generated
    programs so a sweep of many configs over one workload builds the
    trace once per worker.
"""

import hashlib
import json
import os
import sys
import time
from concurrent.futures import ProcessPoolExecutor

import repro
from repro.stats.record import RunRecord

#: Per-process program memo: (workload, workload_args) -> Program.
#: Lives at module scope so pool workers reuse programs across tasks.
_PROGRAMS = {}


def execute_spec(spec):
    """Build (or reuse) the program and run one spec, stamping run
    telemetry (wall time, simulated cycles per host second) into the
    record.  Top-level so the process pool can pickle it."""
    key = (spec.workload, spec.workload_args)
    program = _PROGRAMS.get(key)
    if program is None:
        program = _PROGRAMS[key] = spec.build_program()
    started = time.time()
    record = spec.execute(program)
    record.set_timing(time.time() - started)
    return record


_FINGERPRINTS = {}


def code_fingerprint():
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the simulator, protocol, workloads or harness changes the
    fingerprint and thereby orphans all previously cached records.  The
    execution modes are folded in too: ``DSI_NO_FASTPATH`` forces every
    config onto the interpreted paths and ``DSI_MODE`` selects the
    transaction-retirement engine *after* spec construction, so two
    processes differing only in those variables must not share cache
    entries — they fingerprint (and therefore cache) separately.
    """
    mode = "reference" if os.environ.get("DSI_NO_FASTPATH") else "fast"
    engine = os.environ.get("DSI_MODE") or "default"
    fingerprint = _FINGERPRINTS.get((mode, engine))
    if fingerprint is None:
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        digest.update(f"execution-mode:{mode}\n".encode("utf-8"))
        digest.update(f"engine-mode:{engine}\n".encode("utf-8"))
        for root, dirs, files in sorted(os.walk(package_dir)):
            dirs.sort()
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_dir).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        fingerprint = _FINGERPRINTS[(mode, engine)] = digest.hexdigest()
    return fingerprint


class ResultCache:
    """Content-addressed record store under one directory."""

    def __init__(self, root, fingerprint=None):
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()

    def path_for(self, spec):
        return os.path.join(self.root, self.fingerprint[:16], spec.key() + ".json")

    def get(self, spec):
        """The cached record for ``spec``, or None (corrupt files miss)."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            return RunRecord.from_dict(payload["record"])
        except (OSError, ValueError, KeyError):
            return None

    def put(self, spec, record):
        path = self.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"spec": spec.to_dict(), "record": record.to_dict()}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partials


class RunPool:
    """Executes batches of specs with caching and parallel fan-out.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``, ``1`` runs
        every spec in-process (serial, debugger-friendly).
    cache_dir:
        Directory for the persistent result cache; ``None`` disables it.
    use_cache:
        ``False`` bypasses the cache entirely (no reads, no writes).
    verbose:
        Log one line per executed or cache-hit spec to stderr.
    fingerprint:
        Override the code fingerprint (tests use this to simulate source
        changes).
    """

    def __init__(self, jobs=None, cache_dir=None, use_cache=True, verbose=False,
                 fingerprint=None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cache = (
            ResultCache(cache_dir, fingerprint=fingerprint)
            if (cache_dir and use_cache)
            else None
        )
        self.verbose = verbose
        self.executed = 0
        self.cache_hits = 0
        self._manifest = []

    # ------------------------------------------------------------------
    def run_batch(self, specs):
        """Execute (or recall) every spec; returns {spec: RunRecord}."""
        records = {}
        pending = []
        seen = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                self.cache_hits += 1
                records[spec] = cached
                self._note(spec, cached, cached=True)
                self._log(spec, cached, hit=True)
            else:
                pending.append(spec)
        if pending:
            for spec, record in self._execute_all(pending):
                self.executed += 1
                self._note(spec, record, cached=False)
                self._log(spec, record, hit=False)
                if self.cache:
                    self.cache.put(spec, record)
                records[spec] = record
        return records

    def run(self, spec):
        """Convenience: a batch of one."""
        return self.run_batch([spec])[spec]

    def manifest(self):
        """Run telemetry for everything this pool served, in service
        order: one entry per spec with its cache disposition, wall time
        and simulation speed (cached entries report the wall time of the
        run that originally produced them)."""
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "runs": [dict(entry) for entry in self._manifest],
        }

    # ------------------------------------------------------------------
    def _execute_all(self, pending):
        if self.jobs == 1 or len(pending) == 1:
            for spec in pending:
                yield spec, execute_spec(spec)
            return
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            for spec, record in zip(pending, executor.map(execute_spec, pending)):
                yield spec, record

    def _note(self, spec, record, cached):
        self._manifest.append(
            {
                "key": spec.key()[:16],
                "workload": spec.workload,
                "label": spec.config.describe(),
                "cached": cached,
                "exec_time": record.exec_time,
                "wall_time_s": record.wall_time_s,
                "sim_cycles_per_s": record.sim_cycles_per_s,
            }
        )

    def _log(self, spec, record, hit):
        if not self.verbose:
            return
        config = spec.config
        tag = "hit" if hit else f"run {self.executed}"
        wall = record.wall_time_s or 0.0
        print(
            f"[{tag}] {spec.workload:10s} {config.describe():12s} "
            f"cache={config.cache_size // 1024}KB net={config.network_latency} "
            f"exec={record.exec_time} ({wall:.1f}s)",
            file=sys.stderr,
        )

"""Batch execution of :class:`~repro.harness.runspec.RunSpec` values.

Two layers:

:class:`ResultCache`
    A content-addressed on-disk cache.  Each record lands in
    ``<cache_dir>/<code fingerprint>/<spec key>.json`` — the fingerprint
    digests every source file of the ``repro`` package, so editing the
    simulator invalidates all cached results while repeated sweeps of an
    unchanged tree are pure cache hits.

:class:`RunPool`
    Executes a batch of specs: cache lookups first, then the misses via a
    ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` workers; ``1``
    keeps the in-process serial path for debugging), writing fresh
    records back to the cache.  Worker processes memoize generated
    programs so a sweep of many configs over one workload builds the
    trace once per worker.

Every sweep narrates itself through the harness observatory
(:mod:`repro.harness.telemetry`): the pool emits
``sweep_begin``/``run_queued``/``run_cached``/``run_finished``/
``run_failed``/``sweep_end`` events parent-side, while pool workers ship
``run_started`` and periodic ``heartbeat`` events back over a
``multiprocessing.Queue`` installed by the executor initializer.  The
``--verbose`` stderr lines are one sink on that same stream, so logging
and structured telemetry cannot drift.  A failing or dying worker never
hangs the sweep: the pool drains every submitted future, emits one
``run_failed`` (with the remote traceback) per casualty, and re-raises
the first error only after the drain.
"""

import hashlib
import json
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor

import repro
from repro.harness.telemetry import (
    JsonlSink,
    LiveDashboard,
    TelemetryConfig,
    TelemetryHub,
    VerboseSink,
    WorkerTelemetry,
    make_event,
    new_sweep_id,
    profile_sidecar,
)
from repro.stats.record import RunRecord

#: Per-process program memo: (workload, workload_args) -> Program.
#: Lives at module scope so pool workers reuse programs across tasks.
_PROGRAMS = {}

#: Per-worker telemetry half (run_started + heartbeats + profiling),
#: installed by :func:`_init_worker` in pool processes; ``None`` keeps
#: the zero-overhead bare path.
_WORKER_TELEMETRY = None


def execute_spec(spec, observer=None):
    """Build (or reuse) the program and run one spec, stamping run
    telemetry (wall time, simulated cycles per host second) into the
    record.  Top-level so the process pool can pickle it.  ``observer``
    passes through to :meth:`RunSpec.execute` (heartbeat sampling)."""
    key = (spec.workload, spec.workload_args)
    program = _PROGRAMS.get(key)
    if program is None:
        program = _PROGRAMS[key] = spec.build_program()
    started = time.time()
    record = spec.execute(program, observer=observer)
    record.set_timing(time.time() - started)
    return record


def _init_worker(queue, heartbeat_interval, profile, profile_dir):
    """Pool-worker initializer: installs the worker telemetry half,
    emitting into the parent's queue (``queue.put`` is the emit hook —
    the parent hub's pump thread stamps ``seq``/``sweep`` on arrival)."""
    global _WORKER_TELEMETRY
    _WORKER_TELEMETRY = WorkerTelemetry(
        queue.put,
        heartbeat_interval=heartbeat_interval,
        profile=profile,
        profile_dir=profile_dir,
    )


def _telemetry_execute(spec, telemetry=None):
    """Run one spec under the installed worker telemetry (if any):
    ``run_started``, a heartbeat sampler attached for the duration, and
    an optional cProfile sidecar.  Falls back to the bare path when
    telemetry is off, so untelemetered sweeps pay nothing."""
    telem = telemetry if telemetry is not None else _WORKER_TELEMETRY
    if telem is None:
        return execute_spec(spec)
    sampler, profiler = telem.start_run(spec)
    try:
        return execute_spec(spec, observer=sampler)
    finally:
        telem.end_run(spec, sampler, profiler)


_FINGERPRINTS = {}


def code_fingerprint():
    """Digest of every ``repro`` source file (cached per process).

    Any edit to the simulator, protocol, workloads or harness changes the
    fingerprint and thereby orphans all previously cached records.  The
    execution modes are folded in too: ``DSI_NO_FASTPATH`` forces every
    config onto the interpreted paths and ``DSI_MODE`` selects the
    transaction-retirement engine *after* spec construction, so two
    processes differing only in those variables must not share cache
    entries — they fingerprint (and therefore cache) separately.

    Telemetry settings (``DSI_LOG``/``DSI_PROFILE``, ``--log``,
    ``--live``, ``--profile``) are deliberately *not* folded in:
    observability never affects simulation results (the equivalence
    harness proves it), so it must never bust the result cache.
    """
    mode = "reference" if os.environ.get("DSI_NO_FASTPATH") else "fast"
    engine = os.environ.get("DSI_MODE") or "default"
    fingerprint = _FINGERPRINTS.get((mode, engine))
    if fingerprint is None:
        package_dir = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        digest.update(f"execution-mode:{mode}\n".encode("utf-8"))
        digest.update(f"engine-mode:{engine}\n".encode("utf-8"))
        for root, dirs, files in sorted(os.walk(package_dir)):
            dirs.sort()
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                digest.update(os.path.relpath(path, package_dir).encode("utf-8"))
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        fingerprint = _FINGERPRINTS[(mode, engine)] = digest.hexdigest()
    return fingerprint


class ResultCache:
    """Content-addressed record store under one directory."""

    def __init__(self, root, fingerprint=None):
        self.root = root
        self.fingerprint = fingerprint or code_fingerprint()

    def path_for(self, spec):
        return self.path_for_key(spec.key())

    def path_for_key(self, key):
        return os.path.join(self.root, self.fingerprint[:16], key + ".json")

    def get(self, spec):
        """The cached record for ``spec``, or None (corrupt files miss)."""
        payload = self.get_by_key(spec.key())
        return RunRecord.from_dict(payload["record"]) if payload else None

    def get_by_key(self, key):
        """The raw ``{"spec", "record"}`` payload stored under a spec's
        content address, or None — the sweep service's ``/v1/runs/<key>``
        path, where the caller has only the hash."""
        try:
            with open(self.path_for_key(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            RunRecord.from_dict(payload["record"])  # corrupt files miss
            return payload
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return None

    def put(self, spec, record):
        path = self.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = {"spec": spec.to_dict(), "record": record.to_dict()}
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(tmp, path)  # atomic: concurrent sweeps never see partials


class RunPool:
    """Executes batches of specs with caching and parallel fan-out.

    Parameters
    ----------
    jobs:
        Worker processes; ``None`` means ``os.cpu_count()``, ``1`` runs
        every spec in-process (serial, debugger-friendly).
    cache_dir:
        Directory for the persistent result cache; ``None`` disables it.
    use_cache:
        ``False`` bypasses the cache entirely (no reads, no writes).
    verbose:
        Log one line per executed or cache-hit spec to stderr (a
        :class:`~repro.harness.telemetry.VerboseSink` on the event
        stream — the same events ``--log`` records).
    fingerprint:
        Override the code fingerprint (tests use this to simulate source
        changes).
    telemetry:
        A :class:`~repro.harness.telemetry.TelemetryConfig` (or ``None``
        to consult ``DSI_LOG``/``DSI_PROFILE``).  Activates the JSONL
        log, the live dashboard, worker heartbeats and host profiling.
        Never affects results or cache keys.
    """

    def __init__(self, jobs=None, cache_dir=None, use_cache=True, verbose=False,
                 fingerprint=None, telemetry=None):
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.cache = (
            ResultCache(cache_dir, fingerprint=fingerprint)
            if (cache_dir and use_cache)
            else None
        )
        self.verbose = verbose
        self.telemetry = TelemetryConfig.resolve(telemetry)
        self.executed = 0
        self.cache_hits = 0
        self.failed = 0
        self._manifest = []
        sinks = []
        if self.telemetry is not None:
            if self.telemetry.log_path:
                sinks.append(JsonlSink(self.telemetry.log_path))
            if self.telemetry.live:
                sinks.append(LiveDashboard(stream=self.telemetry.stream))
        if verbose:
            stream = self.telemetry.stream if self.telemetry is not None else None
            sinks.append(VerboseSink(stream=stream))
        # A hub exists whenever anything observes the sweep — including
        # profile-only runs, whose run_started/heartbeat events still
        # need the pump even with no sink attached.
        self.hub = (
            TelemetryHub(sinks) if (sinks or self.telemetry is not None) else None
        )

    # ------------------------------------------------------------------
    def run_batch(self, specs):
        """Execute (or recall) every spec; returns {spec: RunRecord}.

        One telemetry sweep brackets the batch.  Worker failures do not
        abort the fan-out: every pending future is drained (each miss
        emitting ``run_failed``), ``sweep_end`` is always emitted, and
        the first error re-raises after the drain.
        """
        records = {}
        pending = []
        cached_records = []
        seen = set()
        for spec in specs:
            if spec in seen:
                continue
            seen.add(spec)
            cached = self.cache.get(spec) if self.cache else None
            if cached is not None:
                cached_records.append((spec, cached))
            else:
                pending.append(spec)
        base = (self.executed, self.cache_hits, self.failed)
        sweep_started = time.time()
        if self.hub is not None:
            self.hub.begin_sweep(new_sweep_id())
            self.hub.emit(
                make_event(
                    "sweep_begin",
                    specs=len(seen),
                    pending=len(pending),
                    jobs=self.jobs,
                    fingerprint=(
                        self.cache.fingerprint if self.cache else code_fingerprint()
                    )[:16],
                )
            )
        try:
            for spec, cached in cached_records:
                self.cache_hits += 1
                records[spec] = cached
                self._note(spec, cached, cached=True)
                self._emit_terminal("run_cached", spec, cached)
            if self.hub is not None:
                for spec in pending:
                    self.hub.emit(
                        make_event(
                            "run_queued",
                            spec_key=spec.key(),
                            workload=spec.workload,
                            label=spec.config.describe(),
                        )
                    )
            for spec, record in self._execute_all(pending):
                self.executed += 1
                self._note(spec, record, cached=False)
                self._emit_terminal("run_finished", spec, record)
                if self.cache:
                    self.cache.put(spec, record)
                records[spec] = record
        finally:
            if self.hub is not None:
                self.hub.emit(
                    make_event(
                        "sweep_end",
                        executed=self.executed - base[0],
                        cache_hits=self.cache_hits - base[1],
                        failed=self.failed - base[2],
                        wall_s=time.time() - sweep_started,
                    )
                )
                self.hub.end_sweep()
        return records

    def run(self, spec):
        """Convenience: a batch of one."""
        return self.run_batch([spec])[spec]

    def close(self):
        """Stop the telemetry pump and flush/close every sink (the JSONL
        log, the live dashboard's final frame).  Idempotent."""
        if self.hub is not None:
            self.hub.close()

    def manifest(self):
        """Run telemetry for everything this pool served, in service
        order: one entry per spec with its cache disposition, wall time
        and simulation speed (cached entries report the wall time of the
        run that originally produced them)."""
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "runs": [dict(entry) for entry in self._manifest],
        }

    # ------------------------------------------------------------------
    def _execute_all(self, pending):
        if not pending:
            return
        if self.jobs == 1 or len(pending) == 1:
            yield from self._execute_serial(pending)
        else:
            yield from self._execute_parallel(pending)

    def _execute_serial(self, pending):
        telem = None
        if self.hub is not None and self.telemetry is not None:
            telem = WorkerTelemetry(
                self.hub.emit,
                heartbeat_interval=self.telemetry.heartbeat_interval,
                profile=self.telemetry.profile,
                profile_dir=self.telemetry.profile_dir,
            )
        for spec in pending:
            try:
                record = _telemetry_execute(spec, telemetry=telem)
            except Exception as exc:
                self.failed += 1
                self._emit_failure(spec, exc)
                raise
            yield spec, record

    def _execute_parallel(self, pending):
        workers = min(self.jobs, len(pending))
        initializer = None
        initargs = ()
        if self.hub is not None and self.telemetry is not None:
            initializer = _init_worker
            initargs = (
                self.hub.worker_queue(),
                self.telemetry.heartbeat_interval,
                self.telemetry.profile,
                self.telemetry.profile_dir,
            )
        first_error = None
        try:
            with ProcessPoolExecutor(
                max_workers=workers, initializer=initializer, initargs=initargs
            ) as executor:
                futures = [
                    executor.submit(_telemetry_execute, spec) for spec in pending
                ]
                for spec, future in zip(pending, futures):
                    try:
                        record = future.result()
                    except Exception as exc:
                        # Drain every remaining future (a dead worker
                        # breaks them all) so no result — or telemetry
                        # byte — is lost before we re-raise.
                        self.failed += 1
                        self._emit_failure(spec, exc)
                        if first_error is None:
                            first_error = exc
                        continue
                    yield spec, record
        finally:
            # The executor has shut down: every worker write hit the
            # queue's pipe before this sentinel, so the pump drains
            # completely before parking.
            if self.hub is not None:
                self.hub.stop_pump()
        if first_error is not None:
            raise first_error

    # ------------------------------------------------------------------
    def _note(self, spec, record, cached):
        self._manifest.append(
            {
                "key": spec.key()[:16],
                "workload": spec.workload,
                "label": spec.config.describe(),
                "cached": cached,
                "exec_time": record.exec_time,
                "wall_time_s": record.wall_time_s,
                "sim_cycles_per_s": record.sim_cycles_per_s,
            }
        )

    def _profile_path(self, spec):
        if self.telemetry is None or not self.telemetry.profile:
            return None
        path = profile_sidecar(self.telemetry.profile_dir, spec.key())
        return path if os.path.exists(path) else None

    def _emit_terminal(self, type_, spec, record):
        if self.hub is None:
            return
        config = spec.config
        fields = {
            "spec_key": spec.key(),
            "workload": spec.workload,
            "label": config.describe(),
            "cache_kb": config.cache_size // 1024,
            "net": config.network_latency,
            "exec_time": record.exec_time,
            "wall_time_s": record.wall_time_s,
        }
        if type_ == "run_finished":
            fields["sim_cycles_per_s"] = record.sim_cycles_per_s
            fields["profile"] = self._profile_path(spec)
        self.hub.emit(make_event(type_, **fields))

    def _emit_failure(self, spec, exc):
        if self.hub is None:
            return
        tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
        self.hub.emit(
            make_event(
                "run_failed",
                spec_key=spec.key(),
                workload=spec.workload,
                label=spec.config.describe(),
                error=f"{type(exc).__name__}: {exc}",
                traceback=tb,
            )
        )

"""Figure 6: DSI and weak consistency (execution-time breakdown).

WC versus WC+DSI (version numbers, tear-off blocks) at the large cache
and 100-cycle network, with the breakdown categories including the
write-buffer stalls the paper's figure stacks (synch wb, read wb, wb
full) and the self-invalidation wait (dsi).
"""

from repro.harness.configs import FAST_NET, LARGE_CACHE, WORKLOADS, paper_config
from repro.harness.experiment import ExperimentResult

EXPERIMENT_ID = "figure6"

_PROTOCOLS = ("W", "W+V")


def specs(runner):
    """Plan: WC base and WC+DSI(tear-off) per workload, large cache."""
    return [
        runner.spec(
            workload,
            paper_config(protocol, cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs),
        )
        for workload in WORKLOADS
        for protocol in _PROTOCOLS
    ]


def run(runner):
    runner.prefetch(specs(runner))
    headers = [
        "workload",
        "protocol",
        "norm_time",
        "compute",
        "sync",
        "read_inval",
        "read_other",
        "synch_wb",
        "read_wb",
        "wb_full",
        "dsi",
    ]
    rows = []
    for workload in WORKLOADS:
        base = runner.run(workload, paper_config("W", cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs))
        for protocol in ("W", "W+V"):
            result = runner.run(
                workload, paper_config(protocol, cache=LARGE_CACHE, latency=FAST_NET, n_procs=runner.n_procs)
            )
            fractions = result.aggregate_breakdown().fractions()
            rows.append(
                [
                    workload,
                    protocol,
                    f"{result.normalized_to(base):.2f}",
                    f"{fractions['compute']:.2f}",
                    f"{fractions['sync']:.2f}",
                    f"{fractions['read_inval']:.2f}",
                    f"{fractions['read_other']:.2f}",
                    f"{fractions['synch_wb']:.2f}",
                    f"{fractions['read_wb']:.2f}",
                    f"{fractions['wb_full']:.2f}",
                    f"{fractions['dsi']:.2f}",
                ]
            )
    return ExperimentResult(
        EXPERIMENT_ID,
        "DSI and weak consistency (2MB-class cache, 100-cycle network)",
        headers,
        rows,
        notes="Normalized to WC per workload; W+V adds version-number DSI with tear-off blocks.",
    )

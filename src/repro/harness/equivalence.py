"""Interpreted-vs-compiled equivalence proofs.

The compiled execution paths (:mod:`repro.coherence.compile` table
dispatch and the :mod:`repro.processor.fastpath` direct-execution
batcher) claim to be *invisible*: a run with both enabled must produce a
:class:`~repro.stats.record.RunRecord` equal — field for field, event
count included, telemetry excluded — to the interpreted run.  This
module is that claim as an executable proof: it sweeps every structural
protocol variant (the 44 combinations of
:func:`repro.coherence.variants.enumerate_variants` over both migratory
settings, plus SC/WC Tardis) across every paper workload, runs each
program once per execution mode, and compares the full records.

Run it directly::

    PYTHONPATH=src python -m repro.harness.equivalence            # full sweep
    PYTHONPATH=src python -m repro.harness.equivalence -k FIFO -w sparse

A focused subset runs in the tier-1 suite (``tests/test_equivalence.py``);
the full sweep is CI/nightly material (a few minutes of simulation).

Note: the ``DSI_NO_FASTPATH`` escape hatch forces *every* config to the
interpreted paths — under it this harness would compare the reference
against itself.  :func:`main` refuses to run in that case.
"""

import argparse
import os
import sys
from dataclasses import replace

import repro.system as system_mod
from repro.coherence.variants import (
    ProtocolVariant,
    TearoffMode,
    enumerate_variants,
    tardis_variants,
)
from repro.config import Consistency, ExecutionMode, SystemConfig
from repro.errors import ConfigError
from repro.harness.configs import SMALL_CACHE, WORKLOADS, workload_args
from repro.harness.runspec import RunSpec

#: processor count for the sweep; small enough that 2 runs per pair stay
#: cheap, large enough that every protocol transaction type occurs.
SWEEP_PROCS = 8


def all_variants():
    """The proof obligation: every structural variant, Tardis included."""
    return (
        enumerate_variants(migratory=False)
        + enumerate_variants(migratory=True)
        + tardis_variants()
    )


def config_for_variant(variant, n_procs=SWEEP_PROCS, **overrides):
    """A :class:`~repro.config.SystemConfig` realizing ``variant``.

    Inverse of :meth:`~repro.coherence.variants.ProtocolVariant.from_config`
    (and checked to round-trip, so the sweep provably covers the variant it
    names)."""
    fields = {}
    if variant.wc:
        fields["consistency"] = Consistency.WC
    if variant.tardis:
        fields["tardis"] = True
    else:
        fields["identify"] = variant.identify
        if variant.mechanism is not None:
            fields["si_mechanism"] = variant.mechanism
        if variant.tearoff is TearoffMode.WC:
            fields["tearoff"] = True
        elif variant.tearoff is TearoffMode.SC:
            fields["sc_tearoff"] = True
        if variant.migratory:
            fields["migratory"] = True
    fields.update(overrides)
    config = SystemConfig(n_processors=n_procs, cache_size=SMALL_CACHE, **fields)
    realized = ProtocolVariant.from_config(config)
    if realized != variant:
        raise ConfigError(
            f"config_for_variant round-trip failed: wanted {variant}, got {realized}"
        )
    return config


def reference_config(config):
    """The interpreted twin of ``config`` (both compiled paths off)."""
    return replace(config, compiled_dispatch=False, direct_execution=False)


def compare_records(fast, ref):
    """Names of the measured fields on which two records differ."""
    fast_dict = fast._measured_dict()
    ref_dict = ref._measured_dict()
    return [key for key in fast_dict if fast_dict[key] != ref_dict[key]]


def check_pair(workload, config, wl_args):
    """Run ``workload`` once interpreted and once compiled.

    Returns ``(equal, differing_field_names)``.  The same generated
    program object feeds both machines, so any divergence is the
    execution paths' — not the generator's."""
    fast_spec = RunSpec.create(workload, config, **wl_args)
    ref_spec = RunSpec.create(workload, reference_config(config), **wl_args)
    program = fast_spec.build_program()
    fast = fast_spec.execute(program)
    ref = ref_spec.execute(program)
    diffs = compare_records(fast, ref)
    return not diffs, diffs


def localize_layer(workload, config, wl_args):
    """On a mismatch, name the guilty layer.

    Re-runs with only compiled dispatch enabled: if that run already
    diverges from the interpreted reference the table compiler (layer 1)
    is at fault, otherwise the direct-execution batcher (layer 2)."""
    dispatch_only = replace(config, compiled_dispatch=True, direct_execution=False)
    equal, _diffs = check_pair(workload, dispatch_only, wl_args)
    return "fastpath (direct execution)" if equal else "compiled dispatch"


# ----------------------------------------------------------------------
# Observational equivalence: the relaxed engine vs the reference oracle
# ----------------------------------------------------------------------
#: layer activation order for mismatch localization: the bucketed event
#: queue alone first (pure scheduling substrate), then the protocol
#: lanes on top of it (production configuration)
RELAXED_LAYER_ORDER = ("queue", "lanes")


def relaxed_config(config):
    """The relaxed-engine twin of ``config``."""
    return replace(config, execution_mode=ExecutionMode.RELAXED)


def compare_observational(relaxed, ref):
    """Fields differing under *observational* equality.

    Same basis as :func:`compare_records` minus ``events_fired`` — the
    relaxed engine's entire point is firing fewer events; everything the
    paper's figures are built from (exec_time, the per-type message
    counts, the miss mix, controller occupancies) must stay exact."""
    relaxed_dict = relaxed._measured_dict()
    ref_dict = ref._measured_dict()
    relaxed_dict.pop("events_fired", None)
    return [
        key for key in relaxed_dict
        if key != "events_fired" and relaxed_dict[key] != ref_dict[key]
    ]


def check_pair_observational(workload, config, wl_args):
    """Run ``workload`` once relaxed and once on the reference engine.

    ``config`` is the reference-side config (its fastpath settings are
    kept: they are bit-identical by the proof above, and the production
    default).  Returns ``(equal, differing_field_names)``."""
    relaxed_spec = RunSpec.create(workload, relaxed_config(config), **wl_args)
    ref_spec = RunSpec.create(workload, config, **wl_args)
    program = relaxed_spec.build_program()
    relaxed = relaxed_spec.execute(program)
    ref = ref_spec.execute(program)
    diffs = compare_observational(relaxed, ref)
    return not diffs, diffs


def localize_relaxed_layer(workload, config, wl_args):
    """Name the relaxed-engine layer an observational mismatch lives in.

    Re-runs the pair with cumulative layer subsets (transport elision
    alone, + protocol lanes, + bucket queue); the first subset that
    diverges names the guilty layer."""
    saved = system_mod.RELAXED_LAYERS
    try:
        enabled = []
        for layer in RELAXED_LAYER_ORDER:
            enabled.append(layer)
            system_mod.RELAXED_LAYERS = frozenset(enabled)
            equal, _diffs = check_pair_observational(workload, config, wl_args)
            if not equal:
                return layer
        return "unlocalized"
    finally:
        system_mod.RELAXED_LAYERS = saved


def sweep_observational(variants=None, workloads=WORKLOADS, n_procs=SWEEP_PROCS,
                        quick=True, out=None):
    """Prove relaxed == reference observationally over variants x workloads.

    Returns failure tuples ``(variant_label, workload, diffs, layer)``."""
    if variants is None:
        variants = all_variants()
    failures = []
    for variant in variants:
        config = config_for_variant(variant, n_procs=n_procs)
        marks = []
        for workload in workloads:
            wl_args = workload_args(workload, quick=quick, n_procs=n_procs)
            equal, diffs = check_pair_observational(workload, config, wl_args)
            if equal:
                marks.append(f"{workload}:ok")
            else:
                layer = localize_relaxed_layer(workload, config, wl_args)
                failures.append((variant.describe(), workload, diffs, layer))
                marks.append(f"{workload}:DIFF({','.join(diffs)})")
        if out is not None:
            print(f"{variant.describe():28s} {' '.join(marks)}", file=out)
    return failures


# ----------------------------------------------------------------------
# Telemetry transparency: observed runs vs bare runs
# ----------------------------------------------------------------------
def sweep_telemetry(jobs=2, out=None):
    """Prove the harness observatory is invisible to results.

    Two obligations (the PR-2-style proof for ``repro.harness.telemetry``):

    1. *Identity*: every smoke-suite spec run under full telemetry — JSONL
       log, cProfile sidecars, and an aggressive heartbeat sampler — yields
       a :class:`~repro.stats.record.RunRecord` equal to the bare run
       (record equality already excludes the wall-time fields).
    2. *Reconciliation*: a quick-suite sweep under ``--log`` (cold pass
       executing everything, warm pass serving everything from cache)
       produces a schema-valid JSONL whose terminal events reconcile
       exactly with ``RunPool.manifest()`` — every spec exactly once per
       pass as cached or finished, zero lost events.

    Returns failure tuples ``(check, subject, diffs, layer)``; empty
    means the proof holds.
    """
    import tempfile

    from repro.harness import telemetry as T
    from repro.harness.bench import suite_specs
    from repro.harness.runpool import RunPool

    failures = []
    off = T.TelemetryConfig()  # inactive: ignores DSI_LOG/DSI_PROFILE too
    with tempfile.TemporaryDirectory(prefix="dsi-telemetry-") as tmp:
        # -- 1: record identity under full observation ------------------
        specs = [spec for _w, _p, spec in suite_specs("smoke")]
        bare = RunPool(jobs=1, telemetry=off).run_batch(specs)
        observed_cfg = T.TelemetryConfig(
            log_path=os.path.join(tmp, "identity.jsonl"),
            profile="cprofile",
            profile_dir=os.path.join(tmp, "profiles"),
            heartbeat_interval=0.01,
        )
        pool = RunPool(jobs=1, telemetry=observed_cfg)
        try:
            observed = pool.run_batch(specs)
        finally:
            pool.close()
        for spec in specs:
            if observed[spec] != bare[spec]:
                diffs = compare_records(observed[spec], bare[spec])
                failures.append(
                    ("identity", spec.describe(), diffs, "telemetry-observed run")
                )
        if out is not None:
            mark = "ok" if not failures else "DIFF"
            print(
                f"telemetry identity (smoke suite, log+profile+heartbeats): "
                f"{len(specs)} specs {mark}",
                file=out,
            )
        # -- 2: log/manifest reconciliation over a real sweep ------------
        quick = [spec for _w, _p, spec in suite_specs("quick")]
        log_path = os.path.join(tmp, "sweep.jsonl")
        sweep_cfg = T.TelemetryConfig(log_path=log_path, heartbeat_interval=0.05)
        pool = RunPool(
            jobs=jobs, cache_dir=os.path.join(tmp, "cache"), telemetry=sweep_cfg
        )
        try:
            pool.run_batch(quick)  # cold: every spec executes
            pool.run_batch(quick)  # warm: every spec is a cache hit
        finally:
            pool.close()
        events = T.load_log(log_path)  # validates every line's schema
        problems = T.reconcile(events, pool.manifest())
        if problems:
            failures.append(("reconcile", "quick-suite --log sweep", problems, "harness"))
        if out is not None:
            heartbeats = sum(1 for e in events if e["type"] == "heartbeat")
            print(
                f"telemetry reconcile (quick suite, jobs={jobs}): "
                f"{len(events)} events, {pool.executed} executed + "
                f"{pool.cache_hits} cached, {heartbeats} heartbeats "
                f"{'ok' if not problems else 'MISMATCH'}",
                file=out,
            )
    return failures


def sweep(variants=None, workloads=WORKLOADS, n_procs=SWEEP_PROCS, quick=True, out=None):
    """Prove equivalence over ``variants`` x ``workloads``.

    Returns a list of failure tuples ``(variant_label, workload, diffs,
    layer)`` — empty means the proof holds."""
    if variants is None:
        variants = all_variants()
    failures = []
    for variant in variants:
        config = config_for_variant(variant, n_procs=n_procs)
        marks = []
        for workload in workloads:
            wl_args = workload_args(workload, quick=quick, n_procs=n_procs)
            equal, diffs = check_pair(workload, config, wl_args)
            if equal:
                marks.append(f"{workload}:ok")
            else:
                layer = localize_layer(workload, config, wl_args)
                failures.append((variant.describe(), workload, diffs, layer))
                marks.append(f"{workload}:DIFF({','.join(diffs)})")
        if out is not None:
            print(f"{variant.describe():28s} {' '.join(marks)}", file=out)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.equivalence",
        description="Prove the compiled execution paths bit-identical to the "
        "interpreted reference across every protocol variant.",
    )
    parser.add_argument(
        "-k",
        metavar="SUBSTR",
        default=None,
        help="only variants whose label contains SUBSTR (e.g. FIFO, TARDIS)",
    )
    parser.add_argument(
        "-w",
        "--workloads",
        nargs="+",
        default=list(WORKLOADS),
        choices=list(WORKLOADS),
        help="workloads to sweep (default: all five paper applications)",
    )
    parser.add_argument(
        "--procs", type=int, default=SWEEP_PROCS, help="simulated processor count"
    )
    parser.add_argument(
        "--full-scale",
        action="store_true",
        help="use full-scale workload parameters instead of the quick set",
    )
    parser.add_argument(
        "--observational",
        action="store_true",
        help="prove the relaxed engine observationally equal to the reference "
        "oracle (every measured field except events_fired) instead of the "
        "compiled-vs-interpreted bit-identity proof",
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="prove the harness observatory invisible: telemetry/profile "
        "runs yield RunRecords identical to bare runs, and a quick-suite "
        "--log sweep reconciles exactly with the pool manifest",
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        print(
            "# telemetry transparency sweep: record identity (smoke suite) + "
            "log/manifest reconciliation (quick suite)"
        )
        failures = sweep_telemetry(out=sys.stdout)
        if failures:
            print(f"\nFAIL: {len(failures)} telemetry check(s) failed:")
            for check, subject, diffs, layer in failures:
                print(f"  {check} / {subject}: {diffs} [{layer}]")
            return 1
        print("\nOK: telemetry-observed runs identical to bare runs; "
              "log reconciles with manifest (zero lost events)")
        return 0

    if args.observational and os.environ.get("DSI_MODE"):
        print(
            "equivalence: DSI_MODE is set — both sides of the observational "
            "comparison would run the same engine; unset it first.",
            file=sys.stderr,
        )
        return 2

    if os.environ.get("DSI_NO_FASTPATH"):
        print(
            "equivalence: DSI_NO_FASTPATH is set — every config would take the "
            "interpreted paths and the comparison would be vacuous; unset it first.",
            file=sys.stderr,
        )
        return 2

    variants = all_variants()
    if args.k:
        variants = [v for v in variants if args.k in v.describe()]
        if not variants:
            print(f"equivalence: no variant label contains {args.k!r}", file=sys.stderr)
            return 2

    pairs = len(variants) * len(args.workloads)
    mode = "observational (relaxed vs reference)" if args.observational else "bit-identity"
    print(
        f"# equivalence sweep [{mode}]: {len(variants)} variants x "
        f"{len(args.workloads)} workloads = {pairs} pairs "
        f"({args.procs} processors, {'full' if args.full_scale else 'quick'} scale)"
    )
    sweep_fn = sweep_observational if args.observational else sweep
    failures = sweep_fn(
        variants,
        workloads=args.workloads,
        n_procs=args.procs,
        quick=not args.full_scale,
        out=sys.stdout,
    )
    if failures:
        print(f"\nFAIL: {len(failures)} of {pairs} pairs diverged:")
        for label, workload, diffs, layer in failures:
            print(f"  {label} / {workload}: {', '.join(diffs)} [{layer}]")
        return 1
    if args.observational:
        print(f"\nOK: all {pairs} pairs observationally equal (events_fired excluded)")
    else:
        print(f"\nOK: all {pairs} pairs bit-identical (telemetry excluded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

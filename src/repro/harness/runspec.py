"""Declarative run specifications.

A :class:`RunSpec` names one simulation — a registered workload, its
generator arguments, and a full :class:`~repro.config.SystemConfig` — as
a frozen, hashable value.  Specs are the planning currency of the
harness: experiments declare every run up front, a
:class:`~repro.harness.runpool.RunPool` executes the batch (fanning out
across processes and consulting the persistent result cache), and the
experiments then collect the resulting
:class:`~repro.stats.record.RunRecord` values.

Because a spec carries only names and plain values, it pickles cheaply
into worker processes and digests into a stable content address
(:meth:`RunSpec.key`) for the on-disk cache.
"""

import enum
import hashlib
import json
from dataclasses import dataclass, fields

from repro.config import SystemConfig
from repro.stats.record import RunRecord
from repro.system import Machine
from repro.workloads import by_name


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully described by value."""

    workload: str
    workload_args: tuple  # sorted (name, value) pairs for the generator
    config: SystemConfig

    @classmethod
    def create(cls, workload, config, **workload_args):
        """Normalize keyword generator arguments into a frozen spec."""
        return cls(workload, tuple(sorted(workload_args.items())), config)

    # ------------------------------------------------------------------
    def args_dict(self):
        return dict(self.workload_args)

    def build_program(self):
        """Regenerate the workload program (deterministic by seed)."""
        return by_name(self.workload, **self.args_dict())

    def execute(self, program=None, observer=None):
        """Run the simulation this spec describes; returns a
        :class:`~repro.stats.record.RunRecord`.

        ``observer`` is the zero-overhead-when-disabled telemetry hook
        (``observer is not None``, mirroring the probe bus guard): an
        object with ``attach(machine)``/``detach()`` — e.g. the harness
        :class:`~repro.harness.telemetry.HeartbeatSampler` — that only
        *reads* live machine counters.  Unlike an ``instrument`` it does
        not alter engine selection or results.
        """
        if program is None:
            program = self.build_program()
        machine = Machine(self.config, program)
        if observer is not None:
            observer.attach(machine)
            try:
                result = machine.run()
            finally:
                observer.detach()
        else:
            result = machine.run()
        return RunRecord.from_result(result)

    # ------------------------------------------------------------------
    def to_dict(self):
        """Canonical plain-value form (enums flattened) used for hashing
        and cache metadata."""
        return {
            "workload": self.workload,
            "workload_args": self.args_dict(),
            "config": _config_dict(self.config),
        }

    def key(self):
        """Stable content address of this spec (sha256 hex digest)."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def describe(self):
        """Short human-readable label, e.g. ``em3d/SC+DSI(V)``."""
        return f"{self.workload}/{self.config.describe()}"

    def __repr__(self):
        return f"RunSpec({self.describe()}, key={self.key()[:12]})"


def _config_dict(config):
    out = {}
    for field in fields(config):
        value = getattr(config, field.name)
        out[field.name] = value.value if isinstance(value, enum.Enum) else value
    return out

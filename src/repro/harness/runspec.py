"""Declarative run specifications.

A :class:`RunSpec` names one simulation — a registered workload, its
generator arguments, and a full :class:`~repro.config.SystemConfig` — as
a frozen, hashable value.  Specs are the planning currency of the
harness: experiments declare every run up front, a
:class:`~repro.harness.runpool.RunPool` executes the batch (fanning out
across processes and consulting the persistent result cache), and the
experiments then collect the resulting
:class:`~repro.stats.record.RunRecord` values.

Because a spec carries only names and plain values, it pickles cheaply
into worker processes and digests into a stable content address
(:meth:`RunSpec.key`) for the on-disk cache.
"""

import enum
import hashlib
import json
from dataclasses import dataclass, fields

from repro.config import SystemConfig
from repro.errors import ReproError
from repro.stats.record import RunRecord
from repro.system import Machine
from repro.workloads import CATALOG, EXTRAS, by_name


class SpecValidationError(ReproError):
    """A JSON RunSpec payload failed strict validation.

    Raised by :meth:`RunSpec.from_dict` with *every* problem collected
    (not just the first), so a service client gets one structured answer
    for a bad submission.  ``errors`` is a list of
    ``{"field", "value", "reason"}`` dicts; :meth:`to_payload` is the
    JSON body the sweep server returns with a 400.
    """

    def __init__(self, errors):
        self.errors = list(errors)
        summary = "; ".join(
            f"{entry['field']}: {entry['reason']}" for entry in self.errors
        )
        super().__init__(f"invalid RunSpec payload — {summary}")

    def to_payload(self):
        return {"error": "invalid RunSpec payload", "details": self.errors}


@dataclass(frozen=True)
class RunSpec:
    """One simulation, fully described by value."""

    workload: str
    workload_args: tuple  # sorted (name, value) pairs for the generator
    config: SystemConfig

    @classmethod
    def create(cls, workload, config, **workload_args):
        """Normalize keyword generator arguments into a frozen spec."""
        return cls(workload, tuple(sorted(workload_args.items())), config)

    # ------------------------------------------------------------------
    def args_dict(self):
        return dict(self.workload_args)

    def build_program(self):
        """Regenerate the workload program (deterministic by seed)."""
        return by_name(self.workload, **self.args_dict())

    def execute(self, program=None, observer=None):
        """Run the simulation this spec describes; returns a
        :class:`~repro.stats.record.RunRecord`.

        ``observer`` is the zero-overhead-when-disabled telemetry hook
        (``observer is not None``, mirroring the probe bus guard): an
        object with ``attach(machine)``/``detach()`` — e.g. the harness
        :class:`~repro.harness.telemetry.HeartbeatSampler` — that only
        *reads* live machine counters.  Unlike an ``instrument`` it does
        not alter engine selection or results.
        """
        if program is None:
            program = self.build_program()
        machine = Machine(self.config, program)
        if observer is not None:
            observer.attach(machine)
            try:
                result = machine.run()
            finally:
                observer.detach()
        else:
            result = machine.run()
        return RunRecord.from_result(result)

    # ------------------------------------------------------------------
    def to_dict(self):
        """Canonical plain-value form (enums flattened) used for hashing
        and cache metadata."""
        return {
            "workload": self.workload,
            "workload_args": self.args_dict(),
            "config": _config_dict(self.config),
        }

    def key(self):
        """Stable content address of this spec (sha256 hex digest)."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a spec from its :meth:`to_dict` form — strictly.

        This is the sweep service's input-validation path, so it rejects
        rather than guesses: unknown top-level or config fields, an
        unregistered workload, non-scalar generator arguments, bad enum
        values and type mismatches all fail with a
        :class:`SpecValidationError` carrying *every* problem found.
        Semantic constraints (``SystemConfig.__post_init__``) are checked
        last and reported the same way.  Round trip:
        ``RunSpec.from_dict(spec.to_dict()) == spec`` (same cache key).
        """
        errors = []

        def bad(field, value, reason):
            errors.append({"field": field, "value": _safe(value), "reason": reason})

        if not isinstance(payload, dict):
            raise SpecValidationError(
                [{"field": "", "value": _safe(payload),
                  "reason": f"spec must be a JSON object, not {type(payload).__name__}"}]
            )
        for name in sorted(set(payload) - {"workload", "workload_args", "config"}):
            bad(name, payload[name], "unknown field (have: workload, workload_args, config)")

        workload = payload.get("workload")
        if workload is None:
            bad("workload", None, "required field is missing")
        elif not isinstance(workload, str):
            bad("workload", workload, "must be a workload name (string)")
        elif workload not in CATALOG and workload not in EXTRAS:
            known = ", ".join(sorted(CATALOG) + sorted(EXTRAS))
            bad("workload", workload, f"unknown workload (have: {known})")

        args = payload.get("workload_args", {})
        if not isinstance(args, dict):
            bad("workload_args", args, "must be an object of generator arguments")
            args = {}
        else:
            for name in sorted(args):
                value = args[name]
                if not isinstance(name, str):
                    bad(f"workload_args.{name}", value, "argument names must be strings")
                elif not isinstance(value, (bool, int, float, str)):
                    bad(
                        f"workload_args.{name}", value,
                        "generator arguments must be JSON scalars "
                        f"(got {type(value).__name__})",
                    )

        config_payload = payload.get("config", {})
        config_fields = {}
        if not isinstance(config_payload, dict):
            bad("config", config_payload, "must be an object of SystemConfig fields")
        else:
            known = {field.name: field for field in fields(SystemConfig)}
            for name in sorted(config_payload):
                value = config_payload[name]
                field = known.get(name)
                where = f"config.{name}"
                if field is None:
                    bad(where, value, "unknown SystemConfig field")
                    continue
                default = field.default
                if isinstance(default, enum.Enum):
                    enum_type = type(default)
                    try:
                        config_fields[name] = (
                            value if isinstance(value, enum_type) else enum_type(value)
                        )
                    except ValueError:
                        have = ", ".join(repr(member.value) for member in enum_type)
                        bad(where, value, f"bad {enum_type.__name__} value (have: {have})")
                elif isinstance(default, bool):
                    if not isinstance(value, bool):
                        bad(where, value, "must be a boolean")
                    else:
                        config_fields[name] = value
                elif isinstance(default, int):
                    if isinstance(value, bool) or not isinstance(value, int):
                        bad(where, value, "must be an integer")
                    else:
                        config_fields[name] = value
                else:  # pragma: no cover - no such fields today
                    config_fields[name] = value
        if errors:
            raise SpecValidationError(errors)
        try:
            config = SystemConfig(**config_fields)
        except ReproError as exc:
            raise SpecValidationError(
                [{"field": "config", "value": None, "reason": str(exc)}]
            ) from exc
        return cls.create(workload, config, **args)

    def describe(self):
        """Short human-readable label, e.g. ``em3d/SC+DSI(V)``."""
        return f"{self.workload}/{self.config.describe()}"

    def __repr__(self):
        return f"RunSpec({self.describe()}, key={self.key()[:12]})"


def _safe(value):
    """A JSON-representable echo of a rejected value (error payloads must
    always serialize, whatever garbage arrived)."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        return repr(value)


def _config_dict(config):
    out = {}
    for field in fields(config):
        value = getattr(config, field.name)
        out[field.name] = value.value if isinstance(value, enum.Enum) else value
    return out

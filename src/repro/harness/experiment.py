"""Experiment runner with program/run caching."""

import sys
import time

from repro.harness.configs import workload_args
from repro.stats.report import format_table
from repro.system import Machine
from repro.workloads import by_name


class ExperimentResult:
    """Outcome of one experiment (one table or figure)."""

    def __init__(self, experiment_id, title, headers, rows, notes=""):
        self.experiment_id = experiment_id
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def format(self):
        text = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            text += "\n" + self.notes
        return text

    def row_dicts(self):
        return [dict(zip(self.headers, row)) for row in self.rows]

    def __repr__(self):
        return f"ExperimentResult({self.experiment_id}, rows={len(self.rows)})"


class ExperimentRunner:
    """Builds workloads once and memoizes simulation runs.

    Parameters
    ----------
    n_procs:
        Machine size (the paper uses 32).
    quick:
        Use reduced workload parameters — for tests and benchmark CI runs.
    verbose:
        Print one line per simulation run to stderr.
    """

    def __init__(self, n_procs=32, quick=False, verbose=False):
        self.n_procs = n_procs
        self.quick = quick
        self.verbose = verbose
        self._programs = {}
        self._runs = {}
        self.total_sim_runs = 0

    def program(self, name, **extra_args):
        key = (name, tuple(sorted(extra_args.items())))
        if key not in self._programs:
            args = workload_args(name, quick=self.quick, n_procs=self.n_procs)
            args.update(extra_args)
            self._programs[key] = by_name(name, **args)
        return self._programs[key]

    def run(self, workload, config, **workload_extra):
        """Simulate ``workload`` under ``config`` (memoized)."""
        program = self.program(workload, **workload_extra)
        key = (workload, tuple(sorted(workload_extra.items())), config)
        if key in self._runs:
            return self._runs[key]
        started = time.time()
        result = Machine(config, program).run()
        self.total_sim_runs += 1
        if self.verbose:
            print(
                f"[run {self.total_sim_runs}] {workload:10s} {config.describe():12s} "
                f"cache={config.cache_size // 1024}KB net={config.network_latency} "
                f"exec={result.exec_time} ({time.time() - started:.1f}s)",
                file=sys.stderr,
            )
        self._runs[key] = result
        return result

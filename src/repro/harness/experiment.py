"""Experiment runner: plan/collect orchestration over a RunPool.

Experiments run in two phases.  In the *plan* phase an experiment module
declares every simulation it needs as
:class:`~repro.harness.runspec.RunSpec` values and hands them to
:meth:`ExperimentRunner.prefetch`, which executes the whole batch through
the :class:`~repro.harness.runpool.RunPool` — in parallel when the pool
has more than one job, against the persistent result cache when one is
configured.  In the *collect* phase the module reads the finished
:class:`~repro.stats.record.RunRecord` values back (:meth:`run` /
:meth:`run_spec`) and formats its table.

``run()`` also works without a prior ``prefetch`` — an undeclared spec is
simply a batch of one — so exploratory code and tests keep the old
one-call interface.
"""

from repro.harness.configs import workload_args
from repro.harness.runpool import RunPool
from repro.harness.runspec import RunSpec
from repro.stats.report import format_table
from repro.workloads import by_name


class ExperimentResult:
    """Outcome of one experiment (one table or figure)."""

    def __init__(self, experiment_id, title, headers, rows, notes=""):
        self.experiment_id = experiment_id
        self.title = title
        self.headers = headers
        self.rows = rows
        self.notes = notes

    def format(self):
        text = format_table(self.headers, self.rows, title=f"{self.experiment_id}: {self.title}")
        if self.notes:
            text += "\n" + self.notes
        return text

    def row_dicts(self):
        return [dict(zip(self.headers, row)) for row in self.rows]

    def to_dict(self):
        """Machine-readable form (the CLI's ``--json`` payload)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "row_dicts": self.row_dicts(),
            "notes": self.notes,
        }

    def __repr__(self):
        return f"ExperimentResult({self.experiment_id}, rows={len(self.rows)})"


class ExperimentRunner:
    """Declares, executes and memoizes simulation runs.

    Parameters
    ----------
    n_procs:
        Machine size (the paper uses 32).
    quick:
        Use reduced workload parameters — for tests and benchmark CI runs.
    verbose:
        Print one line per simulation run (or cache hit) to stderr.
    jobs:
        Worker processes for batch execution (``1`` = in-process serial).
    cache_dir:
        Directory for the persistent result cache (``None`` = off).
    use_cache:
        ``False`` bypasses the persistent cache.
    telemetry:
        A :class:`~repro.harness.telemetry.TelemetryConfig` forwarded to
        the pool (``--log``/``--live``/``--profile``); ``None`` consults
        the ``DSI_LOG``/``DSI_PROFILE`` environment.
    """

    def __init__(self, n_procs=32, quick=False, verbose=False, jobs=1,
                 cache_dir=None, use_cache=True, telemetry=None):
        self.n_procs = n_procs
        self.quick = quick
        self.verbose = verbose
        self.pool = RunPool(
            jobs=jobs, cache_dir=cache_dir, use_cache=use_cache, verbose=verbose,
            telemetry=telemetry,
        )
        self._programs = {}
        self._records = {}

    def close(self):
        """Flush and close the pool's telemetry sinks."""
        self.pool.close()

    # ------------------------------------------------------------------
    @property
    def total_sim_runs(self):
        """Simulations actually executed (cache hits excluded)."""
        return self.pool.executed

    @property
    def cache_hits(self):
        return self.pool.cache_hits

    # ------------------------------------------------------------------
    # Plan phase
    # ------------------------------------------------------------------
    def spec(self, workload, config, n_procs=None, **extra_args):
        """Declare one run: resolve the workload's generator arguments at
        this runner's scale and freeze them into a RunSpec."""
        args = workload_args(workload, quick=self.quick, n_procs=n_procs or self.n_procs)
        args.update(extra_args)
        return RunSpec.create(workload, config, **args)

    def prefetch(self, specs):
        """Execute every not-yet-collected spec as one pool batch."""
        missing = []
        seen = set()
        for spec in specs:
            if spec not in self._records and spec not in seen:
                seen.add(spec)
                missing.append(spec)
        if missing:
            self._records.update(self.pool.run_batch(missing))

    # ------------------------------------------------------------------
    # Collect phase
    # ------------------------------------------------------------------
    def run_spec(self, spec):
        """The RunRecord for ``spec`` (executing a batch of one if it was
        never prefetched)."""
        record = self._records.get(spec)
        if record is None:
            self.prefetch([spec])
            record = self._records[spec]
        return record

    def run(self, workload, config, n_procs=None, **workload_extra):
        """Simulate ``workload`` under ``config`` (memoized)."""
        return self.run_spec(self.spec(workload, config, n_procs=n_procs, **workload_extra))

    # ------------------------------------------------------------------
    def program(self, name, **extra_args):
        """Build (and memoize) a workload program in-process — for code
        that inspects the program itself rather than running it."""
        key = (name, tuple(sorted(extra_args.items())))
        if key not in self._programs:
            args = workload_args(name, quick=self.quick, n_procs=self.n_procs)
            args.update(extra_args)
            self._programs[key] = by_name(name, **args)
        return self._programs[key]

"""Figure 4 (and the §5.2 network-latency text): the 1000-cycle network.

Identical sweep to Figure 3 at ``SLOW_NET`` — the paper's Figure 4 shows
the 2 MB cache; the accompanying text gives the 256 KB numbers, so both
cache sizes are reported here.
"""

from repro.harness import paper_reference
from repro.harness.configs import SLOW_NET
from repro.harness.experiment import ExperimentResult
from repro.harness import figure3

EXPERIMENT_ID = "figure4"


def specs(runner):
    """Plan: the Figure 3 grid at the 1000-cycle network."""
    return figure3.specs(runner, latency=SLOW_NET)


def run(runner):
    inner = figure3.run(runner, latency=SLOW_NET, reference=paper_reference.FIGURE4)
    return ExperimentResult(
        EXPERIMENT_ID,
        "Impact of network latency (1000-cycle network)",
        inner.headers,
        inner.rows,
        notes=inner.notes,
    )

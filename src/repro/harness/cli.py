"""Command-line front end: ``dsi-sim`` / ``python -m repro.harness.cli``.

Examples::

    dsi-sim figure3                  # full-scale reproduction of Figure 3
    dsi-sim all --quick --procs 8    # fast sanity sweep of every experiment
    dsi-sim ablation:fifo_depth      # one ablation
    dsi-sim bars --quick --procs 8   # Figure 3 as terminal stacked bars
    dsi-sim list                     # show available experiments

    dsi-sim run --workload em3d --protocol V --procs 16
                                     # one simulation with full statistics
    dsi-sim gen --workload sparse -o sparse.npz
                                     # export a workload trace for reuse
    dsi-sim run --trace sparse.npz --protocol W
                                     # simulate a saved trace
"""

import argparse
import sys
import time

from repro.harness import ablations, figure2, figure3, figure4, figure5, figure6, table2, table3
from repro.harness.configs import (
    LARGE_CACHE,
    PROTOCOLS,
    SMALL_CACHE,
    WORKLOADS,
    paper_config,
    workload_args,
)
from repro.harness.experiment import ExperimentRunner
from repro.stats.ascii_chart import stacked_bars
from repro.stats.report import format_table
from repro.system import Machine
from repro.trace.io import load_program, save_program
from repro.workloads import by_name

EXPERIMENTS = {
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "table2": table2.run,
    "table3": table3.run,
}
for name, fn in ablations.ALL.items():
    EXPERIMENTS[f"ablation:{name}"] = fn

#: "all" runs the paper experiments (not the ablations).
PAPER_SET = ("figure2", "figure3", "figure4", "figure5", "figure6", "table2", "table3")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="dsi-sim",
        description="Reproduce the tables and figures of Lebeck & Wood, "
        "'Dynamic Self-Invalidation' (ISCA 1995).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'ablations', 'bars', "
        "'run', or 'gen'",
    )
    parser.add_argument("--procs", type=int, default=32, help="machine size (default 32)")
    parser.add_argument(
        "--quick", action="store_true", help="reduced workload sizes (fast sanity run)"
    )
    parser.add_argument("--verbose", action="store_true", help="log each simulation run")
    # run / gen options
    parser.add_argument("--workload", choices=sorted(WORKLOADS), help="workload for run/gen")
    parser.add_argument("--trace", help="run: simulate a saved .npz trace instead")
    parser.add_argument(
        "--protocol", default="SC", help="run: protocol label (SC, W, S, V, W+V, V-FIFO)"
    )
    parser.add_argument(
        "--cache", type=int, default=SMALL_CACHE, help="run: cache bytes (default 16384)"
    )
    parser.add_argument(
        "--latency", type=int, default=100, help="run: network latency in cycles"
    )
    parser.add_argument("-o", "--output", help="gen: output .npz path")
    parser.add_argument(
        "--show-trace",
        type=int,
        default=0,
        metavar="N",
        help="run: print the first N protocol messages",
    )
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        for extra in ("bars", "run", "gen", "describe"):
            print(extra)
        return 0
    if args.experiment == "bars":
        return _bars(args)
    if args.experiment == "run":
        return _run_one(args)
    if args.experiment == "gen":
        return _generate(args)
    if args.experiment == "describe":
        return _describe(args)
    if args.experiment == "all":
        selected = PAPER_SET
    elif args.experiment == "ablations":
        selected = tuple(f"ablation:{name}" for name in ablations.ALL)
    elif args.experiment in EXPERIMENTS:
        selected = (args.experiment,)
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    runner = ExperimentRunner(n_procs=args.procs, quick=args.quick, verbose=args.verbose)
    started = time.time()
    for name in selected:
        result = EXPERIMENTS[name](runner)
        print(result.format())
        print()
    print(
        f"# {runner.total_sim_runs} simulation runs in {time.time() - started:.1f}s "
        f"(procs={args.procs}{', quick' if args.quick else ''})"
    )
    return 0


def _bars(args):
    """Render Figure 3 as terminal stacked bars, one group per workload."""
    runner = ExperimentRunner(n_procs=args.procs, quick=args.quick, verbose=args.verbose)
    for workload in WORKLOADS:
        results = []
        for protocol in PROTOCOLS:
            config = paper_config(protocol, cache=SMALL_CACHE, n_procs=args.procs)
            result = runner.run(workload, config)
            result.label = protocol
            results.append(result)
        print(stacked_bars(results, title=f"{workload} (normalized to SC)"))
        print()
    return 0


def _load_run_program(args):
    if args.trace:
        return load_program(args.trace)
    if not args.workload:
        print("run: need --workload or --trace", file=sys.stderr)
        return None
    return by_name(
        args.workload, **workload_args(args.workload, quick=args.quick, n_procs=args.procs)
    )


def _run_one(args):
    """One simulation with the full statistics dump."""
    program = _load_run_program(args)
    if program is None:
        return 2
    config = paper_config(
        args.protocol,
        cache=args.cache,
        latency=args.latency,
        n_procs=program.n_procs,
    )
    started = time.time()
    machine = Machine(config, program)
    tracer = None
    if args.show_trace:
        from repro.stats.tracer import MessageTracer, attach_tracer

        tracer = attach_tracer(machine, MessageTracer(limit=args.show_trace))
    result = machine.run()
    wall = time.time() - started
    if tracer is not None:
        print(tracer.format())
        print()
    print(f"workload: {program.describe()}")
    print(f"protocol: {config.describe()}  cache={config.cache_size // 1024}KB "
          f"net={config.network_latency}\n")
    fractions = result.aggregate_breakdown().fractions()
    rows = [[category, f"{fractions[category]:.3f}"] for category in fractions if fractions[category]]
    print(format_table(["category", "fraction"], rows, title="execution-time breakdown"))
    print()
    message_rows = sorted(result.messages.network.items())
    print(format_table(["message", "count"], message_rows, title="network messages"))
    print()
    print(f"execution time: {result.exec_time} cycles")
    print(f"miss rate: {result.misses.miss_rate():.4f}")
    print(f"self-invalidations: {result.misses.self_invalidations}")
    print(f"directory occupancy: {result.dir_occupancy():.3f}")
    print(f"({result.events_fired} events in {wall:.1f}s)")
    return 0


def _describe(args):
    """Static sharing-pattern profile of a workload (no simulation)."""
    from repro.stats.profile import analyze_program

    program = _load_run_program(args)
    if program is None:
        return 2
    print(analyze_program(program).format())
    return 0


def _generate(args):
    """Export a generated workload trace to .npz."""
    if not args.workload or not args.output:
        print("gen: need --workload and --output", file=sys.stderr)
        return 2
    program = by_name(
        args.workload, **workload_args(args.workload, quick=args.quick, n_procs=args.procs)
    )
    save_program(program, args.output)
    print(f"wrote {program.describe()} -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Command-line front end: ``dsi-sim`` / ``python -m repro.harness.cli``.

Examples::

    dsi-sim figure3                  # full-scale reproduction of Figure 3
    dsi-sim all --quick --procs 8    # fast sanity sweep of every experiment
    dsi-sim all --jobs 8 --cache-dir ~/.cache/dsi
                                     # parallel sweep with a persistent cache
    dsi-sim ablation:fifo_depth      # one ablation
    dsi-sim bars --quick --procs 8   # Figure 3 as terminal stacked bars
    dsi-sim table2 --json            # machine-readable output
    dsi-sim list                     # show available experiments

    dsi-sim run --workload em3d --protocol V --procs 16
                                     # one simulation with full statistics
    dsi-sim run --workload em3d --perfetto trace.json --metrics m.json
                                     # instrumented run: Perfetto trace +
                                     # metrics dump (see docs/OBSERVABILITY.md)
    dsi-sim trace em3d --block 130   # per-block coherence timeline
    dsi-sim why em3d --protocol V    # causal cycle accounting: where did
                                     # every cycle go? (+ top-K transaction
                                     # chains; see docs/OBSERVABILITY.md)
    dsi-sim why em3d --protocol V --diff SC
                                     # mechanistic two-variant diff
    dsi-sim trace em3d --txn 412     # replay one costly transaction as an
                                     # ASCII causal timeline
    dsi-sim analyze migratory        # sharing-pattern classification +
                                     # DSI-accuracy report + runtime audit
    dsi-sim bench --suite quick      # benchmark snapshot -> BENCH_*.json
    dsi-sim bench --compare old.json new.json --threshold 0.15
                                     # regression gate (exit 1 on regression)
    dsi-sim check-protocol           # model-check every protocol variant
    dsi-sim check-protocol --variant 'WC+DSI(V)+FIFO+TO'
                                     # one variant, with its trace on failure
    dsi-sim gen --workload sparse -o sparse.npz
                                     # export a workload trace for reuse
    dsi-sim run --trace sparse.npz --protocol W
                                     # simulate a saved trace

Experiments are executed in two phases: all selected experiments first
declare their simulations as RunSpecs, the union is executed as one batch
through the run pool (``--jobs`` worker processes, persistent
``--cache-dir`` result cache), then each experiment formats its table
from the finished records.
"""

import argparse
import dataclasses
import json
import os
import sys
import time

from repro.coherence.variants import Bugs
from repro.harness import ablations, figure2, figure3, figure4, figure5, figure6, table2, table3
from repro.harness.configs import (
    PROTOCOLS,
    SMALL_CACHE,
    WORKLOADS,
    paper_config,
    workload_args,
)
from repro.harness.experiment import ExperimentRunner
from repro.stats.ascii_chart import stacked_bars
from repro.stats.record import RunRecord
from repro.stats.report import format_table
from repro.system import Machine
from repro.trace.io import load_program, save_program
from repro.workloads import by_name

EXPERIMENTS = {
    "figure2": figure2.run,
    "figure3": figure3.run,
    "figure4": figure4.run,
    "figure5": figure5.run,
    "figure6": figure6.run,
    "table2": table2.run,
    "table3": table3.run,
}
for name, fn in ablations.ALL.items():
    EXPERIMENTS[f"ablation:{name}"] = fn

#: Plan-phase counterpart of EXPERIMENTS: experiment id -> specs(runner).
#: The union of every selected experiment's specs becomes one pool batch.
PLANNERS = {
    "figure2": figure2.specs,
    "figure3": figure3.specs,
    "figure4": figure4.specs,
    "figure5": figure5.specs,
    "figure6": figure6.specs,
    "table2": table2.specs,
    "table3": table3.specs,
}
for name, fn in ablations.SPECS.items():
    PLANNERS[f"ablation:{name}"] = fn

#: "all" runs the paper experiments (not the ablations).
PAPER_SET = ("figure2", "figure3", "figure4", "figure5", "figure6", "table2", "table3")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="dsi-sim",
        description="Reproduce the tables and figures of Lebeck & Wood, "
        "'Dynamic Self-Invalidation' (ISCA 1995).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), 'all', 'ablations', 'bars', "
        "'run', 'trace', 'why', 'analyze', 'bench', 'gen', 'serve', "
        "'submit', or 'check-protocol'",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="trace/why/analyze: workload name (equivalent to --workload)",
    )
    parser.add_argument(
        "--procs",
        type=int,
        default=None,
        help="machine size (default 32; bench: the suite's pinned size)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced workload sizes (fast sanity run)"
    )
    parser.add_argument("--verbose", action="store_true", help="log each simulation run")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for simulation batches "
        "(default: all cores; 1 = serial, in-process)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent result cache; repeated sweeps of an unchanged "
        "tree re-run nothing",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache entirely"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="machine-readable JSON on stdout instead of tables",
    )
    # run / gen options
    parser.add_argument(
        "--workload",
        help="workload for run/gen/analyze: a paper application "
        f"({', '.join(sorted(WORKLOADS))}) or a synthetic kernel "
        "(see 'dsi-sim list')",
    )
    parser.add_argument("--trace", help="run: simulate a saved .npz trace instead")
    parser.add_argument(
        "--protocol",
        default="SC",
        help="run: protocol label (SC, W, S, V, W+V, V-FIFO, TARDIS, "
        "W+TARDIS; case-insensitive)",
    )
    parser.add_argument(
        "--lease",
        type=int,
        default=None,
        metavar="N",
        help="run/trace/analyze: Tardis static lease length in logical "
        "ticks (default 8; only meaningful with --protocol tardis)",
    )
    parser.add_argument(
        "--lease-adaptive",
        action="store_true",
        help="run/trace/analyze: per-block adaptive lease predictor "
        "instead of the static lease",
    )
    parser.add_argument(
        "--cache", type=int, default=SMALL_CACHE, help="run: cache bytes (default 16384)"
    )
    parser.add_argument(
        "--no-fastpath",
        action="store_true",
        help="run: interpreted execution paths only — disable the compiled "
        "transition dispatch and the direct-execution batcher (results are "
        "bit-identical either way; this is the debugging escape hatch, also "
        "available process-wide via the DSI_NO_FASTPATH environment variable)",
    )
    parser.add_argument(
        "--mode",
        choices=("reference", "relaxed"),
        default=None,
        help="run/bench: execution engine — 'reference' is the event-exact "
        "oracle, 'relaxed' retires uncontended transactions on the bucketed "
        "queue + Message-free lanes (observationally equal: every reported "
        "quantity except the internal event count matches the reference; "
        "also available process-wide via the DSI_MODE environment variable)",
    )
    parser.add_argument(
        "--latency", type=int, default=100, help="run: network latency in cycles"
    )
    parser.add_argument(
        "-o",
        "--output",
        help="gen: output .npz path; why: write the JSON report here "
        "(in addition to stdout); bench: snapshot path",
    )
    parser.add_argument(
        "--show-trace",
        type=int,
        default=0,
        metavar="N",
        help="run: print the first N protocol messages (further messages "
        "are counted and reported as dropped)",
    )
    # observability options
    parser.add_argument(
        "--perfetto",
        metavar="PATH",
        help="run/trace: write a Chrome/Perfetto trace.json of the "
        "instrumented run (open in ui.perfetto.dev); report: export the "
        "harness sweep as worker lanes",
    )
    # harness observatory options (docs/OBSERVABILITY.md)
    parser.add_argument(
        "--log",
        metavar="FILE",
        help="write the harness telemetry event stream (sweep/run/"
        "heartbeat events) as JSONL; also honored process-wide via the "
        "DSI_LOG environment variable; analyze with 'dsi-sim report FILE'",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="in-place terminal dashboard while a sweep runs: per-worker "
        "lanes, aggregate sim-cycles/s, cache hit ratio, ETA, stragglers",
    )
    parser.add_argument(
        "--profile",
        choices=("cprofile",),
        default=None,
        help="wrap each worker run in cProfile and write per-run pstats "
        "sidecars keyed by RunSpec hash (DSI_PROFILE environment variable "
        "works too); 'report' and 'bench' print the merged hot-function "
        "table.  Never affects results or the result cache",
    )
    parser.add_argument(
        "--profile-dir",
        metavar="DIR",
        default=None,
        help="directory for --profile pstats sidecars "
        "(default: <log>.profiles, else ./dsi-profiles)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON metrics/telemetry dump (run/trace: probe "
        "counts, span latencies, counter series; experiments: run "
        "manifest with per-run wall time and cache disposition)",
    )
    parser.add_argument(
        "--block",
        type=int,
        action="append",
        metavar="N",
        help="trace: restrict the message log to block N (repeatable)",
    )
    parser.add_argument(
        "--txn",
        type=int,
        action="append",
        metavar="ID",
        help="trace: replay causal transaction ID — its messages plus an "
        "ASCII chain/segment timeline (repeatable; ids come from "
        "'dsi-sim why' and are stable across instrumented re-runs)",
    )
    # analyze / why options
    parser.add_argument(
        "--top",
        type=int,
        default=12,
        metavar="N",
        help="analyze: hottest blocks to list; why: costliest "
        "transactions to show with their causal chains",
    )
    parser.add_argument(
        "--diff",
        metavar="PROTOCOL",
        help="why: also run PROTOCOL on the same workload and print a "
        "category-by-category cycle diff (e.g. --protocol V --diff SC)",
    )
    parser.add_argument(
        "--no-audit",
        action="store_true",
        help="analyze: skip the runtime message ledger and quiesce-time "
        "coherence audit",
    )
    # bench options
    parser.add_argument(
        "--suite",
        choices=("smoke", "quick", "full"),
        default="quick",
        help="bench: pinned run suite (default quick)",
    )
    parser.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="bench: compare two BENCH_*.json snapshots instead of running",
    )
    parser.add_argument(
        "--history",
        nargs="?",
        const=".",
        default=None,
        metavar="DIR",
        help="bench: list every BENCH_*.json snapshot under DIR (default "
        "'.') oldest-first with speed drift per suite+mode, instead of "
        "running",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        metavar="FRAC",
        help="bench --compare: fail when cycles/s drops more than FRAC "
        "(default 0.15)",
    )
    parser.add_argument(
        "--sim-threshold",
        type=float,
        default=None,
        metavar="FRAC",
        help="bench --compare: also fail when deterministic quantities "
        "(exec_time, messages) drift more than FRAC in either direction",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="bench: run the suite N times, keep each run's fastest wall "
        "time (default 1)",
    )
    # serve / submit options (docs/SERVICE.md)
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve: bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8775,
        help="serve: TCP port (default 8775; 0 binds an ephemeral port)",
    )
    parser.add_argument(
        "--queue-depth",
        type=int,
        default=128,
        metavar="N",
        help="serve: max queued runs before submissions get 429 "
        "(default 128)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=0.0,
        metavar="R",
        help="serve: per-tenant token-bucket refill, sweeps/second "
        "(default 0 = unlimited)",
    )
    parser.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="N",
        help="serve: per-tenant token-bucket capacity (default 2*rate)",
    )
    parser.add_argument(
        "--server",
        metavar="URL",
        default=None,
        help="submit: server base URL (default http://127.0.0.1:8775, "
        "or the DSI_SERVER environment variable)",
    )
    parser.add_argument(
        "--name",
        metavar="SWEEP",
        help="submit: a registry-named sweep (e.g. bench/smoke, "
        "paper/figure3) instead of building a spec",
    )
    parser.add_argument(
        "--tenant",
        metavar="ID",
        default=None,
        help="submit: tenant identity for rate limiting and accounting "
        "(default: the local username)",
    )
    parser.add_argument(
        "--no-wait",
        action="store_true",
        help="submit: print the sweep id and return without waiting for "
        "results",
    )
    # check-protocol options
    parser.add_argument(
        "--variant",
        metavar="SUBSTR",
        help="check-protocol: only variants whose label contains SUBSTR "
        "(e.g. 'WC+DSI(V)', '+MIG')",
    )
    parser.add_argument(
        "--bug",
        choices=tuple(f.name for f in dataclasses.fields(Bugs)),
        help="check-protocol: re-introduce a fixed historical race and "
        "show the checker catching it",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        action="append",
        metavar="N",
        help="check-protocol: model size override (repeatable; default "
        "2 nodes, plus an asymmetric 3-node run for WC variants)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=3,
        metavar="N",
        help="check-protocol: per-node processor-op budget used with "
        "--nodes (default 3)",
    )
    parser.add_argument(
        "--max-states",
        type=int,
        default=400_000,
        metavar="N",
        help="check-protocol: per-run state cap (default 400000)",
    )
    return parser


def _telemetry_config(args):
    """The harness-observatory settings from ``--log``/``--live``/
    ``--profile`` (or ``None``, letting the DSI_LOG/DSI_PROFILE
    environment resolve downstream)."""
    from repro.harness.telemetry import TelemetryConfig

    explicit = TelemetryConfig(
        log_path=getattr(args, "log", None),
        live=getattr(args, "live", False),
        profile=getattr(args, "profile", None),
        profile_dir=getattr(args, "profile_dir", None),
    )
    return TelemetryConfig.resolve(explicit if explicit.active else None)


def _make_runner(args):
    return ExperimentRunner(
        n_procs=args.procs,
        quick=args.quick,
        verbose=args.verbose,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        telemetry=_telemetry_config(args),
    )


def main(argv=None):
    try:
        return _dispatch(argv)
    except BrokenPipeError:
        # Downstream pager/head closed the pipe mid-report; that is not
        # an error.  Detach stdout so interpreter teardown doesn't
        # traceback on the implicit flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(argv):
    args = build_parser().parse_args(argv)
    if args.jobs is not None and args.jobs < 1:
        print("--jobs must be >= 1 (1 = serial, in-process)", file=sys.stderr)
        return 2
    if args.experiment == "bench":
        return _bench(args)  # before --procs defaulting: suites pin their own
    if args.experiment == "report":
        return _report(args)  # post-hoc: no simulation, no --procs
    if args.experiment == "serve":
        return _serve(args)  # before --procs defaulting: registry entries pin their own
    if args.experiment == "submit":
        return _submit(args)
    if args.procs is None:
        args.procs = 32
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        for extra in (
            "bars", "run", "trace", "why", "analyze", "bench", "gen",
            "describe", "report", "serve", "submit", "check-protocol",
        ):
            print(extra)
        return 0
    if args.experiment == "check-protocol":
        return _check_protocol(args)
    if args.experiment == "bars":
        return _bars(args)
    if args.experiment == "run":
        return _run_one(args)
    if args.experiment == "trace":
        return _trace(args)
    if args.experiment == "why":
        return _why(args)
    if args.experiment == "analyze":
        return _analyze(args)
    if args.experiment == "gen":
        return _generate(args)
    if args.experiment == "describe":
        return _describe(args)
    if args.experiment == "all":
        selected = PAPER_SET
    elif args.experiment == "ablations":
        selected = tuple(f"ablation:{name}" for name in ablations.ALL)
    elif args.experiment in EXPERIMENTS:
        selected = (args.experiment,)
    else:
        print(f"unknown experiment {args.experiment!r}; try 'list'", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    started = time.time()
    try:
        # Plan: union every selected experiment's specs into one pool
        # batch, so a multi-experiment sweep parallelizes across
        # experiments too.
        plan = []
        for name in selected:
            plan.extend(PLANNERS[name](runner))
        runner.prefetch(plan)
        # Collect: each experiment reads its finished records into a table.
        results = [EXPERIMENTS[name](runner) for name in selected]
    finally:
        runner.close()  # flush telemetry sinks even when a run fails
    wall = time.time() - started
    if args.log:
        print(f"# wrote telemetry log -> {args.log} "
              f"(analyze with: dsi-sim report {args.log})", file=sys.stderr)
    summary = (
        f"# {runner.total_sim_runs} simulation runs, {runner.cache_hits} cache hits "
        f"in {wall:.1f}s (procs={args.procs}"
        f"{', quick' if args.quick else ''}, jobs={runner.pool.jobs})"
    )
    meta = {
        "simulation_runs": runner.total_sim_runs,
        "cache_hits": runner.cache_hits,
        "wall_seconds": round(wall, 3),
        "procs": args.procs,
        "quick": args.quick,
        "jobs": runner.pool.jobs,
    }
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(
                {"meta": meta, "run_manifest": runner.pool.manifest()},
                handle,
                indent=2,
            )
        print(f"# wrote run telemetry -> {args.metrics}", file=sys.stderr)
    if args.as_json:
        payload = {
            "experiments": [result.to_dict() for result in results],
            "meta": meta,
            "run_manifest": runner.pool.manifest(),
        }
        print(json.dumps(payload, indent=2))
        print(summary, file=sys.stderr)
    else:
        for result in results:
            print(result.format())
            print()
        print(summary)
    return 0


def _row_label(row):
    guards = f"[{','.join(row.guards)}]" if row.guards else ""
    return f"{row.state.name}/{row.event.name}{guards}"


def _check_protocol(args):
    """Exhaustively model-check the transition tables of every variant.

    Exit status 1 if any variant has an invariant violation *or* an
    unreached NORMAL row (coverage regressions count as failures: a row
    the model cannot reach is either dead or misclassified).
    """
    from concurrent.futures import ProcessPoolExecutor
    from functools import partial

    from repro.coherence.explore import check_variant
    from repro.coherence.variants import NO_BUGS, enumerate_variants, tardis_variants

    variants = [v for mig in (False, True) for v in enumerate_variants(mig)]
    variants += tardis_variants()
    if args.variant:
        wanted = args.variant.lower()
        variants = [v for v in variants if wanted in v.describe().lower()]
        if not variants:
            print(f"no variant label contains {args.variant!r}", file=sys.stderr)
            return 2
    bugs = NO_BUGS
    if args.bug:
        bugs = dataclasses.replace(NO_BUGS, **{args.bug: True})
    configs = tuple((n, args.ops) for n in args.nodes) if args.nodes else None
    check = partial(
        check_variant, bugs=bugs, configs=configs, max_states=args.max_states
    )
    jobs = args.jobs or os.cpu_count() or 1
    started = time.time()
    if jobs > 1 and len(variants) > 1:
        with ProcessPoolExecutor(max_workers=min(jobs, len(variants))) as pool:
            reports = list(pool.map(check, variants))
    else:
        reports = [check(v) for v in variants]
    wall = time.time() - started
    payload = []
    for report in reports:
        uncovered = [
            _row_label(t)
            for t in report.uncovered_cache + report.uncovered_dir
        ]
        payload.append(
            {
                "variant": report.describe(),
                "ok": report.ok,
                "states": report.states,
                "violation": report.violation,
                "trace": list(report.trace),
                "uncovered": uncovered,
            }
        )
    failures = sum(1 for entry in payload if not entry["ok"])
    if args.as_json:
        print(
            json.dumps(
                {
                    "bugs": dataclasses.asdict(bugs),
                    "reports": payload,
                    "meta": {
                        "variants": len(payload),
                        "failures": failures,
                        "wall_seconds": round(wall, 3),
                    },
                },
                indent=2,
            )
        )
    else:
        for entry in payload:
            mark = "ok  " if entry["ok"] else "FAIL"
            print(f"{mark} {entry['variant']:30s} {entry['states']:>8d} states")
            if entry["violation"]:
                print(f"     violation: {entry['violation']}")
                for line in entry["trace"]:
                    print(f"       {line}")
            for label in entry["uncovered"]:
                print(f"     unreached NORMAL row: {label}")
        print(
            f"# {len(payload)} variants, {failures} failures in {wall:.1f}s "
            f"(jobs={jobs})"
        )
    return 1 if failures else 0


def _bars(args):
    """Render Figure 3 as terminal stacked bars, one group per workload."""
    runner = _make_runner(args)
    plan = {
        (workload, protocol): runner.spec(
            workload, paper_config(protocol, cache=SMALL_CACHE, n_procs=args.procs)
        )
        for workload in WORKLOADS
        for protocol in PROTOCOLS
    }
    runner.prefetch(plan.values())
    for workload in WORKLOADS:
        results = []
        for protocol in PROTOCOLS:
            result = runner.run_spec(plan[(workload, protocol)])
            result.label = protocol
            results.append(result)
        print(stacked_bars(results, title=f"{workload} (normalized to SC)"))
        print()
    return 0


def _load_run_program(args):
    if args.trace:
        return load_program(args.trace)
    if not args.workload:
        print("run: need --workload or --trace", file=sys.stderr)
        return None
    try:
        return by_name(
            args.workload,
            **workload_args(args.workload, quick=args.quick, n_procs=args.procs),
        )
    except KeyError as exc:
        print(f"unknown workload {exc.args[0]}", file=sys.stderr)
        return None


def _make_instrument(args):
    """An :class:`~repro.obs.Instrument` when any observability output was
    requested, else None (probes stay disabled: zero overhead)."""
    if not (args.perfetto or args.metrics):
        return None
    from repro.obs import Instrument

    return Instrument()


def _write_obs_outputs(args, instrument, extra):
    if instrument is None:
        return
    from repro.obs import write_metrics, write_perfetto

    if args.perfetto:
        write_perfetto(instrument, args.perfetto)
        print(f"# wrote Perfetto trace -> {args.perfetto}", file=sys.stderr)
    if args.metrics:
        write_metrics(instrument, args.metrics, extra=extra)
        print(f"# wrote metrics dump -> {args.metrics}", file=sys.stderr)


def _tracer_telemetry(tracer):
    """Run context for the metrics dump: what the MessageTracer kept and,
    crucially, what it dropped (a truncated log is only trustworthy when
    the truncation is visible)."""
    if tracer is None:
        return None
    return {
        "events": len(tracer),
        "dropped": tracer.dropped,
        "max_events": tracer.max_events,
        "blocks": sorted(tracer.blocks) if tracer.blocks else None,
    }


def _protocol_overrides(args):
    """Config overrides assembled from the protocol-tuning options."""
    overrides = {}
    if args.lease is not None:
        overrides["lease"] = args.lease
    if args.lease_adaptive:
        overrides["lease_adaptive"] = True
    if getattr(args, "no_fastpath", False):
        overrides["compiled_dispatch"] = False
        overrides["direct_execution"] = False
    if getattr(args, "mode", None):
        from repro.config import ExecutionMode

        overrides["execution_mode"] = ExecutionMode(args.mode)
    return overrides


class _RunObservatory:
    """Harness telemetry around one directly-built :class:`Machine` (the
    ``run`` verb bypasses the RunPool, so the sweep bracketing, heartbeat
    sampling and profiling happen parent-side here)."""

    def __init__(self, telemetry_config, workload, label):
        import hashlib

        from repro.harness import telemetry

        self.T = telemetry
        self.cfg = telemetry_config
        self.workload = workload
        self.label = label
        self.key = hashlib.sha256(f"{workload}|{label}".encode("utf-8")).hexdigest()
        sinks = []
        if self.cfg.log_path:
            sinks.append(telemetry.JsonlSink(self.cfg.log_path))
        if self.cfg.live:
            sinks.append(telemetry.LiveDashboard(stream=self.cfg.stream))
        self.hub = telemetry.TelemetryHub(sinks)
        self.sampler = None
        self.profiler = None

    def start(self, machine):
        from repro.harness.runpool import code_fingerprint

        T, hub = self.T, self.hub
        hub.begin_sweep(T.new_sweep_id())
        hub.emit(T.make_event(
            "sweep_begin", specs=1, pending=1, jobs=1,
            fingerprint=code_fingerprint()[:16],
        ))
        common = dict(spec_key=self.key, workload=self.workload, label=self.label)
        hub.emit(T.make_event("run_queued", **common))
        hub.emit(T.make_event("run_started", worker=os.getpid(), **common))
        self.sampler = T.HeartbeatSampler(
            hub.emit, self.key, interval=self.cfg.heartbeat_interval
        )
        self.sampler.attach(machine)
        if self.cfg.profile == "cprofile":
            import cProfile

            self.profiler = cProfile.Profile()
            self.profiler.enable()

    def finish(self, config, record=None, error=None, wall=0.0):
        T, hub = self.T, self.hub
        profile_path = None
        try:
            if self.profiler is not None:
                self.profiler.disable()
                os.makedirs(self.cfg.profile_dir, exist_ok=True)
                profile_path = self.T.profile_sidecar(self.cfg.profile_dir, self.key)
                self.profiler.dump_stats(profile_path)
            if self.sampler is not None:
                self.sampler.detach()
            common = dict(spec_key=self.key, workload=self.workload, label=self.label)
            if error is not None:
                import traceback

                hub.emit(T.make_event(
                    "run_failed",
                    error=f"{type(error).__name__}: {error}",
                    traceback="".join(traceback.format_exception(
                        type(error), error, error.__traceback__
                    )),
                    **common,
                ))
            elif record is not None:
                hub.emit(T.make_event(
                    "run_finished",
                    cache_kb=config.cache_size // 1024,
                    net=config.network_latency,
                    exec_time=record.exec_time,
                    wall_time_s=record.wall_time_s,
                    sim_cycles_per_s=record.sim_cycles_per_s,
                    profile=profile_path,
                    **common,
                ))
            hub.emit(T.make_event(
                "sweep_end",
                executed=0 if error is not None else 1,
                cache_hits=0,
                failed=1 if error is not None else 0,
                wall_s=wall,
            ))
            hub.end_sweep()
        finally:
            hub.close()
        if self.cfg.log_path:
            print(f"# wrote telemetry log -> {self.cfg.log_path} "
                  f"(analyze with: dsi-sim report {self.cfg.log_path})",
                  file=sys.stderr)


def _run_one(args):
    """One simulation with the full statistics dump."""
    program = _load_run_program(args)
    if program is None:
        return 2
    config = paper_config(
        args.protocol,
        cache=args.cache,
        latency=args.latency,
        n_procs=program.n_procs,
        **_protocol_overrides(args),
    )
    instrument = _make_instrument(args)
    telemetry_config = _telemetry_config(args)
    observatory = (
        _RunObservatory(telemetry_config, program.name, config.describe())
        if telemetry_config is not None
        else None
    )
    started = time.time()
    machine = Machine(config, program, instrument=instrument)
    tracer = None
    if args.show_trace:
        from repro.stats.tracer import MessageTracer, attach_tracer

        tracer = attach_tracer(machine, MessageTracer(max_events=args.show_trace))
    if observatory is not None:
        observatory.start(machine)
    try:
        result = machine.run()
    except Exception as exc:
        if observatory is not None:
            observatory.finish(config, error=exc, wall=time.time() - started)
        raise
    wall = time.time() - started
    record = RunRecord.from_result(result)
    record.set_timing(wall)
    if observatory is not None:
        observatory.finish(config, record=record, wall=wall)
    extra = {
        "workload": program.describe(),
        "protocol": config.describe(),
        "wall_time_s": record.wall_time_s,
        "sim_cycles_per_s": record.sim_cycles_per_s,
    }
    if tracer is not None:
        extra["message_trace"] = _tracer_telemetry(tracer)
    _write_obs_outputs(args, instrument, extra=extra)
    if args.as_json:
        payload = {
            "workload": program.describe(),
            "protocol": config.describe(),
            "cache_bytes": config.cache_size,
            "network_latency": config.network_latency,
            "wall_seconds": round(wall, 3),
            "record": record.to_dict(),
        }
        print(json.dumps(payload, indent=2))
        return 0
    if tracer is not None:
        print(tracer.format())
        print()
    print(f"workload: {program.describe()}")
    print(f"protocol: {config.describe()}  cache={config.cache_size // 1024}KB "
          f"net={config.network_latency}\n")
    fractions = result.aggregate_breakdown().fractions()
    rows = [[category, f"{fractions[category]:.3f}"] for category in fractions if fractions[category]]
    print(format_table(["category", "fraction"], rows, title="execution-time breakdown"))
    print()
    message_rows = sorted(result.messages.network.items())
    print(format_table(["message", "count"], message_rows, title="network messages"))
    print()
    print(f"execution time: {result.exec_time} cycles")
    print(f"miss rate: {result.misses.miss_rate():.4f}")
    print(f"self-invalidations: {result.misses.self_invalidations}")
    print(f"directory occupancy: {result.dir_occupancy():.3f}")
    if record.sim_cycles_per_s:
        print(
            f"({result.events_fired} events in {wall:.1f}s, "
            f"{record.sim_cycles_per_s:,.0f} cycles/s)"
        )
    else:
        print(f"({result.events_fired} events in {wall:.1f}s)")
    return 0


def _trace(args):
    """Instrumented run with an on-terminal coherence timeline.

    Always attaches the instrument (the point of the verb is to look
    inside the run); ``--block`` narrows the message table to chosen
    blocks, ``--txn`` narrows it to chosen causal transactions and
    replays each as an ASCII chain, ``--perfetto``/``--metrics``
    additionally export the trace.
    """
    from repro.obs import CausalInstrument, Instrument, ascii_timeline, format_txn
    from repro.stats.tracer import MessageTracer, attach_tracer

    if args.target and not args.workload and not args.trace:
        args.workload = args.target
    program = _load_run_program(args)
    if program is None:
        return 2
    config = paper_config(
        args.protocol,
        cache=args.cache,
        latency=args.latency,
        n_procs=program.n_procs,
        **_protocol_overrides(args),
    )
    txns = set(args.txn) if args.txn else None
    # --txn needs the causal stitcher; ids are deterministic across
    # instrumented runs, so an id from 'dsi-sim why' replays here.
    instrument = CausalInstrument(keep_txns=txns) if txns else Instrument()
    started = time.time()
    machine = Machine(config, program, instrument=instrument)
    tracer = attach_tracer(
        machine,
        MessageTracer(
            blocks=args.block,
            txns=txns,
            max_events=args.show_trace or (200 if (args.block or txns) else 40),
        ),
    )
    result = machine.run()
    wall = time.time() - started
    print(f"workload: {program.describe()}")
    print(f"protocol: {config.describe()}  cache={config.cache_size // 1024}KB "
          f"net={config.network_latency}\n")
    print(ascii_timeline(instrument))
    print()
    scopes = []
    if args.block:
        scopes.append(f"blocks {sorted(set(args.block))}")
    if txns:
        scopes.append(f"txns {sorted(txns)}")
    scope = f" ({', '.join(scopes)})" if scopes else ""
    print(f"messages{scope}:")
    print(tracer.format())
    print()
    if txns:
        for txn_id in sorted(txns):
            txn = instrument.txn(txn_id)
            if txn is None:
                print(
                    f"txn #{txn_id}: not found in this run "
                    f"({instrument.txn_total} transactions were issued; "
                    f"ids come from 'dsi-sim why' with the same workload, "
                    f"protocol and --procs)"
                )
            else:
                print(format_txn(txn))
            print()
    rows = []
    for category in instrument.CATEGORIES:
        histogram = instrument.latency[category]
        if not histogram.count:
            continue
        pct = histogram.percentiles()
        rows.append(
            [
                category,
                histogram.count,
                f"{histogram.mean():.0f}",
                pct["p50"],
                pct["p90"],
                pct["p99"],
            ]
        )
    print(
        format_table(
            ["span", "count", "mean", "p50", "p90", "p99"],
            rows,
            title="transaction latency (cycles)",
        )
    )
    print()
    print(f"execution time: {result.exec_time} cycles "
          f"({result.events_fired} events in {wall:.1f}s)")
    _write_obs_outputs(
        args,
        instrument,
        extra={
            "workload": program.describe(),
            "protocol": config.describe(),
            "message_trace": _tracer_telemetry(tracer),
        },
    )
    return 0


def _why(args):
    """Causal critical-path observatory: run one workload under the
    causal tracer and report the exact cycle accounting — every cycle of
    every node attributed to one of the ten causal categories, with a
    hard conservation check, the top-K costliest transactions as
    replayable chains, and an optional mechanistic two-variant diff."""
    from repro.obs import CausalInstrument, diff_why, format_txn, format_why, write_why

    if args.target and not args.workload and not args.trace:
        args.workload = args.target
    if args.variant:
        # ISSUE-era spelling: --variant is an alias for --protocol here
        # (check-protocol keeps its substring-filter meaning).
        args.protocol = args.variant
    program = _load_run_program(args)
    if program is None:
        return 2

    def run_variant(protocol):
        config = paper_config(
            protocol,
            cache=args.cache,
            latency=args.latency,
            n_procs=program.n_procs,
            **_protocol_overrides(args),
        )
        instrument = CausalInstrument()
        result = Machine(config, program, instrument=instrument).run()
        report = instrument.why_report(
            workload=program.describe(),
            protocol=config.describe(),
            top=args.top,
        )
        return config, instrument, result, report

    started = time.time()
    config, instrument, result, report = run_variant(args.protocol)
    diff = None
    if args.diff:
        # The --diff protocol is the *base* of the comparison: positive
        # deltas mean the primary run spends more cycles there.
        _, _, _, base_report = run_variant(args.diff)
        diff = diff_why(base_report, report)
    wall = time.time() - started
    _write_obs_outputs(
        args,
        instrument,
        extra={"workload": program.describe(), "protocol": config.describe()},
    )
    payload = dict(report)
    if diff is not None:
        payload["diff"] = diff
    if args.output:
        write_why(payload, args.output)
        print(f"# wrote why report -> {args.output}", file=sys.stderr)
    if args.as_json:
        print(json.dumps(payload, indent=2))
        return 0
    print(f"workload: {program.describe()}")
    print(f"protocol: {config.describe()}  cache={config.cache_size // 1024}KB "
          f"net={config.network_latency}\n")
    print(format_why(report, diff=diff))
    top = report["top"]
    if top:
        print()
        print(f"costliest {len(top)} transactions:")
        print()
        for entry in top:
            txn = instrument.txn(entry["txn"])
            if txn is not None:
                print(format_txn(txn))
                print()
    replay = f"dsi-sim trace {args.workload or '--trace ...'}"
    if args.protocol != "SC":
        replay += f" --protocol {args.protocol}"
    print(f"execution time: {result.exec_time} cycles ({wall:.1f}s); "
          f"replay any chain with: {replay} --txn ID")
    return 0


def _analyze(args):
    """Instrumented run with sharing-pattern classification, the
    DSI-accuracy report and the runtime accounting audit."""
    from repro.obs import AnalyticsInstrument

    if args.target and not args.workload and not args.trace:
        args.workload = args.target
    program = _load_run_program(args)
    if program is None:
        return 2
    config = paper_config(
        args.protocol,
        cache=args.cache,
        latency=args.latency,
        n_procs=program.n_procs,
        **_protocol_overrides(args),
    )
    instrument = AnalyticsInstrument(audit=not args.no_audit)
    started = time.time()
    result = Machine(config, program, instrument=instrument).run()
    wall = time.time() - started
    report = instrument.report(top=args.top)
    _write_obs_outputs(
        args,
        instrument,
        extra={"workload": program.describe(), "protocol": config.describe()},
    )
    if args.as_json:
        payload = {
            "workload": program.describe(),
            "protocol": config.describe(),
            "exec_time": result.exec_time,
            "wall_seconds": round(wall, 3),
            "report": report,
            "audit": instrument.audit_result,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"workload: {program.describe()}")
    print(f"protocol: {config.describe()}  cache={config.cache_size // 1024}KB "
          f"net={config.network_latency}\n")
    patterns = report["patterns"]
    total = report["blocks"] or 1
    rows = [
        [pattern, count, f"{count / total:.3f}"]
        for pattern, count in patterns.items()
        if count
    ]
    print(format_table(
        ["pattern", "blocks", "fraction"],
        rows,
        title=f"sharing patterns ({report['blocks']} blocks)",
    ))
    print()
    dsi = report["dsi"]
    if dsi["self_invalidations"]:
        accuracy = f"{dsi['accuracy']:.1%}" if dsi["accuracy"] is not None else "n/a"
        print(
            f"DSI speculation: {dsi['self_invalidations']} self-invalidations, "
            f"{dsi['correct']} correct, {dsi['mispredicted']} mispredicted "
            f"(accuracy {accuracy})"
        )
        by_pattern = [
            [pattern, stats["correct"], stats["mispredicted"],
             f"{stats['accuracy']:.3f}" if stats["accuracy"] is not None else "-"]
            for pattern, stats in dsi["by_pattern"].items()
            if stats["correct"] or stats["mispredicted"]
        ]
        if by_pattern:
            print()
            print(format_table(
                ["pattern", "correct", "wrong", "accuracy"],
                by_pattern,
                title="DSI accuracy by pattern",
            ))
    else:
        print("DSI speculation: no self-invalidations "
              "(protocol without DSI, or nothing marked)")
    lease = report["lease"]
    if lease["grants"] or lease["expiries"]:
        accuracy = (
            f"{lease['renewal_accuracy']:.1%}"
            if lease["renewal_accuracy"] is not None
            else "n/a"
        )
        print(
            f"Tardis leases: {lease['grants']} grants, "
            f"{lease['expiries']} expiries ({lease['renew_changed']} stale, "
            f"{lease['renew_unchanged']} still-good, "
            f"{lease['never_renewed']} never re-read; "
            f"renewal accuracy {accuracy})"
        )
    print()
    block_rows = [
        [
            row["block"], row["pattern"], row["reads"], row["writes"],
            row["readers"], row["writers"], row["self_invalidations"],
            row["si_wrong"],
        ]
        for row in report["top_blocks"]
    ]
    print(format_table(
        ["block", "pattern", "reads", "writes", "readers", "writers", "si", "si_wrong"],
        block_rows,
        title=f"hottest {len(block_rows)} blocks",
    ))
    print()
    if instrument.audit_result is not None and instrument.audit_result:
        messages = instrument.audit_result.get("messages", {})
        coherence = instrument.audit_result.get("coherence", {})
        print(
            f"audit: ok ({messages.get('sends', 0)} messages balanced, "
            f"{coherence.get('blocks', 0)} directory entries consistent "
            f"with {coherence.get('copies', 0)} cached copies)"
        )
    elif args.no_audit:
        print("audit: skipped (--no-audit)")
    if report["events_dropped"]:
        print(f"# warning: {report['events_dropped']} per-block events dropped "
              f"(classification is approximate for the hottest blocks)")
    print(f"execution time: {result.exec_time} cycles ({wall:.1f}s)")
    return 0


def _bench(args):
    """Benchmark observatory: run a pinned suite into a BENCH_*.json
    snapshot, or compare two snapshots (exit 1 on regression)."""
    from repro.errors import ConfigError
    from repro.harness import bench

    try:
        if args.history:
            snapshots, skipped = bench.collect_history(args.history)
            if not snapshots and not skipped:
                print(f"bench: no BENCH_*.json under {args.history!r}", file=sys.stderr)
                return 2
            if args.as_json:
                print(json.dumps(
                    {
                        "snapshots": [payload for _path, payload in snapshots],
                        "skipped": [
                            {"path": path, "reason": reason}
                            for path, reason in skipped
                        ],
                    },
                    indent=2,
                ))
            else:
                print(bench.format_history(snapshots))
                for path, reason in skipped:
                    print(f"# skipped {path}: {reason}", file=sys.stderr)
            return 0
        if args.compare:
            # The NEW side must always be valid — a broken fresh snapshot
            # is an error regardless of baseline state.
            new = bench.load_payload(args.compare[1])
            try:
                old = bench.load_payload(args.compare[0])
            except ConfigError as exc:
                # First run on a fresh machine/CI cache (or a baseline
                # whose schema has rotted): nothing to compare against.
                # Promote the new snapshot to baseline and succeed — the
                # *next* run gets a real comparison.
                print(f"# no baseline ({exc}) — recording new baseline")
                bench.write_payload(new, args.compare[0])
                print(f"# wrote baseline -> {args.compare[0]}", file=sys.stderr)
                return 0
            rows, regressions = bench.compare(
                old, new,
                threshold=args.threshold,
                sim_threshold=args.sim_threshold,
            )
            if args.as_json:
                print(json.dumps(
                    {"rows": rows, "regressions": len(regressions)}, indent=2
                ))
            else:
                print(bench.format_compare(rows, threshold=args.threshold))
                print()
                if regressions:
                    print(f"# {len(regressions)} regression(s)")
                else:
                    print("# no regressions")
            return 1 if regressions else 0
        payload = bench.run_bench(
            suite=args.suite,
            procs=args.procs,
            jobs=args.jobs or 1,
            repeat=args.repeat,
            verbose=args.verbose,
            mode=args.mode,
            telemetry=_telemetry_config(args),
        )
    except ConfigError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    path = args.output or bench.default_path()
    bench.write_payload(payload, path)
    if args.as_json:
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [
                run["workload"], run["protocol"], run["exec_time"],
                f"{run['wall_time_s']:.2f}" if run["wall_time_s"] else "-",
                f"{run['sim_cycles_per_s'] / 1000:.0f}k"
                if run["sim_cycles_per_s"] else "-",
                run["network_messages"],
            ]
            for run in payload["runs"]
        ]
        print(format_table(
            ["workload", "proto", "exec_time", "wall_s", "cyc/s", "messages"],
            rows,
            title=f"bench suite '{payload['suite']}' "
            f"(mode={payload['mode']}, procs={payload['procs']}, "
            f"repeat={payload['repeat']})",
        ))
        totals = payload["totals"]
        speed = totals["sim_cycles_per_s"]
        print()
        print(
            f"# total {totals['wall_time_s']:.1f}s wall, "
            f"{totals['sim_cycles']} simulated cycles"
            + (f", {speed / 1000:.0f}k cycles/s" if speed else "")
        )
        profiles = payload.get("profiles")
        if profiles and profiles["sidecars"]:
            from repro.harness.telemetry import format_profile_table, profile_table

            rows, merged = profile_table(profiles["sidecars"], top=args.top)
            print()
            print(format_profile_table(rows, merged))
    print(f"# wrote bench snapshot -> {path}", file=sys.stderr)
    return 0


def _serve(args):
    """Run the multi-tenant sweep server (``dsi-sim serve``).

    Stands up the broker (persistent workers, bounded queue, per-tenant
    rate limiting), seeds the named-sweep registry from the bench suites
    and the paper planners, and serves the /v1 HTTP API until
    interrupted.  See docs/SERVICE.md."""
    from repro.service.app import DsiService
    from repro.service.registry import default_registry

    service = DsiService(
        host=args.host,
        port=args.port,
        registry=default_registry(procs=args.procs, quick=args.quick or args.procs is None),
        jobs=args.jobs or max(2, (os.cpu_count() or 2) // 2),
        cache_dir=args.cache_dir,
        queue_depth=args.queue_depth,
        rate=args.rate,
        burst=args.burst,
        log_path=args.log,
        quiet=not args.verbose,
    )
    limits = (
        f"rate={args.rate}/s burst={service.broker.limiter.burst:g}"
        if args.rate > 0 else "rate=unlimited"
    )
    print(
        f"# dsi-sim serve on {service.url} "
        f"(jobs={service.broker.jobs}, queue_depth={args.queue_depth}, {limits}, "
        f"cache={'on: ' + args.cache_dir if args.cache_dir else 'off'}, "
        f"{len(service.registry)} registered sweeps)",
        file=sys.stderr, flush=True,
    )
    if args.log:
        print(f"# event log -> {args.log} "
              f"(analyze with: dsi-sim report {args.log})",
              file=sys.stderr, flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("# shutting down (draining in-flight runs)", file=sys.stderr)
    finally:
        service.close()
    return 0


def _submit(args):
    """Submit a sweep to a running server (``dsi-sim submit``).

    Three spec sources: ``--name`` (registry), a positional JSON file
    (a ``{"specs": [...]}`` object or a bare spec list), or
    ``--workload``/``--protocol``/``--procs`` building one spec the way
    the ``run`` verb would."""
    import getpass

    from repro.service.client import ServiceClient, ServiceClientError

    server = args.server or os.environ.get("DSI_SERVER") or "http://127.0.0.1:8775"
    try:
        tenant = args.tenant or getpass.getuser()
    except OSError:  # no passwd entry (containers)
        tenant = args.tenant or "anonymous"
    client = ServiceClient(server, tenant=tenant)
    try:
        if args.name:
            accepted = client.submit_name(args.name)
        elif args.target:
            with open(args.target, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            specs = payload["specs"] if isinstance(payload, dict) else payload
            accepted = client.submit_specs(specs)
        elif args.workload:
            procs = args.procs or 32
            spec_args = workload_args(args.workload, quick=args.quick, n_procs=procs)
            config = paper_config(
                args.protocol, cache=args.cache, latency=args.latency,
                n_procs=procs, **_protocol_overrides(args),
            )
            from repro.harness.runspec import RunSpec

            accepted = client.submit_specs(
                [RunSpec.create(args.workload, config, **spec_args)]
            )
        else:
            print("submit: need --name, a specs JSON file, or --workload",
                  file=sys.stderr)
            return 2
        sweep_id = accepted["sweep"]
        if args.no_wait:
            if args.as_json:
                print(json.dumps(accepted, indent=2))
            else:
                print(f"sweep {sweep_id} accepted "
                      f"(status: {server}/v1/sweeps/{sweep_id})")
            return 0
        status = client.wait(sweep_id, timeout=3600)
    except ServiceClientError as exc:
        hint = ""
        if exc.status == 429 and exc.retry_after:
            hint = f" (retry after {exc.retry_after:.1f}s)"
        elif exc.status is None:
            hint = " (is 'dsi-sim serve' running?)"
        print(f"submit: {exc}{hint}", file=sys.stderr)
        return 1
    except (OSError, ValueError, KeyError) as exc:
        print(f"submit: bad specs file: {exc}", file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(status, indent=2))
        return 1 if status["counts"]["failed"] else 0
    counts = status["counts"]
    rows = []
    for run in status["runs"]:
        record = run.get("record") or {}
        rows.append([
            run["workload"],
            run["label"],
            run["status"],
            record.get("exec_time", "-"),
            f"{record['wall_time_s']:.2f}" if record.get("wall_time_s") else "-",
            run["spec_key"][:12],
        ])
    print(format_table(
        ["workload", "label", "status", "exec_time", "wall_s", "key"],
        rows,
        title=f"sweep {sweep_id} ({status['state']})",
    ))
    print()
    print(
        f"# {counts['specs']} specs: {counts['executed']} executed, "
        f"{counts['cached']} cache-served, {counts['failed']} failed "
        f"in {status['wall_s']:.1f}s (tenant={tenant})"
    )
    for run in status["runs"]:
        if run["status"] == "failed":
            print(f"# failed {run['workload']}/{run['label']}: {run.get('error')}",
                  file=sys.stderr)
    return 1 if counts["failed"] else 0


def _report(args):
    """Post-hoc sweep analysis of a harness telemetry log (``--log``):
    worker utilization, queue wait vs execute time, cache-hit breakdown,
    top-K stragglers, the merged host profile, and an optional Perfetto
    export of the harness spans as worker lanes."""
    from repro.errors import ConfigError
    from repro.harness import telemetry

    if not args.target:
        print("report: need a telemetry log (dsi-sim report sweep.jsonl; "
              "produce one with --log)", file=sys.stderr)
        return 2
    try:
        events, problems = telemetry.load_log_lenient(args.target)
    except ConfigError as exc:
        print(f"report: {exc}", file=sys.stderr)
        return 2
    if not events:
        if problems:
            for problem in problems[:5]:
                print(f"report: {problem}", file=sys.stderr)
            print(f"report: {args.target} holds no valid telemetry events "
                  f"({len(problems)} bad line(s))", file=sys.stderr)
        else:
            print(f"report: {args.target} holds no telemetry events "
                  "(empty log — did the sweep run with --log?)", file=sys.stderr)
        return 1
    for problem in problems[:5]:
        print(f"# warning: {problem}", file=sys.stderr)
    if len(problems) > 5:
        print(f"# warning: ... and {len(problems) - 5} more bad lines",
              file=sys.stderr)
    if problems:
        print(f"# warning: analyzing the {len(events)} valid events "
              f"(log damaged — crashed or still-running sweep?)", file=sys.stderr)
    report = telemetry.sweep_report(events)
    if args.perfetto:
        telemetry.write_sweep_perfetto(events, args.perfetto)
        print(f"# wrote Perfetto trace -> {args.perfetto}", file=sys.stderr)
    if args.as_json:
        print(json.dumps(report, indent=2))
        return 1 if problems else 0
    print(telemetry.format_report(report, top=args.top))
    sidecars = [run["profile"] for run in report["runs"] if run.get("profile")]
    if sidecars:
        rows, merged = telemetry.profile_table(sidecars, top=args.top)
        print()
        print(telemetry.format_profile_table(rows, merged))
    return 1 if problems else 0


def _describe(args):
    """Static sharing-pattern profile of a workload (no simulation)."""
    from repro.stats.profile import analyze_program

    program = _load_run_program(args)
    if program is None:
        return 2
    print(analyze_program(program).format())
    return 0


def _generate(args):
    """Export a generated workload trace to .npz."""
    if not args.workload or not args.output:
        print("gen: need --workload and --output", file=sys.stderr)
        return 2
    program = by_name(
        args.workload, **workload_args(args.workload, quick=args.quick, n_procs=args.procs)
    )
    save_program(program, args.output)
    print(f"wrote {program.describe()} -> {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 3: performance of DSI under sequential consistency.

Five applications x four protocols (SC, W, S, V) x two cache sizes at the
100-cycle network.  Reports execution time normalized to SC plus the
stacked-bar breakdown categories of the paper's figure, side by side with
the paper's published normalized times.
"""

from repro.harness import paper_reference
from repro.harness.configs import FAST_NET, LARGE_CACHE, PROTOCOLS, SMALL_CACHE, WORKLOADS, paper_config
from repro.harness.experiment import ExperimentResult

EXPERIMENT_ID = "figure3"


def specs(runner, latency=FAST_NET):
    """Plan: five workloads x two caches x (SC base + four protocols)."""
    out = []
    for workload in WORKLOADS:
        for cache in (SMALL_CACHE, LARGE_CACHE):
            for protocol in PROTOCOLS:
                config = paper_config(protocol, cache=cache, latency=latency, n_procs=runner.n_procs)
                out.append(runner.spec(workload, config))
    return out


def run(runner, latency=FAST_NET, reference=paper_reference.FIGURE3):
    runner.prefetch(specs(runner, latency=latency))
    headers = [
        "workload",
        "cache",
        "protocol",
        "norm_time",
        "paper",
        "compute",
        "sync",
        "read_inval",
        "read_other",
        "write_inval",
        "write_other",
        "wb",
        "dsi",
    ]
    rows = []
    for workload in WORKLOADS:
        for cache, cache_label in ((SMALL_CACHE, "small"), (LARGE_CACHE, "large")):
            base = runner.run(workload, paper_config("SC", cache=cache, latency=latency, n_procs=runner.n_procs))
            for protocol in PROTOCOLS:
                config = paper_config(protocol, cache=cache, latency=latency, n_procs=runner.n_procs)
                result = runner.run(workload, config)
                fractions = result.aggregate_breakdown().fractions()
                ref = (reference or {}).get(workload, {}).get(cache_label, {}).get(protocol)
                rows.append(
                    [
                        workload,
                        cache_label,
                        protocol,
                        f"{result.normalized_to(base):.2f}",
                        paper_reference.fmt(ref),
                        f"{fractions['compute']:.2f}",
                        f"{fractions['sync']:.2f}",
                        f"{fractions['read_inval']:.2f}",
                        f"{fractions['read_other']:.2f}",
                        f"{fractions['write_inval']:.2f}",
                        f"{fractions['write_other']:.2f}",
                        f"{fractions['synch_wb'] + fractions['read_wb'] + fractions['wb_full']:.2f}",
                        f"{fractions['dsi']:.2f}",
                    ]
                )
    return ExperimentResult(
        EXPERIMENT_ID,
        "DSI under sequential consistency (normalized execution time)",
        headers,
        rows,
        notes=(
            "cache 'small'/'large' stand for the paper's 256KB/2MB (scaled 16x with "
            "the workloads); 'paper' is the published normalized time, '--' where "
            "the paper reports no significant change."
        ),
    )

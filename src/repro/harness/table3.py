"""Table 3: DSI message reduction.

WC+DSI with tear-off blocks versus plain WC: reduction in total network
messages and in explicit invalidation messages, at both cache sizes
(100-cycle network), next to the paper's values.
"""

from repro.harness import paper_reference
from repro.harness.configs import FAST_NET, LARGE_CACHE, SMALL_CACHE, WORKLOADS, paper_config
from repro.harness.experiment import ExperimentResult

EXPERIMENT_ID = "table3"


def _reduction(before, after):
    if before <= 0:
        return 0.0
    return 100.0 * (before - after) / before


def specs(runner):
    """Plan: WC and WC+DSI at both cache sizes, 100-cycle network."""
    return [
        runner.spec(workload, paper_config(protocol, cache=cache, latency=FAST_NET, n_procs=runner.n_procs))
        for workload in WORKLOADS
        for cache in (SMALL_CACHE, LARGE_CACHE)
        for protocol in ("W", "W+V")
    ]


def run(runner):
    runner.prefetch(specs(runner))
    headers = [
        "workload",
        "cache",
        "total_red_%",
        "paper_total_%",
        "inval_red_%",
        "paper_inval_%",
        "dir_occ_red_%",
        "tearoff_fills",
    ]
    rows = []
    for workload in WORKLOADS:
        for cache_label, cache in (("small", SMALL_CACHE), ("large", LARGE_CACHE)):
            base = runner.run(workload, paper_config("W", cache=cache, latency=FAST_NET, n_procs=runner.n_procs))
            dsi = runner.run(workload, paper_config("W+V", cache=cache, latency=FAST_NET, n_procs=runner.n_procs))
            paper_total, paper_inval = paper_reference.TABLE3[workload][cache_label]
            rows.append(
                [
                    workload,
                    cache_label,
                    f"{_reduction(base.messages.total_network(), dsi.messages.total_network()):.0f}",
                    paper_total,
                    f"{_reduction(base.messages.invalidations(), dsi.messages.invalidations()):.0f}",
                    paper_inval,
                    f"{_reduction(base.dir_busy_cycles, dsi.dir_busy_cycles):.0f}",
                    dsi.misses.tearoff_fills,
                ]
            )
    return ExperimentResult(
        EXPERIMENT_ID,
        "DSI message reduction (WC+DSI tear-off vs WC)",
        headers,
        rows,
        notes=(
            "Negative total reductions mean extra refetches outweighed eliminated "
            "INV/ACK traffic.  dir_occ_red checks §5.3's claim that directory "
            "controller occupancy falls with the message count, to first order."
        ),
    )

"""The paper's published numbers, transcribed for side-by-side reporting.

Values are normalized execution times (base protocol = 1.00) or message
reductions, exactly as reported in §5.2–§5.3.  Where the paper gives an
"improvement of N%" the normalized time is ``1 - N/100``.  Entries the
paper does not quantify ("little change") are recorded as ``None`` and the
harness prints them as ``--``.

These are used by EXPERIMENTS.md and the benchmark suite to show
paper-vs-measured for every experiment.
"""

# Figure 3 (100-cycle network): {workload: {cache: {protocol: norm_time}}}
# cache keys: "small" = 256 KB, "large" = 2 MB.
FIGURE3 = {
    "barnes": {
        "small": {"SC": 1.00, "W": None, "S": None, "V": None},
        "large": {"SC": 1.00, "W": None, "S": None, "V": None},
    },
    "em3d": {
        "small": {"SC": 1.00, "W": 0.75, "S": 0.85, "V": 0.87},
        "large": {"SC": 1.00, "W": 0.68, "S": 0.73, "V": 0.73},
    },
    "ocean": {
        "small": {"SC": 1.00, "W": 0.73, "S": None, "V": None},
        "large": {"SC": 1.00, "W": 0.68, "S": None, "V": None},
    },
    "sparse": {
        "small": {"SC": 1.00, "W": 0.95, "S": 0.87, "V": 0.85},
        "large": {"SC": 1.00, "W": 0.91, "S": 0.90, "V": 0.85},
    },
    "tomcatv": {
        "small": {"SC": 1.00, "W": 1.00, "S": 1.00, "V": 1.00},
        "large": {"SC": 1.00, "W": 0.96, "S": None, "V": 0.97},
    },
}

# §5.2 "Impact of Network Latency", 1000-cycle network.
FIGURE4 = {
    "barnes": {
        "small": {"SC": 1.00, "W": 0.92, "S": None, "V": None},
        "large": {"SC": 1.00, "W": None, "S": None, "V": None},  # S "increases"
    },
    "em3d": {
        "small": {"SC": 1.00, "W": 0.67, "S": 0.68, "V": 0.74},
        "large": {"SC": 1.00, "W": None, "S": 0.59, "V": 0.59},
    },
    "ocean": {
        "small": {"SC": 1.00, "W": 0.68, "S": None, "V": None},
        "large": {"SC": 1.00, "W": None, "S": 1.00, "V": 0.95},
    },
    "sparse": {
        "small": {"SC": 1.00, "W": 0.85, "S": 0.98, "V": 0.91},
        "large": {"SC": 1.00, "W": None, "S": None, "V": 0.79},  # S "increases"
    },
    "tomcatv": {
        "small": {"SC": 1.00, "W": 0.99, "S": None, "V": None},
        "large": {"SC": 1.00, "W": None, "S": 0.96, "V": 0.88},
    },
}

# Figure 5: FIFO vs selective flush (2 MB, 100-cycle, DSI-V).  The paper
# reports "little difference" except Sparse, where the FIFO forfeits the
# benefit.  Encoded as: does FIFO match flush?
FIGURE5_FIFO_MATCHES_FLUSH = {
    "barnes": True,
    "em3d": True,
    "ocean": True,
    "sparse": False,
    "tomcatv": True,
}

# Table 2: weakly consistent DSI normalized execution time (vs WC).
# {(cache, latency): {workload: value}}; cache "small"/"large", latency 100/1000.
TABLE2 = {
    ("small", 100): {"barnes": 1.01, "em3d": 0.99, "ocean": 1.00, "sparse": 0.82, "tomcatv": 1.00},
    ("large", 100): {"barnes": 1.00, "em3d": 0.99, "ocean": 1.02, "sparse": 0.84, "tomcatv": 0.97},
    ("small", 1000): {"barnes": 1.00, "em3d": 1.00, "ocean": 0.99, "sparse": 0.90, "tomcatv": 1.00},
    ("large", 1000): {"barnes": 1.00, "em3d": 1.00, "ocean": 1.04, "sparse": 0.96, "tomcatv": 0.86},
}

# Table 3: DSI message reduction under WC with tear-off blocks.
# {workload: {cache: (total_reduction_%, invalidation_reduction_%)}}
TABLE3 = {
    "barnes": {"small": (5, 45), "large": (6, 51)},
    "em3d": {"small": (17, 85), "large": (26, 100)},
    "ocean": {"small": (4, 32), "large": (12, 52)},
    "sparse": {"small": (7, 54), "large": (1, 66)},
    "tomcatv": {"small": (0, 45), "large": (21, 100)},
}


def fmt(value):
    """Format a reference value (None -> '--')."""
    if value is None:
        return "--"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)

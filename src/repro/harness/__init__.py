"""Experiment harness: regenerates every table and figure of the paper.

Each experiment module exposes ``run(runner) -> ExperimentResult``; the
:class:`~repro.harness.experiment.ExperimentRunner` caches built programs
and completed runs so the full suite shares work.  The CLI front end is
``python -m repro.harness.cli`` (installed as ``dsi-sim``).
"""

from repro.harness.configs import (
    FAST_NET,
    LARGE_CACHE,
    PROTOCOLS,
    SLOW_NET,
    SMALL_CACHE,
    WORKLOADS,
    paper_config,
)
from repro.harness.experiment import ExperimentResult, ExperimentRunner

__all__ = [
    "ExperimentResult",
    "ExperimentRunner",
    "FAST_NET",
    "LARGE_CACHE",
    "PROTOCOLS",
    "SLOW_NET",
    "SMALL_CACHE",
    "WORKLOADS",
    "paper_config",
]

"""Trace format: per-processor operation streams."""

from repro.trace.ops import (
    OP_BARRIER,
    OP_LOCK,
    OP_NAMES,
    OP_READ,
    OP_UNLOCK,
    OP_WRITE,
    Program,
    Trace,
)
from repro.trace.builder import TraceBuilder
from repro.trace.io import load_program, save_program

__all__ = [
    "OP_BARRIER",
    "OP_LOCK",
    "OP_NAMES",
    "OP_READ",
    "OP_UNLOCK",
    "OP_WRITE",
    "Program",
    "Trace",
    "TraceBuilder",
    "load_program",
    "save_program",
]

"""A convenient, append-only builder for per-processor traces."""

import numpy as np

from repro.errors import TraceError
from repro.trace.ops import (
    OP_BARRIER,
    OP_LOCK,
    OP_READ,
    OP_UNLOCK,
    OP_WRITE,
    Trace,
)


class TraceBuilder:
    """Builds one processor's :class:`~repro.trace.ops.Trace`.

    ``compute(n)`` accumulates into the *gap* of the next memory operation,
    so interleaving ``compute``/``read``/``write`` calls in program order
    produces the compact encoding directly.

    >>> b = TraceBuilder()
    >>> b.compute(10).read(0x40).write(0x40).barrier(0)
    TraceBuilder(ops=3)
    >>> trace = b.build()
    >>> trace.counts()
    {'read': 1, 'write': 1, 'barrier': 1}
    """

    def __init__(self):
        self._gaps = []
        self._kinds = []
        self._addrs = []
        self._pending_gap = 0

    def __repr__(self):
        return f"TraceBuilder(ops={len(self._kinds)})"

    def compute(self, cycles):
        """Accumulate compute cycles before the next operation."""
        if cycles < 0:
            raise TraceError("negative compute time")
        self._pending_gap += int(cycles)
        return self

    def _emit(self, kind, addr):
        self._gaps.append(self._pending_gap)
        self._kinds.append(kind)
        self._addrs.append(int(addr))
        self._pending_gap = 0
        return self

    def read(self, addr):
        return self._emit(OP_READ, addr)

    def write(self, addr):
        return self._emit(OP_WRITE, addr)

    def lock(self, addr):
        return self._emit(OP_LOCK, addr)

    def unlock(self, addr):
        return self._emit(OP_UNLOCK, addr)

    def barrier(self, barrier_id=0):
        return self._emit(OP_BARRIER, barrier_id)

    def read_range(self, base, nbytes, stride):
        """Reads covering ``[base, base+nbytes)`` at the given byte stride."""
        for offset in range(0, nbytes, stride):
            self.read(base + offset)
        return self

    def write_range(self, base, nbytes, stride):
        for offset in range(0, nbytes, stride):
            self.write(base + offset)
        return self

    def __len__(self):
        return len(self._kinds)

    def build(self):
        return Trace(
            np.array(self._gaps, dtype=np.int64),
            np.array(self._kinds, dtype=np.uint8),
            np.array(self._addrs, dtype=np.int64),
        )

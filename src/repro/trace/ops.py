"""Operation encoding.

A trace is three parallel numpy arrays per processor:

* ``gaps``  — compute cycles since the previous operation (models
  instruction execution between memory references);
* ``kinds`` — operation codes below;
* ``addrs`` — byte address (READ/WRITE), lock-word byte address
  (LOCK/UNLOCK), or barrier id (BARRIER).

The compact encoding keeps multi-million-reference programs cheap to hold
in memory and fast to iterate.
"""

import numpy as np

from repro.errors import TraceError

OP_READ = 0
OP_WRITE = 1
OP_LOCK = 2
OP_UNLOCK = 3
OP_BARRIER = 4

OP_NAMES = {
    OP_READ: "read",
    OP_WRITE: "write",
    OP_LOCK: "lock",
    OP_UNLOCK: "unlock",
    OP_BARRIER: "barrier",
}


class Trace:
    """One processor's operation stream."""

    __slots__ = ("gaps", "kinds", "addrs")

    def __init__(self, gaps, kinds, addrs):
        self.gaps = np.asarray(gaps, dtype=np.int64)
        self.kinds = np.asarray(kinds, dtype=np.uint8)
        self.addrs = np.asarray(addrs, dtype=np.int64)
        if not (len(self.gaps) == len(self.kinds) == len(self.addrs)):
            raise TraceError("trace arrays must have equal length")
        if len(self.gaps) and self.gaps.min() < 0:
            raise TraceError("negative compute gap")

    def __len__(self):
        return len(self.kinds)

    def op(self, index):
        """(gap, kind, addr) tuple for one operation (slow; for tests)."""
        return int(self.gaps[index]), int(self.kinds[index]), int(self.addrs[index])

    def counts(self):
        """{op name: count} summary."""
        unique, counts = np.unique(self.kinds, return_counts=True)
        return {OP_NAMES[int(k)]: int(c) for k, c in zip(unique, counts)}

    def barrier_count(self):
        return int(np.count_nonzero(self.kinds == OP_BARRIER))

    def total_compute(self):
        return int(self.gaps.sum())


class Program:
    """A complete workload: one trace per processor plus metadata."""

    def __init__(self, name, traces, home="segment", meta=None):
        if not traces:
            raise TraceError("a program needs at least one trace")
        self.name = name
        self.traces = list(traces)
        self.home = home  # "segment" (local allocation) or "round-robin"
        self.meta = dict(meta or {})
        self.validate()

    @property
    def n_procs(self):
        return len(self.traces)

    def validate(self):
        """Structural checks: balanced barriers, balanced lock/unlock."""
        barrier_counts = {t.barrier_count() for t in self.traces}
        if len(barrier_counts) > 1:
            raise TraceError(
                f"program {self.name!r}: unbalanced barriers across processors "
                f"({sorted(barrier_counts)})"
            )
        for proc, trace in enumerate(self.traces):
            held = {}
            for kind, addr in zip(trace.kinds, trace.addrs):
                if kind == OP_LOCK:
                    if held.get(int(addr)):
                        raise TraceError(
                            f"program {self.name!r} proc {proc}: lock {addr:#x} "
                            "acquired twice without release"
                        )
                    held[int(addr)] = True
                elif kind == OP_UNLOCK:
                    if not held.get(int(addr)):
                        raise TraceError(
                            f"program {self.name!r} proc {proc}: unlock of "
                            f"{addr:#x} not held"
                        )
                    held[int(addr)] = False
            if any(held.values()):
                raise TraceError(
                    f"program {self.name!r} proc {proc}: locks still held at end"
                )

    def total_ops(self):
        return sum(len(t) for t in self.traces)

    def describe(self):
        return {
            "name": self.name,
            "n_procs": self.n_procs,
            "total_ops": self.total_ops(),
            "barriers": self.traces[0].barrier_count(),
            "home": self.home,
            **self.meta,
        }

"""Trace persistence: save/load programs as compressed ``.npz`` archives."""

import json

import numpy as np

from repro.errors import TraceError
from repro.trace.ops import Program, Trace


def save_program(program, path):
    """Write a :class:`~repro.trace.ops.Program` to ``path`` (.npz)."""
    arrays = {}
    for proc, trace in enumerate(program.traces):
        arrays[f"gaps_{proc}"] = trace.gaps
        arrays[f"kinds_{proc}"] = trace.kinds
        arrays[f"addrs_{proc}"] = trace.addrs
    header = {
        "name": program.name,
        "n_procs": program.n_procs,
        "home": program.home,
        "meta": program.meta,
    }
    arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_program(path):
    """Load a program previously written with :func:`save_program`."""
    with np.load(path) as archive:
        if "header" not in archive:
            raise TraceError(f"{path} is not a saved program (missing header)")
        header = json.loads(bytes(archive["header"]).decode())
        traces = []
        for proc in range(header["n_procs"]):
            traces.append(
                Trace(
                    archive[f"gaps_{proc}"],
                    archive[f"kinds_{proc}"],
                    archive[f"addrs_{proc}"],
                )
            )
    return Program(header["name"], traces, home=header["home"], meta=header["meta"])

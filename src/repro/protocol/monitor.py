"""Runtime coherence invariant checking.

When ``SystemConfig.check_invariants`` is on, every cache controller
reports fills, invalidations, reads and writes to a shared
:class:`CoherenceMonitor`, which asserts:

* **Single writer** — never two exclusive copies of one block.
* **SWMR** (strict mode / SC) — an exclusive copy never coexists with a
  *tracked* shared copy elsewhere.  Under WC the parallel grant makes
  stale shared copies legal until their invalidations land, so only the
  single-writer half is enforced; tear-off copies are exempt by design.
* **Write ownership** — only the exclusive holder writes.
* **Per-processor coherence order** — coherence totally orders the writes
  to each location (the order they are *performed* with exclusivity, not
  the order they were issued); every processor's reads of that location
  must observe a non-decreasing position in that order.  Stamps are not
  compared by value: racing writes may legally complete out of issue
  order.
* **Data integrity** — a read never returns a value that was never
  written to that block.

These checks cost time and are meant for tests, not benchmarks.
"""

from repro.config import Consistency
from repro.errors import ProtocolError
from repro.memory.cache import EXCLUSIVE, SHARED


class CoherenceMonitor:
    """Cross-cache invariant checker (strict = sequential consistency)."""

    def __init__(self, config):
        self.strict = config.consistency is Consistency.SC
        self.owners = {}  # block -> node
        self.sharers = {}  # block -> set of nodes (tracked copies)
        self.tearoffs = {}  # block -> set of nodes (untracked copies)
        self.last_seen = {}  # (node, block) -> last observed write-order index
        self._write_index = {}  # block -> {stamp: position in coherence order}
        self._write_count = {}  # block -> number of writes performed
        self.violations = 0

    # ------------------------------------------------------------------
    def on_fill(self, node, block, state, data, tearoff):
        if tearoff:
            self.tearoffs.setdefault(block, set()).add(node)
            return
        if state == EXCLUSIVE:
            owner = self.owners.get(block)
            if owner is not None and owner != node:
                self._fail(f"two exclusive copies of block {block}: nodes {owner} and {node}")
            if self.strict:
                others = self.sharers.get(block, set()) - {node}
                if others:
                    self._fail(
                        f"exclusive fill of block {block} at node {node} while "
                        f"shared at {sorted(others)} (SWMR)"
                    )
            self.owners[block] = node
            self.sharers.get(block, set()).discard(node)
        elif state == SHARED:
            if self.strict and self.owners.get(block) is not None:
                self._fail(
                    f"shared fill of block {block} at node {node} while node "
                    f"{self.owners[block]} holds it exclusive (SWMR)"
                )
            self.sharers.setdefault(block, set()).add(node)
        else:
            raise ProtocolError(f"fill with invalid state {state}")

    def on_invalidate(self, node, block):
        if self.owners.get(block) == node:
            del self.owners[block]
        self.sharers.get(block, set()).discard(node)
        self.tearoffs.get(block, set()).discard(node)

    def on_write(self, node, block, stamp):
        owner = self.owners.get(block)
        if owner != node:
            self._fail(f"node {node} wrote block {block} owned by {owner}")
        position = self._write_count.get(block, 0) + 1
        self._write_count[block] = position
        self._write_index.setdefault(block, {})[stamp] = position
        self._observe(node, block, stamp)

    def on_read(self, node, block, stamp):
        self._observe(node, block, stamp)

    def _observe(self, node, block, stamp):
        if stamp == 0:
            position = 0  # initial (never-written) contents
        else:
            position = self._write_index.get(block, {}).get(stamp)
            if position is None:
                self._fail(
                    f"node {node} observed stamp {stamp} for block {block}, "
                    "which was never written there (data integrity violated)"
                )
                return
        key = (node, block)
        previous = self.last_seen.get(key, 0)
        if position < previous:
            self._fail(
                f"node {node} observed write #{position} of block {block} after "
                f"already seeing write #{previous} (coherence order violated)"
            )
        self.last_seen[key] = position

    def _fail(self, message):
        self.violations += 1
        raise ProtocolError(message)

    # ------------------------------------------------------------------
    def holders(self, block):
        """Current (owner, tracked sharers, tear-off holders) of a block."""
        return (
            self.owners.get(block),
            set(self.sharers.get(block, set())),
            set(self.tearoffs.get(block, set())),
        )


class TardisMonitor(CoherenceMonitor):
    """Invariant checker relaxed for Tardis (leased timestamps).

    Tardis never invalidates readers: a leased shared copy legally
    coexists with a remote exclusive owner *even under SC* — the reader is
    logically in the past (its pts has not crossed the copy's rts), so no
    physical-time SWMR holds.  Single-writer, write-ownership, data
    integrity and per-processor coherence order all still apply: leases
    only let a processor keep reading an *older* position, never observe
    positions out of order.
    """

    def __init__(self, config):
        super().__init__(config)
        self.strict = False

"""Cache-controller protocol FSMs (SC and WC variants with DSI hooks)."""

from repro.protocol.controller import CacheController, MSHR_READ, MSHR_UPGRADE, MSHR_WRITE
from repro.protocol.monitor import CoherenceMonitor

__all__ = [
    "CacheController",
    "CoherenceMonitor",
    "MSHR_READ",
    "MSHR_UPGRADE",
    "MSHR_WRITE",
]

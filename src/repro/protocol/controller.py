"""The per-node cache controller.

Bridges three worlds:

* the **processor** (same node, function calls): ``read`` / ``write`` /
  ``sync_write`` / ``drain_wb`` / ``flush_si``;
* the **cache** (tags, LRU, s bits, versions);
* the **network** (requests out, responses/invalidations in; every
  incoming message occupies the controller for ``cache_ctrl_cycles``).

Consistency-model behaviour:

* Under **SC** every miss blocks the processor (the ``on_done`` callback
  fires when the transaction completes, carrying the directory's measured
  invalidation wait so the processor can split its stall into the paper's
  read/write "invalidation" vs "other" categories).
* Under **WC** writes flow through the 16-entry coalescing write buffer:
  the processor continues immediately unless the buffer is full.  An entry
  retires when the data has arrived *and* the directory's single forwarded
  acknowledgment (ACK_DONE) is in.  Reads still stall; a read to a block
  with an outstanding write miss waits for the data ("read wb").

DSI behaviour: fills honour the response's ``si``/``tearoff`` flags, the
configured mechanism decides when marked blocks die, and ``flush_si``
implements the synchronization-point flush (tear-off blocks flash-clear in
a single cycle; tracked blocks are walked serially and notified to the
directory, the processor stalling until the last notification is
injected).
"""

from repro.config import Consistency, IdentifyScheme
from repro.core.identify import InvalidationHistory
from repro.core.mechanisms import make_mechanism
from repro.engine.resource import Resource
from repro.errors import ProtocolError
from repro.memory.cache import Cache, EXCLUSIVE, SHARED
from repro.memory.write_buffer import CoalescingWriteBuffer
from repro.network.message import Message, MsgKind

MSHR_READ = 0
MSHR_WRITE = 1
MSHR_UPGRADE = 2

_MSHR_NAMES = {MSHR_READ: "read miss", MSHR_WRITE: "write miss", MSHR_UPGRADE: "upgrade"}

#: statuses returned to the processor
HIT = "hit"
DONE = "done"
WAIT = "wait"


class Mshr:
    """One outstanding transaction at this cache."""

    __slots__ = (
        "kind",
        "block",
        "on_done",
        "stamp",
        "frame",
        "read_waiters",
        "sync",
        "invalidated",
        "issued_at",
        "acks_pending",
        "pending_write",
    )

    def __init__(self, kind, block, on_done=None, stamp=None, frame=None, sync=False):
        self.kind = kind
        self.block = block
        self.on_done = on_done
        self.stamp = stamp
        self.frame = frame  # pinned frame (upgrades only)
        self.read_waiters = []
        self.sync = sync
        self.invalidated = False
        self.issued_at = 0
        self.acks_pending = False
        self.pending_write = None  # (stamp,) write arrived while a read was in flight


class CacheController:
    """Cache + controller + write buffer for one node."""

    def __init__(self, sim, config, node, network, home_map, misses, monitor=None,
                 instrument=None):
        self.sim = sim
        self.config = config
        self.node = node
        self.network = network
        self.home_map = home_map
        self.misses = misses
        self.monitor = monitor
        self.obs = instrument
        self.cache = Cache(config, node)
        self.resource = Resource(sim, name=f"cc{node}")
        self.mshrs = {}
        self.write_buffer = (
            CoalescingWriteBuffer(
                config.write_buffer_entries, node=node, instrument=instrument
            )
            if config.consistency is Consistency.WC
            else None
        )
        self.mechanism = (
            make_mechanism(config, self.cache, node=node, instrument=instrument)
            if config.dsi_enabled
            else None
        )
        self._wc = config.consistency is Consistency.WC
        self._send_versions = config.dsi_enabled
        self._deferred_fills = []
        # Cache-side identification (§3.1): mark fills of blocks this cache
        # has seen repeatedly invalidated.
        self.history = (
            InvalidationHistory(config.cache_history_entries, config.cache_inval_threshold)
            if config.identify is IdentifyScheme.CACHE
            else None
        )
        # SC tear-off blocks (§3.3): at most one untracked copy, dropped at
        # the next cache miss (Scheurich's condition).
        self._sc_tearoff = config.sc_tearoff
        self._tearoff_frame = None

    # ------------------------------------------------------------------
    # Processor interface
    # ------------------------------------------------------------------
    def try_read(self, block):
        """Fast path: perform a read *hit* with no simulated latency beyond
        the hit cost (which the processor folds into computation).  Returns
        False on a miss without issuing anything."""
        frame = self.cache.lookup(block)
        if frame is None:
            return False
        if self.monitor:
            self.monitor.on_read(self.node, block, frame.data)
        self.misses.bump("read_hits")
        return True

    def try_write(self, block, stamp):
        """Fast path: absorb a write that needs no transaction — an
        exclusive hit, or (WC) a coalescing merge into an outstanding
        entry.  Returns False otherwise, issuing nothing."""
        frame = self.cache.lookup(block)
        if frame is not None and frame.state == EXCLUSIVE:
            self._apply_write(frame, stamp)
            self.misses.bump("write_hits")
            return True
        if self._wc:
            mshr = self.mshrs.get(block)
            if mshr is not None:
                if mshr.kind in (MSHR_WRITE, MSHR_UPGRADE):
                    self.write_buffer.merge(block, stamp)
                    mshr.stamp = stamp
                    self.misses.bump("write_hits")
                    return True
                if mshr.pending_write is not None:
                    self.write_buffer.merge(block, stamp)
                    mshr.pending_write = (stamp,)
                    self.misses.bump("write_hits")
                    return True
        return False

    def read(self, block, on_done):
        """Processor load.  Returns HIT, or WAIT (``on_done(inval_wait,
        reason)`` fires later; reason is "miss" or "read_wb")."""
        frame = self.cache.lookup(block)
        if frame is not None:
            if self.monitor:
                self.monitor.on_read(self.node, block, frame.data)
            self.misses.bump("read_hits")
            return HIT
        mshr = self.mshrs.get(block)
        if mshr is not None:
            if mshr.kind == MSHR_READ:
                raise ProtocolError(f"second read issued for block {block}")
            # Outstanding write miss: wait for the data ("read wb").
            mshr.read_waiters.append(on_done)
            return WAIT
        self.misses.bump("read_misses")
        self._drop_sc_tearoff()
        mshr = Mshr(MSHR_READ, block, on_done=on_done)
        self._register_mshr(mshr)
        self._issue(MsgKind.GETS, block)
        return WAIT

    def write(self, block, stamp, on_done):
        """Processor store.

        SC: returns DONE on an exclusive hit, else WAIT (``on_done`` at
        completion).  WC: returns DONE whenever the write was absorbed
        (hit, coalesced, or buffered); returns WAIT only when the write
        buffer is full, with ``on_done(0, "wb_full")`` firing once the
        write has been accepted.
        """
        frame = self.cache.lookup(block)
        if frame is not None and frame.state == EXCLUSIVE:
            self._apply_write(frame, stamp)
            self.misses.bump("write_hits")
            return DONE
        if self._wc:
            return self._wc_write(block, stamp, frame, on_done)
        return self._sc_write(block, stamp, frame, on_done, sync=False)

    def sync_write(self, block, stamp, on_done):
        """A swap-like write (lock word): always synchronous, even under
        WC — the processor stalls until the write is globally performed."""
        frame = self.cache.lookup(block)
        if frame is not None and frame.state == EXCLUSIVE:
            self._apply_write(frame, stamp)
            self.misses.bump("write_hits")
            return DONE
        return self._sc_write(block, stamp, frame, on_done, sync=True)

    def _sc_write(self, block, stamp, frame, on_done, sync):
        if block in self.mshrs:
            raise ProtocolError(f"second blocking write issued for block {block}")
        self.misses.bump("write_misses")
        self._drop_sc_tearoff()
        if frame is not None and frame.state == SHARED and not frame.tearoff:
            mshr = Mshr(MSHR_UPGRADE, block, on_done=on_done, stamp=stamp, frame=frame, sync=sync)
            frame.pinned = True
            self.misses.bump("upgrades")
            kind = MsgKind.UPGRADE
        else:
            if frame is not None:  # a tear-off copy is invisible to the map
                self.cache.invalidate(frame)
                if self.monitor:
                    self.monitor.on_invalidate(self.node, block)
            mshr = Mshr(MSHR_WRITE, block, on_done=on_done, stamp=stamp, sync=sync)
            kind = MsgKind.GETX
        self._register_mshr(mshr)
        self._issue(kind, block)
        return WAIT

    def _wc_write(self, block, stamp, frame, on_done):
        mshr = self.mshrs.get(block)
        if mshr is not None:
            if mshr.kind in (MSHR_WRITE, MSHR_UPGRADE):
                # Coalesce into the outstanding entry.
                self.write_buffer.merge(block, stamp)
                mshr.stamp = stamp
                self.misses.bump("write_hits")
                return DONE
            # A read is in flight; remember the write, upgrade after the fill.
            if mshr.pending_write is not None:
                self.write_buffer.merge(block, stamp)
                mshr.pending_write = (stamp,)
                self.misses.bump("write_hits")
                return DONE
            if self.write_buffer.full:
                self.write_buffer.when_space(lambda: self._wc_write_retry(block, stamp, on_done))
                return WAIT
            self.write_buffer.allocate(block, stamp, self.sim.now)
            mshr.pending_write = (stamp,)
            self.misses.bump("write_misses")
            return DONE
        if self.write_buffer.full:
            self.write_buffer.when_space(lambda: self._wc_write_retry(block, stamp, on_done))
            return WAIT
        self.misses.bump("write_misses")
        self.write_buffer.allocate(block, stamp, self.sim.now)
        if frame is not None and frame.state == SHARED and not frame.tearoff:
            mshr = Mshr(MSHR_UPGRADE, block, stamp=stamp, frame=frame)
            frame.pinned = True
            self.misses.bump("upgrades")
            kind = MsgKind.UPGRADE
        else:
            if frame is not None:
                self.cache.invalidate(frame)
                if self.monitor:
                    self.monitor.on_invalidate(self.node, block)
            mshr = Mshr(MSHR_WRITE, block, stamp=stamp)
            kind = MsgKind.GETX
        self._register_mshr(mshr)
        self._issue(kind, block)
        return DONE

    def _wc_write_retry(self, block, stamp, on_done):
        status = self.write(block, stamp, on_done)
        if status == WAIT:
            return  # re-queued on the buffer with the same on_done
        on_done(0, "wb_full")

    def drain_wb(self, on_done):
        """Call ``on_done()`` once the write buffer is empty (immediately
        under SC)."""
        if self.write_buffer is None:
            on_done()
        else:
            self.write_buffer.when_empty(on_done)

    # ------------------------------------------------------------------
    # Self-invalidation
    # ------------------------------------------------------------------
    def flush_si(self, on_done):
        """Self-invalidate marked blocks at a synchronization point."""
        if self.mechanism is None:
            on_done()
            return
        frames = [f for f in self.mechanism.sync_frames() if f.valid and not f.pinned]
        if not frames:
            on_done()
            return
        tearoff_frames = [f for f in frames if f.tearoff]
        tracked = [f for f in frames if not f.tearoff]
        self.misses.bump("self_invalidations", len(frames))
        cost = 1 if tearoff_frames else 0
        cost += len(tracked) * self.config.si_flush_cycles_per_block
        notices = []
        for frame in tearoff_frames:
            if self.monitor:
                self.monitor.on_invalidate(self.node, frame.tag)
            if self.obs is not None:
                self.obs.cache_self_invalidate(self.node, frame.tag, at_sync=True)
            self.cache.invalidate(frame)
        for frame in tracked:
            notices.append(self._si_notice(frame))
            if self.monitor:
                self.monitor.on_invalidate(self.node, frame.tag)
            if self.obs is not None:
                self.obs.cache_self_invalidate(self.node, frame.tag, at_sync=True)
            self.cache.invalidate(frame)
        self.resource.submit(cost, self._flush_send, notices, on_done)

    def _si_notice(self, frame):
        block = frame.tag
        dirty = frame.dirty
        return Message(
            MsgKind.SI_NOTIFY,
            block,
            src=self.node,
            dst=self.home_map.home_of(block),
            data=frame.data,
            si_marked=True,
            dirty=dirty,
            carries_data=dirty,
        )

    def _flush_send(self, notices, on_done):
        if not notices:
            on_done()
            return
        remaining = [len(notices)]

        def injected():
            remaining[0] -= 1
            if remaining[0] == 0:
                on_done()

        for msg in notices:
            self.network.send(msg, on_injected=injected)

    def _self_invalidate_now(self, frame):
        """FIFO overflow: invalidate one block immediately (no stall)."""
        if not frame.valid or frame.pinned:
            return
        if frame.tag in self.mshrs:
            # A transaction for this block is still in flight (e.g. the
            # DATA_EX fill that triggered this overflow via a stale FIFO
            # entry for the same tag).  Invalidating now would yank the
            # copy out from under the grant; keep it — the s bit stays
            # set, so the block still dies at the next sync-point flush.
            return
        self.misses.bump("self_invalidations")
        notice = None if frame.tearoff else self._si_notice(frame)
        if self.monitor:
            self.monitor.on_invalidate(self.node, frame.tag)
        if self.obs is not None:
            self.obs.cache_self_invalidate(self.node, frame.tag, at_sync=False)
        self.cache.invalidate(frame)
        if notice is not None:
            self.resource.submit(
                self.config.si_flush_cycles_per_block,
                self.network.send,
                notice,
            )

    # ------------------------------------------------------------------
    # Outgoing requests
    # ------------------------------------------------------------------
    def _register_mshr(self, mshr):
        """Record an outstanding transaction (one probe span per MSHR)."""
        mshr.issued_at = self.sim.now
        self.mshrs[mshr.block] = mshr
        if self.obs is not None:
            self.obs.mshr_open(self.node, mshr.block, _MSHR_NAMES[mshr.kind])

    def _close_mshr(self, block):
        if self.obs is not None:
            self.obs.mshr_close(self.node, block)

    def _issue(self, kind, block):
        version = self.cache.stored_version(block) if self._send_versions else None
        msg = Message(
            kind,
            block,
            src=self.node,
            dst=self.home_map.home_of(block),
            version=version,
        )
        self.resource.submit(self.config.cache_ctrl_cycles, self.network.send, msg)

    # ------------------------------------------------------------------
    # Incoming messages
    # ------------------------------------------------------------------
    def receive(self, msg):
        self.resource.submit(self.config.cache_ctrl_cycles, self._process, msg)

    def _process(self, msg):
        kind = msg.kind
        if kind is MsgKind.DATA:
            self._handle_data(msg)
        elif kind is MsgKind.DATA_EX:
            self._handle_data_ex(msg)
        elif kind is MsgKind.UPGRADE_ACK:
            self._handle_upgrade_ack(msg)
        elif kind is MsgKind.ACK_DONE:
            self._handle_ack_done(msg)
        elif kind is MsgKind.INV:
            self._handle_inv(msg)
        else:
            raise ProtocolError(f"cache {self.node} received unexpected {msg!r}")

    def _handle_data(self, msg):
        mshr = self.mshrs.pop(msg.block, None)
        if mshr is None or mshr.kind != MSHR_READ:
            raise ProtocolError(f"DATA for block {msg.block} without a read MSHR")
        self._close_mshr(msg.block)
        self._fill(
            msg.block,
            SHARED,
            msg.data,
            version=msg.version,
            si=msg.si,
            tearoff=msg.tearoff,
            then=lambda frame: self._read_complete(mshr, msg, frame),
        )

    def _read_complete(self, mshr, msg, frame):
        if self.monitor:
            self.monitor.on_read(self.node, msg.block, frame.data)
        if mshr.on_done is not None:
            mshr.on_done(msg.inval_wait, "miss")
        if mshr.pending_write is not None:
            # A WC write arrived while the read was in flight: upgrade now.
            (stamp,) = mshr.pending_write
            if frame.state == EXCLUSIVE:
                # Migratory grant: the copy is already exclusive.
                self._apply_write(frame, stamp)
                if self.write_buffer is not None and self.write_buffer.get(msg.block) is not None:
                    self.write_buffer.mark_data_arrived(msg.block)
                    self.write_buffer.retire(msg.block)
                return
            if frame.tearoff:
                # A tear-off copy is invisible to the full map; request a
                # fresh exclusive copy instead of upgrading.
                if self.monitor:
                    self.monitor.on_invalidate(self.node, msg.block)
                self.cache.invalidate(frame)
                follow_on = Mshr(MSHR_WRITE, msg.block, stamp=stamp)
                kind = MsgKind.GETX
            else:
                follow_on = Mshr(MSHR_UPGRADE, msg.block, stamp=stamp, frame=frame)
                frame.pinned = True
                self.misses.bump("upgrades")
                kind = MsgKind.UPGRADE
            self._register_mshr(follow_on)
            self._issue(kind, msg.block)

    def _handle_data_ex(self, msg):
        mshr = self.mshrs.get(msg.block)
        if mshr is None:
            raise ProtocolError(f"DATA_EX for block {msg.block} without an MSHR")
        if mshr.kind == MSHR_READ:
            # Migratory optimization: the directory answered a read with an
            # exclusive (clean) copy, anticipating the write to follow.
            self.mshrs.pop(msg.block)
            self._close_mshr(msg.block)
            self._fill(
                msg.block,
                EXCLUSIVE,
                msg.data,
                version=msg.version,
                si=msg.si,
                dirty=False,
                then=lambda frame: self._read_complete(mshr, msg, frame),
            )
            return
        if mshr.kind == MSHR_UPGRADE and mshr.frame is not None:
            mshr.frame.pinned = False
            if mshr.frame.valid and mshr.frame.tag == msg.block:
                # Defensive: the S copy survived but the directory answered
                # with data anyway; drop it before re-filling.
                if self.monitor:
                    self.monitor.on_invalidate(self.node, msg.block)
                self.cache.invalidate(mshr.frame)
            self.retry_deferred_fills()
        self._fill(
            msg.block,
            EXCLUSIVE,
            mshr.stamp,
            version=msg.version,
            si=msg.si,
            dirty=True,
            then=lambda frame: self._write_granted(mshr, msg, frame),
        )

    def _handle_upgrade_ack(self, msg):
        mshr = self.mshrs.get(msg.block)
        if mshr is None or mshr.kind != MSHR_UPGRADE:
            raise ProtocolError(f"UPGRADE_ACK for block {msg.block} without an upgrade MSHR")
        if mshr.invalidated:
            raise ProtocolError(
                f"UPGRADE_ACK for block {msg.block} after its copy was invalidated"
            )
        frame = mshr.frame
        frame.pinned = False
        self.retry_deferred_fills()
        frame.state = EXCLUSIVE
        frame.version = msg.version
        if self.monitor:
            self.monitor.on_fill(self.node, msg.block, EXCLUSIVE, frame.data, False)
        self._apply_write(frame, mshr.stamp)
        if msg.si:
            self.cache.mark_si(frame)
            self._after_si_fill(frame)
        else:
            self.cache.mark_si(frame, marked=False)
        self._write_granted(mshr, msg, frame)

    def _write_granted(self, mshr, msg, frame):
        if self.monitor and msg.kind is not MsgKind.UPGRADE_ACK:
            self.monitor.on_write(self.node, msg.block, frame.data)
        for waiter in mshr.read_waiters:
            waiter(0, "read_wb")
        mshr.read_waiters = []
        if msg.acks_pending:
            mshr.acks_pending = True
            if self.write_buffer is not None:
                self.write_buffer.mark_data_arrived(msg.block)
            return
        self._write_complete(mshr, msg.inval_wait)

    def _write_complete(self, mshr, inval_wait):
        if self.mshrs.pop(mshr.block, None) is not None:
            self._close_mshr(mshr.block)
        if self.write_buffer is not None and self.write_buffer.get(mshr.block) is not None:
            self.write_buffer.mark_data_arrived(mshr.block)
            self.write_buffer.retire(mshr.block)
        if mshr.on_done is not None:
            mshr.on_done(inval_wait, "miss")

    def _handle_ack_done(self, msg):
        mshr = self.mshrs.get(msg.block)
        if mshr is None or not mshr.acks_pending:
            raise ProtocolError(f"ACK_DONE for block {msg.block} without a waiting MSHR")
        self._write_complete(mshr, 0)

    def _handle_inv(self, msg):
        block = msg.block
        frame = self.cache.lookup(block, touch=False)
        mshr = self.mshrs.get(block)
        if frame is None:
            # The copy already left (replacement or self-invalidation in
            # flight).  Acknowledge anyway so the directory can make progress.
            self._reply(MsgKind.INV_ACK, msg)
            return
        self.misses.bump("explicit_invalidations")
        if self.history is not None:
            self.history.record(block)
        # A migratory (clean) exclusive copy acknowledges without data —
        # the directory still holds the current contents.
        dirty = frame.dirty
        data = frame.data
        if self.monitor:
            self.monitor.on_invalidate(self.node, block)
        self.cache.invalidate(frame)
        if mshr is not None and mshr.kind == MSHR_UPGRADE:
            mshr.invalidated = True  # the directory will answer with DATA_EX
        if dirty:
            self._reply(MsgKind.INV_ACK_DATA, msg, data=data, dirty=True)
        else:
            self._reply(MsgKind.INV_ACK, msg)

    def _reply(self, kind, msg, data=0, dirty=False):
        self.network.send(
            Message(
                kind,
                msg.block,
                src=self.node,
                dst=msg.src,
                data=data,
                dirty=dirty,
                carries_data=dirty,
            )
        )

    # ------------------------------------------------------------------
    # Fills, evictions, writes
    # ------------------------------------------------------------------
    def _apply_write(self, frame, stamp):
        frame.data = stamp
        frame.dirty = True
        if self.monitor:
            self.monitor.on_write(self.node, frame.tag, stamp)

    def _fill(self, block, state, data, version=None, si=False, tearoff=False, dirty=False, then=None):
        if not si and self.history is not None and self.history.should_mark(block):
            # Cache-side identification: this block keeps getting
            # invalidated under us — mark it ourselves.
            si = True
        frame, victim = self.cache.fill(
            block, state, data, version=version, s_bit=si, tearoff=tearoff, dirty=dirty
        )
        if frame is None:
            # Every frame in the set is pinned; retry when a pin releases.
            self._deferred_fills.append(
                (block, state, data, version, si, tearoff, dirty, then)
            )
            return
        if victim is not None:
            self._evict(victim)
        if self.monitor:
            self.monitor.on_fill(self.node, block, state, data, tearoff)
        if self.obs is not None:
            self.obs.cache_fill(
                self.node, block, "E" if state == EXCLUSIVE else "S", si, tearoff
            )
        if tearoff and self._sc_tearoff:
            # SC allows at most one tear-off copy per cache (§3.3).
            self._drop_sc_tearoff()
            self._tearoff_frame = (frame, block)
        if si:
            self._after_si_fill(frame)
        if then is not None:
            then(frame)

    def _drop_sc_tearoff(self):
        """Scheurich's condition: the (single) SC tear-off copy must be
        invalidated at the next cache miss."""
        if self._tearoff_frame is None:
            return
        frame, block = self._tearoff_frame
        self._tearoff_frame = None
        if frame.valid and frame.tearoff and frame.tag == block:
            if self.monitor:
                self.monitor.on_invalidate(self.node, block)
            if self.obs is not None:
                self.obs.cache_self_invalidate(self.node, block, at_sync=False)
            self.misses.bump("self_invalidations")
            self.cache.invalidate(frame)

    def _after_si_fill(self, frame):
        self.misses.bump("si_marked_fills")
        if frame.tearoff:
            self.misses.bump("tearoff_fills")
        overflow = self.mechanism.on_si_fill(frame)
        if overflow is not None:
            self.misses.bump("fifo_overflows")
            self._self_invalidate_now(overflow)

    def retry_deferred_fills(self):
        """Re-attempt fills that found every frame pinned."""
        pending, self._deferred_fills = self._deferred_fills, []
        for block, state, data, version, si, tearoff, dirty, then in pending:
            self._fill(block, state, data, version=version, si=si, tearoff=tearoff, dirty=dirty, then=then)

    def _evict(self, victim):
        self.misses.bump("replacements")
        if self.obs is not None:
            self.obs.cache_evict(self.node, victim.block, victim.dirty)
        if victim.tearoff:
            return  # untracked: vanishes silently
        if self.monitor:
            self.monitor.on_invalidate(self.node, victim.block)
        home = self.home_map.home_of(victim.block)
        if victim.dirty:
            self.network.send(
                Message(
                    MsgKind.WB,
                    victim.block,
                    src=self.node,
                    dst=home,
                    data=victim.data,
                    si_marked=victim.s_bit,
                    dirty=True,
                    carries_data=True,
                )
            )
        else:
            self.network.send(
                Message(
                    MsgKind.REPL,
                    victim.block,
                    src=self.node,
                    dst=home,
                    si_marked=victim.s_bit,
                )
            )

    # ------------------------------------------------------------------
    def deadlock_diagnostic(self):
        if self.mshrs:
            blocks = list(self.mshrs)[:8]
            return f"cache{self.node}: outstanding MSHRs for blocks {blocks}"
        if self.write_buffer is not None and not self.write_buffer.empty:
            return f"cache{self.node}: write buffer not drained"
        return None
